//! The discrete-event engine.
//!
//! See the crate docs for the model. The engine owns the topology, one
//! [`ProtocolNode`] per up node, per-node clocks, the event queue and a
//! pluggable [`TraceSink`] for the execution trace. Faults are injected
//! *between* runs: drive the engine with [`Engine::run_until`], mutate
//! state/topology through [`Engine::with_node_mut`] /
//! [`Engine::fail_node`] / etc., then continue.
//!
//! Per-node bookkeeping (protocol state, clock, guard tracking, pending
//! wakeup) lives in one dense [`NodeSlots`] slab indexed by raw node id;
//! per-directed-edge link state (FIFO front, Gilbert–Elliott chain state)
//! lives in one [`EdgeSlots`] map. Broadcast payloads are shared: each
//! send allocates one `Arc` and every queue entry holds a handle, so
//! fan-out never deep-copies the message.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsrp_graph::{Distance, Graph, GraphError, NodeId, RouteTable, Weight};

use crate::clock::Clock;
use crate::config::{EngineConfig, LossModel};
use crate::congestion::{CongestionCounts, PortState, QueueDiscipline, QueuedPacket};
use crate::effects::{Effects, SendTarget};
use crate::flow::{FlowConfig, FlowRecord, FlowState, FlowTag};
use crate::node::{ActionId, EnabledSet, ProtocolNode};
use crate::sched::EventQueue;
use crate::sink::TraceSink;
use crate::slots::{EdgeSlots, NodeSlots};
use crate::time::SimTime;
use crate::trace::{ActionRecord, Trace};
use crate::traffic::{Packet, PacketArena, PacketRecord, PacketStatus, TrafficCounts};
use crate::view::{RouteCursor, RouteDelta, RouteView, ViewEntry};

/// What [`Engine::trace`] returns when the configured sink keeps no trace.
static EMPTY_TRACE: Trace = Trace {
    actions: Vec::new(),
    var_changes: Vec::new(),
    messages_sent: 0,
    messages_delivered: 0,
    dropped_lossy_link: 0,
    dropped_dead_receiver: 0,
    messages_duplicated: 0,
    action_counts: BTreeMap::new(),
    maintenance_counts: BTreeMap::new(),
    sent_counts: BTreeMap::new(),
};

/// Errors surfaced by engine runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineError {
    /// The per-run event budget was exhausted — almost always a zero-hold
    /// action livelock in the protocol under test.
    EventBudgetExhausted {
        /// Simulated time at which the budget ran out.
        at: SimTime,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EventBudgetExhausted { at } => {
                write!(f, "event budget exhausted at {at} (action livelock?)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Cumulative counts of processed events by kind — cheap diagnostics for
/// spotting pathological schedules (e.g. wakeup storms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Message deliveries processed.
    pub deliveries: u64,
    /// Guard timers processed (fired or stale).
    pub guard_timers: u64,
    /// Guard timers that actually executed an action.
    pub guard_fires: u64,
    /// Wakeups processed.
    pub wakeups: u64,
    /// Data-plane packet hops processed (one per `PacketHop` event, not
    /// weighted by flow aggregation).
    pub packet_hops: u64,
    /// Port serialization completions processed (congestion lane).
    pub port_drains: u64,
    /// Flow ACK arrivals processed (congestion lane).
    pub flow_acks: u64,
    /// Flow retransmit timers processed, stale or live (congestion lane).
    pub flow_timers: u64,
}

/// Always-on engine health statistics, independent of the configured
/// [`TraceSink`] — a handful of scalar counters the hot path maintains
/// unconditionally, so throughput reports exist even when the sink
/// records nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Processed events by kind.
    pub events: EventCounts,
    /// Messages handed to links (per-fan-out copy).
    pub messages_sent: u64,
    /// Messages delivered to live receivers.
    pub messages_delivered: u64,
    /// Protocol-level adverts handed to links. Batching protocols pack
    /// many adverts into one wire message ([`ProtocolNode::advert_count`]),
    /// so this can exceed `messages_sent`; for unbatched protocols the two
    /// are equal.
    pub adverts_sent: u64,
    /// Protocol-level adverts delivered to live receivers (the batched
    /// analogue of `messages_delivered`).
    pub adverts_delivered: u64,
    /// Extra copies scheduled by the duplication model.
    pub messages_duplicated: u64,
    /// Messages dropped by the loss model.
    pub dropped_lossy_link: u64,
    /// Messages dropped on dead edges/receivers.
    pub dropped_dead_receiver: u64,
    /// High-water mark of the event-queue length.
    pub peak_queue_depth: usize,
    /// Weighted data-plane packet counters (see [`TrafficCounts`]).
    pub traffic: TrafficCounts,
    /// Congestion-lane counters: queue highs, marks, pauses, flow goodput
    /// (see [`CongestionCounts`]). All zero while the lane is disabled.
    pub congestion: CongestionCounts,
}

impl EngineStats {
    /// Total events processed (deliveries + guard timers + wakeups +
    /// packet hops + port drains + flow events).
    pub fn total_events(&self) -> u64 {
        self.events.deliveries
            + self.events.guard_timers
            + self.events.wakeups
            + self.events.packet_hops
            + self.events.port_drains
            + self.events.flow_acks
            + self.events.flow_timers
    }
}

/// Outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Simulated time when the run stopped.
    pub end: SimTime,
    /// Whether the system was quiescent at the end (no in-flight message
    /// and no enabled guard would ever change state again; for
    /// window-based detection, nothing effective happened for the settle
    /// window).
    pub quiescent: bool,
    /// The last time an *effective* event occurred (a protocol-variable or
    /// mirror change, or a non-maintenance action execution).
    pub last_effective: SimTime,
    /// Events processed during this run.
    pub events: u64,
}

#[derive(Debug)]
enum Event<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: Arc<M>,
    },
    GuardTimer {
        node: NodeId,
        action: ActionId,
        generation: u64,
    },
    Wakeup {
        node: NodeId,
    },
    /// A data-plane packet (addressed by its [`PacketArena`] index)
    /// arrives at its current holder.
    PacketHop {
        packet: u32,
    },
    /// The head of port `(from, to)` finished serializing (congestion
    /// lane): release it onto the wire and start the next one.
    PortDrain {
        from: NodeId,
        to: NodeId,
    },
    /// A cumulative Go-Back-N ACK reaches the flow's sender.
    FlowAck {
        flow: u32,
        ack: u64,
        marked: bool,
    },
    /// A flow's retransmit timer fires (stale unless the generation
    /// matches the flow's live one — same idiom as `GuardTimer`).
    FlowTimer {
        flow: u32,
        generation: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct GuardTrack {
    generation: u64,
    fingerprint: u64,
}

/// Everything the engine keeps per live node, stored densely by id.
struct Slot<P> {
    node: P,
    clock: Clock,
    guards: BTreeMap<ActionId, GuardTrack>,
    /// The node's current neighbor/weight map, cached from the graph and
    /// rebuilt only on topology changes — broadcast fan-out, single-sends
    /// and delivery liveness checks read it instead of re-querying (or
    /// re-collecting) graph adjacency per message.
    neighbors: BTreeMap<NodeId, Weight>,
    /// The live wakeup, if any: its scheduled real time plus the local
    /// reading the node asked to be re-evaluated at.
    pending_wakeup: Option<(SimTime, f64)>,
}

/// Per-directed-edge link state.
#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    /// Scheduled arrival of the most recent delivery on this edge (FIFO
    /// ordering clamps later arrivals to at least this time; the `(time,
    /// seq)` queue key then preserves send order among equal times).
    fifo_last: Option<SimTime>,
    /// Gilbert–Elliott chain state (`true` = bad/burst). Edges never sent
    /// on are in the good state.
    ge_bad: bool,
}

/// Factory producing a protocol node from its id and initial neighbor map.
type NodeFactory<P> = Box<dyn FnMut(NodeId, &BTreeMap<NodeId, Weight>) -> P>;

/// The discrete-event simulator for one protocol over one topology.
pub struct Engine<P: ProtocolNode> {
    graph: Graph,
    config: EngineConfig,
    slots: NodeSlots<Slot<P>>,
    queue: EventQueue<Event<P::Msg>>,
    links: EdgeSlots<LinkState>,
    inflight: u64,
    stats: EngineStats,
    sink: Box<dyn TraceSink>,
    rng: StdRng,
    now: SimTime,
    generation: u64,
    last_effective: SimTime,
    factory: NodeFactory<P>,
    /// Reusable neighbor buffer for broadcast fan-out.
    scratch: Vec<NodeId>,
    /// Reusable effects collector — one per engine, cleared between
    /// events, so the hot path never allocates a fresh send buffer.
    fx_scratch: Effects<P::Msg>,
    /// Reusable guard-evaluation buffer for [`Engine::reevaluate_floored`].
    enabled_scratch: EnabledSet,
    /// Reusable hold-timer scheduling buffer for
    /// [`Engine::reevaluate_floored`].
    schedule_scratch: Vec<(ActionId, SimTime, u64)>,
    /// Count of currently tracked non-maintenance guards, maintained at
    /// every guard insert/removal so
    /// [`Engine::any_enabled_non_maintenance`] is O(1) instead of a scan
    /// over every node's guard map.
    enabled_non_maintenance: usize,
    /// The always-current dense route view (see [`crate::view`]).
    view: RouteView,
    /// Dedicated data-plane RNG. Packet delays and loss draw from this
    /// stream (never from `rng`) and Gilbert–Elliott chains are read
    /// without being advanced, so the control-plane trajectory is
    /// byte-identical with and without traffic.
    rng_traffic: StdRng,
    /// Packet probes currently queued (unweighted).
    packets_in_flight: u64,
    /// Represented packets currently in flight (weighted): the exact gap
    /// between `traffic.injected` and `traffic.completed()`, maintained
    /// independently so packet conservation is a checkable invariant.
    packets_in_flight_weight: u64,
    /// Completed packets awaiting [`Engine::drain_completed_packets`].
    completed_packets: Vec<PacketRecord>,
    /// Slab storage for in-flight packets; `PacketHop` events and port
    /// queues hold `u32` indices into it.
    arena: PacketArena,
    /// Per-directed-edge egress queues (congestion lane; empty while the
    /// lane is disabled).
    ports: EdgeSlots<PortState>,
    /// The instantiated queue discipline.
    discipline: Box<dyn QueueDiscipline>,
    /// All flows ever started, indexed by flow id (terminal flows keep
    /// their slot so ids stay stable).
    flows: Vec<FlowState>,
    /// Flows not yet completed or aborted.
    active_flows: usize,
    /// Finished flows awaiting [`Engine::drain_completed_flows`].
    completed_flows: Vec<FlowRecord>,
}

impl<P: ProtocolNode> fmt::Debug for Engine<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("nodes", &self.slots.len())
            .field("inflight", &self.inflight)
            .field("queued_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl<P: ProtocolNode> Engine<P> {
    /// Creates an engine over `graph`, instantiating one protocol node per
    /// graph node via `factory` (which receives the node id and its initial
    /// neighbor/weight map). Guards are evaluated immediately, so actions
    /// enabled at the initial state start their hold timers at time 0.
    pub fn new(
        graph: Graph,
        config: EngineConfig,
        factory: impl FnMut(NodeId, &BTreeMap<NodeId, Weight>) -> P + 'static,
    ) -> Self {
        config.link.validate();
        config.congestion.validate();
        let discipline = config.congestion.discipline.build();
        let scheduler = config.scheduler;
        let mut engine = Engine {
            graph,
            rng: StdRng::seed_from_u64(config.seed),
            // Domain-separated from the control-plane stream: same seed,
            // different generator, so traffic never perturbs convergence.
            rng_traffic: StdRng::seed_from_u64(config.seed ^ 0x5452_4146_4643_u64),
            sink: config.sink.build(),
            config,
            slots: NodeSlots::new(),
            queue: EventQueue::new(scheduler),
            links: EdgeSlots::new(),
            inflight: 0,
            stats: EngineStats::default(),
            now: SimTime::ZERO,
            generation: 0,
            last_effective: SimTime::ZERO,
            factory: Box::new(factory),
            scratch: Vec::new(),
            fx_scratch: Effects::new(),
            enabled_scratch: EnabledSet::none(),
            schedule_scratch: Vec::new(),
            enabled_non_maintenance: 0,
            view: RouteView::default(),
            packets_in_flight: 0,
            packets_in_flight_weight: 0,
            completed_packets: Vec::new(),
            arena: PacketArena::default(),
            ports: EdgeSlots::new(),
            discipline,
            flows: Vec::new(),
            active_flows: 0,
            completed_flows: Vec::new(),
        };
        let ids: Vec<NodeId> = engine.graph.nodes().collect();
        for &v in &ids {
            engine.spawn_node(v);
        }
        for v in ids {
            engine.reevaluate(v);
        }
        engine
    }

    fn spawn_node(&mut self, v: NodeId) {
        let neighbors: BTreeMap<NodeId, Weight> = self.graph.neighbors(v).collect();
        let node = (self.factory)(v, &neighbors);
        self.view.record(
            v,
            Some(ViewEntry {
                route: node.route_entry(),
                containment: node.in_containment(),
            }),
        );
        self.slots.insert(
            v,
            Slot {
                node,
                clock: self.config.clocks.clock_for(v, self.config.seed),
                guards: BTreeMap::new(),
                neighbors,
                pending_wakeup: None,
            },
        );
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The execution trace so far. When the configured sink keeps no trace
    /// ([`crate::sink::CountsOnly`] / [`crate::sink::NullSink`]), this is a
    /// permanently empty trace — use [`Engine::stats`] for counters that
    /// are always maintained.
    pub fn trace(&self) -> &Trace {
        self.sink.trace().unwrap_or(&EMPTY_TRACE)
    }

    /// The configured trace sink.
    pub fn sink(&self) -> &dyn TraceSink {
        self.sink.as_ref()
    }

    /// Replaces the trace sink (e.g. to stop recording after a warm-up).
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Clears the trace (counters and records) — typically right after a
    /// warm-up phase, so measurements cover only the perturbation.
    pub fn reset_trace(&mut self) {
        self.sink.reset();
    }

    /// Read access to a protocol node.
    pub fn node(&self, v: NodeId) -> Option<&P> {
        self.slots.get(v).map(|s| &s.node)
    }

    /// Mutates a node's state in place (the *state corruption* fault class)
    /// and re-evaluates its guards. Does nothing for unknown nodes.
    pub fn with_node_mut(&mut self, v: NodeId, f: impl FnOnce(&mut P)) {
        if let Some(slot) = self.slots.get_mut(v) {
            f(&mut slot.node);
            self.refresh_view(v);
            self.mark_effective();
            self.reevaluate(v);
        }
    }

    /// The current route table (each node's `(d.v, p.v)`), served from the
    /// maintained [`RouteView`] — identical to rebuilding from the nodes.
    pub fn route_table(&self) -> RouteTable {
        self.view.to_table()
    }

    /// The engine-maintained dense route view.
    pub fn route_view(&self) -> &RouteView {
        &self.view
    }

    /// Turns route-delta logging on (idempotent) and returns the current
    /// change cursor — the entry point for O(changes) consumers; see
    /// [`crate::view`] for the cursor contract.
    pub fn route_cursor(&mut self) -> RouteCursor {
        self.view.enable_logging();
        self.view.cursor()
    }

    /// Every route delta recorded after `cursor`, oldest first.
    ///
    /// # Panics
    ///
    /// Panics for cursors that were trimmed past (see
    /// [`RouteView::deltas_since`]).
    pub fn route_deltas_since(&self, cursor: RouteCursor) -> &[RouteDelta] {
        self.view.deltas_since(cursor)
    }

    /// Discards route deltas every consumer has advanced past.
    pub fn trim_route_deltas(&mut self, cursor: RouteCursor) {
        self.view.trim(cursor);
    }

    /// Re-syncs `v`'s view entry from its protocol node (no-op when
    /// nothing observable changed).
    fn refresh_view(&mut self, v: NodeId) {
        let new = self.slots.get(v).map(|s| ViewEntry {
            route: s.node.route_entry(),
            containment: s.node.in_containment(),
        });
        self.view.record(v, new);
    }

    /// Whether any node is currently involved in a containment wave.
    pub fn any_in_containment(&self) -> bool {
        self.slots.values().any(|s| s.node.in_containment())
    }

    /// Number of messages currently in flight.
    pub fn inflight_messages(&self) -> u64 {
        self.inflight
    }

    /// Whether any non-maintenance guard is currently enabled somewhere.
    /// O(1): the engine maintains the count at every guard insert/removal.
    pub fn any_enabled_non_maintenance(&self) -> bool {
        debug_assert_eq!(
            self.enabled_non_maintenance,
            self.slots
                .values()
                .flat_map(|s| s.guards.keys())
                .filter(|&&a| !P::is_maintenance(a))
                .count(),
            "non-maintenance guard counter drifted"
        );
        self.enabled_non_maintenance > 0
    }

    /// The last time an effective event occurred.
    pub fn last_effective(&self) -> SimTime {
        self.last_effective
    }

    /// Processed-event counts by kind (see [`EventCounts`]).
    pub fn event_counts(&self) -> EventCounts {
        self.stats.events
    }

    /// Always-on engine health statistics (see [`EngineStats`]).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    // ------------------------------------------------------------------
    // Data plane: the packet lane.
    // ------------------------------------------------------------------

    /// Injects a packet probe at the current time. `weight` is the number
    /// of real packets the probe represents (flow aggregation; use 1 for
    /// exact per-packet runs) and `ttl` the hop budget.
    ///
    /// # Panics
    ///
    /// Panics on zero `weight` (a probe representing nothing is a bug in
    /// the workload generator, not a droppable packet).
    pub fn inject_packet(&mut self, src: NodeId, dest: NodeId, ttl: u32, weight: u64) {
        self.inject_packet_at(self.now, src, dest, ttl, weight);
    }

    /// [`Engine::inject_packet`] at a future time (clamped to now), so
    /// workload generators can schedule a whole sampling window ahead of
    /// the event loop.
    ///
    /// # Panics
    ///
    /// Panics on zero `weight`.
    pub fn inject_packet_at(
        &mut self,
        at: SimTime,
        src: NodeId,
        dest: NodeId,
        ttl: u32,
        weight: u64,
    ) {
        assert!(weight > 0, "packet probes must represent >= 1 packet");
        let at = at.max(self.now);
        self.stats.traffic.injected += weight;
        self.packets_in_flight += 1;
        self.packets_in_flight_weight += weight;
        let packet = self.arena.alloc(Packet::new(src, dest, ttl, weight, at));
        self.push(at, Event::PacketHop { packet });
    }

    /// Packet probes currently queued (unweighted count).
    pub fn packets_in_flight(&self) -> u64 {
        self.packets_in_flight
    }

    /// Represented packets currently in flight (weighted). Packet
    /// conservation — `injected == completed() + packets_in_flight_weight`
    /// at every instant — is an engine invariant the congestion tests pin.
    pub fn packets_in_flight_weight(&self) -> u64 {
        self.packets_in_flight_weight
    }

    /// Takes every packet completed since the last drain, in completion
    /// order. Consumers driving traffic should drain regularly — records
    /// accumulate until taken.
    pub fn drain_completed_packets(&mut self) -> Vec<PacketRecord> {
        std::mem::take(&mut self.completed_packets)
    }

    fn complete_packet(&mut self, p: Packet, status: PacketStatus) {
        self.packets_in_flight -= 1;
        self.packets_in_flight_weight -= p.weight;
        let t = &mut self.stats.traffic;
        let w = p.weight;
        match status {
            PacketStatus::Delivered => {
                t.delivered += w;
                t.delivered_hops += w * u64::from(p.hops);
            }
            PacketStatus::BlackHoled { .. } => t.black_holed += w,
            PacketStatus::LinkDown { .. } => t.link_down += w,
            PacketStatus::Looped { .. } => t.looped += w,
            PacketStatus::TtlExpired => t.ttl_expired += w,
            PacketStatus::Lost { .. } => t.lost += w,
            PacketStatus::QueueDropped { .. } => t.queue_dropped += w,
        }
        self.completed_packets.push(PacketRecord {
            src: p.src,
            dest: p.dest,
            status,
            hops: p.hops,
            cost: p.cost,
            weight: w,
            injected_at: p.injected_at,
            completed_at: self.now,
            marked: p.marked,
            flow: p.flow,
        });
        // A delivered flow segment reaches the Go-Back-N receiver.
        if status == PacketStatus::Delivered {
            if let Some(tag) = p.flow {
                self.flow_on_delivery(tag, p.marked, p.injected_at);
            }
        }
    }

    /// The loss probability a packet faces on `from -> to` right now.
    /// Reads the Gilbert–Elliott chain state without advancing it — the
    /// chain belongs to the control plane's message stream.
    fn packet_loss_probability(&self, from: NodeId, to: NodeId) -> f64 {
        match self.config.link.loss {
            LossModel::Iid(p) => p,
            LossModel::GilbertElliott(ge) => {
                let bad = self.links.get(from, to).is_some_and(|s| s.ge_bad);
                if bad {
                    ge.loss_bad
                } else {
                    ge.loss_good
                }
            }
        }
    }

    /// One data-plane hop: the packet has arrived at `p.at`; deliver it,
    /// drop it, or forward it one hop along the live route table.
    fn dispatch_packet(&mut self, mut p: Packet) {
        self.stats.events.packet_hops += 1;
        // The node holding the packet fail-stopped while it was in flight.
        let Some(slot) = self.slots.get(p.at) else {
            return self.complete_packet(p, PacketStatus::LinkDown { at: p.at });
        };
        if p.at == p.dest {
            return self.complete_packet(p, PacketStatus::Delivered);
        }
        // Next hop from the node's *live* route state toward this packet's
        // destination (multi-destination planes override the lookup).
        let next = match slot.node.route_entry_toward(p.dest) {
            Some(e) if e.distance != Distance::Infinite && e.parent != p.at => e.parent,
            _ => return self.complete_packet(p, PacketStatus::BlackHoled { at: p.at }),
        };
        // The route may point across an edge that no longer exists.
        let Some(&edge_weight) = slot.neighbors.get(&next) else {
            return self.complete_packet(p, PacketStatus::LinkDown { at: p.at });
        };
        if p.hops >= p.ttl {
            return self.complete_packet(p, PacketStatus::TtlExpired);
        }
        if let Some(cycle_len) = p.brent_step(next) {
            return self.complete_packet(p, PacketStatus::Looped { cycle_len });
        }
        let loss = self.packet_loss_probability(p.at, next);
        if loss > 0.0 && self.rng_traffic.gen_bool(loss) {
            return self.complete_packet(p, PacketStatus::Lost { at: p.at });
        }
        let delay = if self.config.link.delay_min == self.config.link.delay_max {
            self.config.link.delay_min
        } else {
            self.rng_traffic
                .gen_range(self.config.link.delay_min..=self.config.link.delay_max)
        };
        // `upstream` is the node that forwarded the packet *into* `p.at` —
        // the port a PFC pause frame from here must silence.
        let upstream = p.came_from;
        let from = p.at;
        p.came_from = Some(from);
        p.at = next;
        p.hops += 1;
        p.cost += edge_weight;
        if self.config.congestion.enabled() {
            // Congestion lane: the packet must first win a slot in the
            // egress queue of port `(from, next)` and serialize at the
            // link rate; the propagation delay starts when serialization
            // completes. Loss and delay were drawn above, in the same RNG
            // order as the unlimited lane.
            self.enqueue_packet(from, next, upstream, p, delay);
        } else {
            // Unlimited PR-5 lane: a hop is one propagation delay.
            let at = self.now + delay;
            let packet = self.arena.alloc(p);
            self.push(at, Event::PacketHop { packet });
        }
    }

    /// Admits a forwarded packet into the egress queue of port
    /// `(from, to)` under the configured discipline, scheduling a drain
    /// when the port is idle (congestion lane only).
    fn enqueue_packet(
        &mut self,
        from: NodeId,
        to: NodeId,
        upstream: Option<NodeId>,
        mut p: Packet,
        prop_delay: f64,
    ) {
        let capacity = self.config.congestion.queue_capacity;
        let rate = self
            .config
            .congestion
            .link_rate
            .expect("enqueue_packet requires a finite link rate");
        let occupancy = self.ports.get(from, to).map_or(0, |s| s.occupancy);
        let verdict = self.discipline.admit(occupancy, p.weight, capacity);
        if verdict.pause_upstream > 0.0 {
            // Backpressure one hop upstream (802.3x-style pause quanta);
            // packets injected *at* `from` have no upstream port to pause.
            if let Some(u) = upstream {
                self.stats.congestion.pause_frames += 1;
                let port = self.ports.entry(u, from);
                let base = port.paused_until.max(self.now);
                port.paused_until = base + verdict.pause_upstream;
            }
        }
        if !verdict.admit {
            return self.complete_packet(p, PacketStatus::QueueDropped { at: from });
        }
        if verdict.mark {
            p.marked = true;
            self.stats.congestion.ecn_marks += p.weight;
        }
        let ser = p.weight as f64 / rate;
        let weight = p.weight;
        let packet = self.arena.alloc(p);
        let port = self.ports.entry(from, to);
        port.occupancy += weight;
        debug_assert!(
            capacity.is_none_or(|cap| port.occupancy <= cap),
            "port occupancy exceeded capacity — discipline bug"
        );
        port.queue.push_back(QueuedPacket {
            packet,
            weight,
            prop_delay,
        });
        let occupancy = port.occupancy;
        let idle = !port.draining;
        let start = port.paused_until.max(self.now);
        if idle {
            port.draining = true;
        }
        self.stats.congestion.peak_port_occupancy =
            self.stats.congestion.peak_port_occupancy.max(occupancy);
        if idle {
            // The arriving packet is the head: it finishes serializing
            // one `weight / rate` after the port is free to transmit.
            self.push(start + ser, Event::PortDrain { from, to });
        }
    }

    /// The head of port `(from, to)` finished serializing: release it
    /// onto the wire (its propagation delay starts now) and schedule the
    /// next serialization, honoring any PFC pause in force.
    fn drain_port(&mut self, from: NodeId, to: NodeId) {
        let rate = self
            .config
            .congestion
            .link_rate
            .expect("port drain on an unlimited link");
        let alive = self
            .slots
            .get(from)
            .is_some_and(|s| s.neighbors.contains_key(&to));
        let port = self.ports.entry(from, to);
        if port.queue.is_empty() {
            port.draining = false;
            return;
        }
        if !alive {
            // The transmitting node or the edge died while packets were
            // queued: nothing will ever serialize again — flush the whole
            // queue as link-down losses.
            let flushed = std::mem::take(&mut port.queue);
            port.occupancy = 0;
            port.draining = false;
            for q in flushed {
                let p = self.arena.take(q.packet);
                self.complete_packet(p, PacketStatus::LinkDown { at: from });
            }
            return;
        }
        if self.now < port.paused_until {
            // Paused mid-queue: defer the head's release to the pause
            // horizon (pause frames arriving later extend it again).
            let t = port.paused_until;
            self.push(t, Event::PortDrain { from, to });
            return;
        }
        let q = port.queue.pop_front().expect("checked non-empty");
        port.occupancy -= q.weight;
        let next_ser = port.queue.front().map(|h| h.weight as f64 / rate);
        if next_ser.is_none() {
            port.draining = false;
        }
        if let Some(ser) = next_ser {
            self.push(self.now + ser, Event::PortDrain { from, to });
        }
        self.push(
            self.now + q.prop_delay,
            Event::PacketHop { packet: q.packet },
        );
    }

    // ------------------------------------------------------------------
    // Data plane: Go-Back-N flows.
    // ------------------------------------------------------------------

    /// Starts a stateful Go-Back-N flow transferring
    /// `config.segments` segments of weight `config.seg_weight` from
    /// `src` to `dest`, returning its id. The initial window is sent
    /// immediately and the retransmit timer armed; from here the flow
    /// drives itself through the event queue until every segment is
    /// cumulatively acknowledged (see [`crate::flow`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`FlowConfig`] or `src == dest`.
    pub fn start_flow(&mut self, src: NodeId, dest: NodeId, config: FlowConfig) -> u32 {
        self.start_flow_at(self.now, src, dest, config)
    }

    /// [`Engine::start_flow`] with a future start time: the initial
    /// window transmits at `at` and the retransmit timer arms relative to
    /// it. Workload drivers use this to schedule flow starts ahead of the
    /// event loop, keeping runs independent of scheduling chunk
    /// boundaries.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`FlowConfig`], `src == dest`, or a start
    /// time in the past.
    pub fn start_flow_at(
        &mut self,
        at: SimTime,
        src: NodeId,
        dest: NodeId,
        config: FlowConfig,
    ) -> u32 {
        config.validate();
        assert!(src != dest, "a flow needs two distinct endpoints");
        assert!(at >= self.now, "flow start times cannot be in the past");
        let id = u32::try_from(self.flows.len()).expect("flow ids fit u32");
        self.stats.congestion.flow_offered_weight += config.segments * config.seg_weight;
        self.flows.push(FlowState {
            src,
            dest,
            cc: config.cc.build(),
            base: 0,
            next_seq: 0,
            recv_next: 0,
            rto: config.rto_initial,
            timer_generation: 1,
            retransmitted: 0,
            timeouts: 0,
            marks: 0,
            started_at: at,
            done: false,
            config,
        });
        self.active_flows += 1;
        self.push(
            at + config.rto_initial,
            Event::FlowTimer {
                flow: id,
                generation: 1,
            },
        );
        self.flow_pump(id);
        id
    }

    /// Flows started but not yet completed or aborted. Traffic loops must
    /// treat a run with active flows as not-yet-drained, exactly like
    /// `packets_in_flight() > 0`.
    pub fn flows_active(&self) -> usize {
        self.active_flows
    }

    /// Takes every flow finished since the last drain, in completion
    /// order.
    pub fn drain_completed_flows(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.completed_flows)
    }

    /// Cumulative flow goodput: `(acked, offered)` weighted payload over
    /// every flow ever started. Retransmissions never count — a segment
    /// contributes to `acked` exactly once, when the cumulative ACK first
    /// covers it.
    pub fn flow_goodput(&self) -> (u64, u64) {
        (
            self.stats.congestion.flow_acked_weight,
            self.stats.congestion.flow_offered_weight,
        )
    }

    /// A delivered segment reaches the Go-Back-N receiver: advance
    /// `recv_next` on in-order arrival (out-of-order segments are
    /// discarded — that is Go-Back-N), then return a cumulative ACK to
    /// the sender. The ACK's reverse-path delay mirrors the data
    /// packet's own one-way latency (symmetric-path model); ACKs are
    /// pure control and not subject to loss or queueing.
    fn flow_on_delivery(&mut self, tag: FlowTag, marked: bool, injected_at: SimTime) {
        let Some(f) = self.flows.get_mut(tag.flow as usize) else {
            return;
        };
        if f.done {
            return;
        }
        if tag.seq == f.recv_next {
            f.recv_next += 1;
        }
        let ack = f.recv_next;
        let delay = self.now.since(injected_at).max(self.config.link.delay_min);
        let at = self.now + delay;
        self.push(
            at,
            Event::FlowAck {
                flow: tag.flow,
                ack,
                marked,
            },
        );
    }

    /// A cumulative ACK reaches the sender: slide the window, feed the
    /// congestion algorithm, restart the retransmit timer while data is
    /// outstanding, and complete the flow on full coverage.
    fn flow_on_ack(&mut self, id: u32, ack: u64, marked: bool) {
        let Some(f) = self.flows.get_mut(id as usize) else {
            return;
        };
        if f.done {
            return;
        }
        if marked {
            f.marks += 1;
            f.cc.on_mark();
        }
        let mut arm_timer = None;
        if ack > f.base {
            let advanced = ack - f.base;
            f.base = ack;
            self.stats.congestion.flow_acked_weight += advanced * f.config.seg_weight;
            for _ in 0..advanced {
                f.cc.on_ack();
            }
            // Fresh evidence of a live path: reset the backoff.
            f.rto = f.config.rto_initial;
            f.timer_generation += 1;
            if f.base >= f.config.segments {
                return self.finish_flow(id);
            }
            arm_timer = Some((f.rto, f.timer_generation));
        }
        if let Some((rto, generation)) = arm_timer {
            let at = self.now + rto;
            self.push(
                at,
                Event::FlowTimer {
                    flow: id,
                    generation,
                },
            );
        }
        self.flow_pump(id);
    }

    /// The retransmit timer fires: exponential backoff, congestion
    /// response, and the Go-Back-N resend of everything outstanding.
    fn flow_on_timer(&mut self, id: u32, generation: u64) {
        let Some(f) = self.flows.get_mut(id as usize) else {
            return;
        };
        if f.done || f.timer_generation != generation {
            return;
        }
        // An endpoint fail-stopped: the flow can never complete — abort
        // it instead of backing off forever.
        if !self.slots.contains(f.src) || !self.slots.contains(f.dest) {
            return self.finish_flow(id);
        }
        f.timeouts += 1;
        self.stats.congestion.flow_timeouts += 1;
        f.cc.on_timeout();
        f.rto = (f.rto * 2.0).min(f.config.rto_max);
        let outstanding = f.next_seq - f.base;
        f.retransmitted += outstanding * f.config.seg_weight;
        self.stats.congestion.flow_retransmit_weight += outstanding * f.config.seg_weight;
        f.next_seq = f.base;
        f.timer_generation += 1;
        let generation = f.timer_generation;
        let at = self.now + f.rto;
        self.push(
            at,
            Event::FlowTimer {
                flow: id,
                generation,
            },
        );
        self.flow_pump(id);
    }

    /// Transmits segments while the congestion window has room.
    fn flow_pump(&mut self, id: u32) {
        loop {
            let Some(f) = self.flows.get_mut(id as usize) else {
                return;
            };
            if f.done {
                return;
            }
            let limit = (f.base + f.cc.window()).min(f.config.segments);
            if f.next_seq >= limit {
                return;
            }
            let seq = f.next_seq;
            f.next_seq += 1;
            let (src, dest, ttl, weight) = (f.src, f.dest, f.config.ttl, f.config.seg_weight);
            // Flows scheduled ahead of the event loop transmit their
            // initial window at the flow's start time, not "now".
            let t = self.now.max(f.started_at);
            self.stats.traffic.injected += weight;
            self.packets_in_flight += 1;
            self.packets_in_flight_weight += weight;
            let mut p = Packet::new(src, dest, ttl, weight, t);
            p.flow = Some(FlowTag { flow: id, seq });
            let packet = self.arena.alloc(p);
            self.push(t, Event::PacketHop { packet });
        }
    }

    /// Terminal transition: records the flow and stales its timer.
    fn finish_flow(&mut self, id: u32) {
        let f = &mut self.flows[id as usize];
        f.done = true;
        f.timer_generation += 1;
        let record = FlowRecord {
            id,
            src: f.src,
            dest: f.dest,
            segments: f.config.segments,
            seg_weight: f.config.seg_weight,
            acked_segments: f.base,
            started_at: f.started_at,
            finished_at: self.now,
            retransmitted: f.retransmitted,
            timeouts: f.timeouts,
            marks: f.marks,
        };
        self.active_flows -= 1;
        self.completed_flows.push(record);
    }

    // ------------------------------------------------------------------
    // Topology faults (fail-stop / join / weight change).
    // ------------------------------------------------------------------

    /// Fail-stops a node: removes it and its edges; neighbors observe the
    /// change. In-flight messages to or from it are lost.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] for unknown nodes.
    pub fn fail_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        let neighbors: Vec<NodeId> = self.graph.neighbors(v).map(|(n, _)| n).collect();
        self.graph.remove_node(v)?;
        if let Some(slot) = self.slots.remove(v) {
            self.enabled_non_maintenance -= slot
                .guards
                .keys()
                .filter(|&&a| !P::is_maintenance(a))
                .count();
        }
        self.view.record(v, None);
        self.mark_effective();
        for n in neighbors {
            self.notify_neighbors_changed(n);
        }
        Ok(())
    }

    /// Joins a new node with the given edges; it and its neighbors observe
    /// the change.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the node exists or an edge is invalid.
    pub fn join_node(&mut self, v: NodeId, edges: &[(NodeId, Weight)]) -> Result<(), GraphError> {
        if self.graph.has_node(v) {
            return Err(GraphError::DuplicateNode(v));
        }
        self.graph.add_node(v);
        for &(n, w) in edges {
            if let Err(e) = self.graph.add_edge(v, n, w) {
                let _ = self.graph.remove_node(v);
                return Err(e);
            }
        }
        self.spawn_node(v);
        self.mark_effective();
        self.notify_neighbors_changed(v);
        for &(n, _) in edges {
            self.notify_neighbors_changed(n);
        }
        Ok(())
    }

    /// Fail-stops an edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingEdge`] for unknown edges.
    pub fn fail_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        self.graph.remove_edge(a, b)?;
        self.mark_effective();
        self.notify_neighbors_changed(a);
        self.notify_neighbors_changed(b);
        Ok(())
    }

    /// Joins an edge between existing nodes.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] on invalid endpoints/weight.
    pub fn join_edge(&mut self, a: NodeId, b: NodeId, w: Weight) -> Result<(), GraphError> {
        if !self.graph.has_node(a) {
            return Err(GraphError::MissingNode(a));
        }
        if !self.graph.has_node(b) {
            return Err(GraphError::MissingNode(b));
        }
        self.graph.add_edge(a, b, w)?;
        self.mark_effective();
        self.notify_neighbors_changed(a);
        self.notify_neighbors_changed(b);
        Ok(())
    }

    /// Changes an edge weight.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for unknown edges or zero weight.
    pub fn set_weight(&mut self, a: NodeId, b: NodeId, w: Weight) -> Result<(), GraphError> {
        self.graph.set_weight(a, b, w)?;
        self.mark_effective();
        self.notify_neighbors_changed(a);
        self.notify_neighbors_changed(b);
        Ok(())
    }

    fn notify_neighbors_changed(&mut self, v: NodeId) {
        let Some(slot) = self.slots.get_mut(v) else {
            return;
        };
        // Re-sync the slot's neighbor cache, then hand the node a
        // reference to it — no per-call map rebuild on the protocol side.
        slot.neighbors.clear();
        slot.neighbors.extend(self.graph.neighbors(v));
        let now_local = slot.clock.local(self.now);
        let mut fx = std::mem::take(&mut self.fx_scratch);
        let Slot {
            node, neighbors, ..
        } = slot;
        node.on_neighbors_changed(neighbors, now_local, &mut fx);
        self.apply_effects(v, &mut fx, None);
        fx.clear();
        self.fx_scratch = fx;
        self.reevaluate(v);
    }

    // ------------------------------------------------------------------
    // Running.
    // ------------------------------------------------------------------

    /// The time of the earliest queued event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes exactly one event (the earliest) and returns its time —
    /// the hook fine-grained observers (e.g. the loop monitor checking
    /// every intermediate state) are built on. Returns `None` when the
    /// queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, _, event) = self.queue.pop()?;
        self.now = self.now.max(time);
        let t = self.now;
        self.dispatch(event);
        Some(t)
    }

    /// Processes all events up to and including `until`, then advances the
    /// clock to `until`.
    ///
    /// # Errors
    ///
    /// [`EngineError::EventBudgetExhausted`] if the configured event budget
    /// runs out.
    pub fn run_until(&mut self, until: SimTime) -> Result<RunReport, EngineError> {
        let mut events = 0u64;
        while let Some(next) = self.queue.peek_time() {
            if next > until {
                break;
            }
            if events >= self.config.max_events {
                return Err(EngineError::EventBudgetExhausted { at: self.now });
            }
            let (time, _, event) = self.queue.pop().expect("peeked");
            self.now = self.now.max(time);
            self.dispatch(event);
            events += 1;
        }
        self.now = self.now.max(until);
        Ok(RunReport {
            end: self.now,
            quiescent: self.queue.is_empty(),
            last_effective: self.last_effective,
            events,
        })
    }

    /// Runs until the system settles or `horizon` passes.
    ///
    /// With `settle = 0` (appropriate when no periodic maintenance action
    /// is configured), the run ends when the event queue drains. With
    /// `settle > 0`, the run ends once no *effective* event (state or
    /// mirror change, or non-maintenance execution) has occurred for
    /// `settle` simulated seconds — use a window larger than
    /// `rho * syn_period + delay_max` so periodic refreshes that change
    /// nothing do not keep the system "live".
    ///
    /// # Errors
    ///
    /// [`EngineError::EventBudgetExhausted`] if the event budget runs out.
    pub fn run_to_quiescence(
        &mut self,
        horizon: SimTime,
        settle: f64,
    ) -> Result<RunReport, EngineError> {
        let mut events = 0u64;
        loop {
            let Some(next_time) = self.queue.peek_time() else {
                // Queue drained: truly quiescent.
                return Ok(RunReport {
                    end: self.now,
                    quiescent: true,
                    last_effective: self.last_effective,
                    events,
                });
            };
            if settle > 0.0
                && next_time.seconds() > self.last_effective.seconds() + settle
                && !self.any_enabled_non_maintenance()
            {
                // Nothing effective for a whole settle window and no
                // (possibly long-hold) protocol action pending: any
                // remaining events are maintenance refreshes whose
                // payloads already match the receivers' mirrors (a
                // divergent mirror would have produced an effective
                // refresh within the window — callers must use
                // settle > rho * syn_period + delay_max).
                self.now = self.now.max(self.last_effective + settle);
                return Ok(RunReport {
                    end: self.now,
                    quiescent: true,
                    last_effective: self.last_effective,
                    events,
                });
            }
            if next_time > horizon {
                self.now = horizon;
                return Ok(RunReport {
                    end: self.now,
                    quiescent: false,
                    last_effective: self.last_effective,
                    events,
                });
            }
            if events >= self.config.max_events {
                return Err(EngineError::EventBudgetExhausted { at: self.now });
            }
            let (time, _, event) = self.queue.pop().expect("peeked");
            self.now = self.now.max(time);
            self.dispatch(event);
            events += 1;
        }
    }

    fn dispatch(&mut self, event: Event<P::Msg>) {
        match event {
            Event::Deliver { from, to, msg } => {
                self.stats.events.deliveries += 1;
                self.inflight -= 1;
                // Liveness check via the receiver's cached neighbor map:
                // one dense-slot lookup instead of a graph adjacency query
                // per delivery (the cache is re-synced on topology change).
                let Some(slot) = self
                    .slots
                    .get_mut(to)
                    .filter(|s| s.neighbors.contains_key(&from))
                else {
                    self.stats.dropped_dead_receiver += 1;
                    self.sink.count_dropped_dead();
                    return;
                };
                self.stats.messages_delivered += 1;
                self.stats.adverts_delivered += P::advert_count(msg.as_ref());
                self.sink.count_delivered();
                let now_local = slot.clock.local(self.now);
                let mut fx = std::mem::take(&mut self.fx_scratch);
                slot.node.on_receive(from, msg.as_ref(), now_local, &mut fx);
                self.apply_effects(to, &mut fx, None);
                fx.clear();
                self.fx_scratch = fx;
                self.reevaluate(to);
            }
            Event::GuardTimer {
                node,
                action,
                generation,
            } => {
                self.stats.events.guard_timers += 1;
                let Some(slot) = self.slots.get_mut(node) else {
                    return; // node failed in the meantime
                };
                let Some(track) = slot.guards.get(&action) else {
                    return; // guard was disabled in the meantime
                };
                if track.generation != generation {
                    return; // guard was disabled and re-enabled later
                }
                // Continuously enabled for the hold-time: execute.
                self.stats.events.guard_fires += 1;
                slot.guards.remove(&action);
                if !P::is_maintenance(action) {
                    self.enabled_non_maintenance -= 1;
                }
                let now_local = slot.clock.local(self.now);
                let mut fx = std::mem::take(&mut self.fx_scratch);
                slot.node.execute(action, now_local, &mut fx);
                self.apply_effects(node, &mut fx, Some(action));
                fx.clear();
                self.fx_scratch = fx;
                self.reevaluate(node);
            }
            Event::Wakeup { node } => {
                self.stats.events.wakeups += 1;
                // Only the wakeup matching the pending schedule is live;
                // anything else is a stale duplicate (superseded by an
                // earlier re-request) and must NOT re-evaluate — a stale
                // wakeup that re-evaluates pushes yet another wakeup, and
                // duplicates then multiply exponentially (a "wakeup
                // storm", caught by the determinism test under drifting
                // clocks).
                let Some(slot) = self.slots.get_mut(node) else {
                    return;
                };
                match slot.pending_wakeup {
                    Some((t, wl)) if t == self.now => {
                        slot.pending_wakeup = None;
                        self.reevaluate_floored(node, Some(wl));
                    }
                    _ => {}
                }
            }
            Event::PacketHop { packet } => {
                let p = self.arena.take(packet);
                self.dispatch_packet(p);
            }
            Event::PortDrain { from, to } => {
                self.stats.events.port_drains += 1;
                self.drain_port(from, to);
            }
            Event::FlowAck { flow, ack, marked } => {
                self.stats.events.flow_acks += 1;
                self.flow_on_ack(flow, ack, marked);
            }
            Event::FlowTimer { flow, generation } => {
                self.stats.events.flow_timers += 1;
                self.flow_on_timer(flow, generation);
            }
        }
    }

    fn apply_effects(&mut self, from: NodeId, fx: &mut Effects<P::Msg>, action: Option<ActionId>) {
        let effective =
            fx.var_changed || fx.mirror_changed || action.is_some_and(|a| !P::is_maintenance(a));
        if let Some(a) = action {
            self.sink.record_action(
                ActionRecord {
                    time: self.now,
                    node: from,
                    action: a,
                    name: P::action_name(a),
                    maintenance: P::is_maintenance(a),
                    var_changed: fx.var_changed,
                },
                self.config.record_trace,
            );
        } else if fx.var_changed {
            self.sink.record_receive_change(self.now, from);
        }
        if effective {
            self.mark_effective();
            self.refresh_view(from);
        }
        for (target, msg) in fx.sends.drain(..) {
            match target {
                SendTarget::Broadcast => {
                    // One allocation per send: every fan-out copy holds a
                    // handle to the same payload. Fan-out reads the
                    // sender's cached neighbor map, not graph adjacency.
                    let msg = Arc::new(msg);
                    let mut scratch = std::mem::take(&mut self.scratch);
                    if let Some(slot) = self.slots.get(from) {
                        scratch.extend(slot.neighbors.keys().copied());
                    }
                    for &n in &scratch {
                        self.schedule_delivery(from, n, Arc::clone(&msg));
                    }
                    scratch.clear();
                    self.scratch = scratch;
                }
                SendTarget::To(n) => {
                    if self
                        .slots
                        .get(from)
                        .is_some_and(|s| s.neighbors.contains_key(&n))
                    {
                        self.schedule_delivery(from, n, Arc::new(msg));
                    }
                }
            }
        }
    }

    fn schedule_delivery(&mut self, from: NodeId, to: NodeId, msg: Arc<P::Msg>) {
        self.stats.messages_sent += 1;
        self.stats.adverts_sent += P::advert_count(msg.as_ref());
        self.sink.count_sent(from);
        let loss_probability = match self.config.link.loss {
            LossModel::Iid(p) => p,
            LossModel::GilbertElliott(ge) => {
                // Advance the edge's chain one step, then lose by state.
                let state = self.links.entry(from, to);
                let flip = if state.ge_bad {
                    ge.p_bad_to_good
                } else {
                    ge.p_good_to_bad
                };
                if flip > 0.0 && self.rng.gen_bool(flip) {
                    state.ge_bad = !state.ge_bad;
                }
                if state.ge_bad {
                    ge.loss_bad
                } else {
                    ge.loss_good
                }
            }
        };
        if loss_probability > 0.0 && self.rng.gen_bool(loss_probability) {
            self.stats.dropped_lossy_link += 1;
            self.sink.count_dropped_lossy();
            return;
        }
        let duplicate = self.config.link.duplicate_probability > 0.0
            && self.rng.gen_bool(self.config.link.duplicate_probability);
        if duplicate {
            self.stats.messages_duplicated += 1;
            self.sink.count_duplicated();
            let at = self.link_arrival_time(from, to);
            self.inflight += 1;
            self.push(
                at,
                Event::Deliver {
                    from,
                    to,
                    msg: Arc::clone(&msg),
                },
            );
        }
        let at = self.link_arrival_time(from, to);
        self.inflight += 1;
        self.push(at, Event::Deliver { from, to, msg });
    }

    /// Samples one copy's arrival time: uniform delay in the configured
    /// bounds, clamped to the edge's previous delivery when FIFO is on.
    /// Equal arrival times are fine — the `(time, seq)` queue key delivers
    /// them in send order.
    fn link_arrival_time(&mut self, from: NodeId, to: NodeId) -> SimTime {
        let delay = if self.config.link.delay_min == self.config.link.delay_max {
            self.config.link.delay_min
        } else {
            self.rng
                .gen_range(self.config.link.delay_min..=self.config.link.delay_max)
        };
        let mut at = self.now + delay;
        if self.config.link.fifo {
            let state = self.links.entry(from, to);
            if let Some(last) = state.fifo_last {
                at = at.max(last);
            }
            state.fifo_last = Some(at);
        }
        at
    }

    fn push(&mut self, time: SimTime, event: Event<P::Msg>) {
        self.queue.schedule(time, event);
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(self.queue.len());
    }

    fn mark_effective(&mut self) {
        self.last_effective = self.now;
    }

    /// Re-evaluates the guards of `v` against its current state, updating
    /// continuous-enablement tracking and (re)scheduling hold timers and
    /// wakeups.
    fn reevaluate(&mut self, v: NodeId) {
        self.reevaluate_floored(v, None);
    }

    /// [`Engine::reevaluate`], with the node's local clock reading floored
    /// to `floor` when given. Used when a wakeup fires: the node asked to
    /// be re-evaluated at local reading `wl`, but the conversion back from
    /// real time can round a hair *below* `wl`, leaving the guard still
    /// "not yet due" and re-requesting the same wakeup forever. Flooring
    /// the reading to the requested value guarantees the guard sees the
    /// instant it asked for.
    fn reevaluate_floored(&mut self, v: NodeId, floor: Option<f64>) {
        let Some(slot) = self.slots.get(v) else {
            return;
        };
        let clock = slot.clock;
        let mut now_local = clock.local(self.now);
        if let Some(f) = floor {
            now_local = now_local.max(f);
        }
        let mut set = std::mem::take(&mut self.enabled_scratch);
        set.clear();
        slot.node.enabled_actions_into(now_local, &mut set);
        let counter = &mut self.enabled_non_maintenance;
        let slot = self.slots.get_mut(v).expect("checked above");
        let tracked = &mut slot.guards;
        // An action stays "continuously enabled" only while its guard is
        // true AND its fingerprint (the values the guard witnesses) is
        // unchanged; otherwise the hold restarts. Guard sets are a
        // handful of entries, so membership and fingerprint lookups are
        // linear scans — no per-call set allocation.
        tracked.retain(|id, track| {
            let keep = set.is_enabled(*id)
                && set.fingerprint_of(*id).unwrap_or(track.fingerprint) == track.fingerprint;
            if !keep && !P::is_maintenance(*id) {
                *counter -= 1;
            }
            keep
        });
        let mut to_schedule = std::mem::take(&mut self.schedule_scratch);
        for &(id, hold) in &set.actions {
            if let std::collections::btree_map::Entry::Vacant(e) = tracked.entry(id) {
                self.generation += 1;
                let generation = self.generation;
                let fingerprint = set.fingerprint_of(id).unwrap_or(0);
                e.insert(GuardTrack {
                    generation,
                    fingerprint,
                });
                if !P::is_maintenance(id) {
                    *counter += 1;
                }
                let fire = self.now + clock.real_duration(hold.max(0.0));
                to_schedule.push((id, fire, generation));
            }
        }
        for &(id, fire, generation) in &to_schedule {
            self.push(
                fire,
                Event::GuardTimer {
                    node: v,
                    action: id,
                    generation,
                },
            );
        }
        to_schedule.clear();
        self.schedule_scratch = to_schedule;
        if let Some(wl) = set.wakeup_local {
            // `real_time_at_local` never returns a time before `now`; a
            // wakeup may therefore land *at* `now` (same instant, later in
            // `(time, seq)` order), where the floored re-evaluation above
            // guarantees progress instead of an epsilon nudge.
            let t = clock.real_time_at_local(wl, self.now);
            let slot = self.slots.get_mut(v).expect("checked above");
            let earlier_pending = slot
                .pending_wakeup
                .is_some_and(|(pending, _)| pending <= t && pending >= self.now);
            if !earlier_pending {
                slot.pending_wakeup = Some((t, wl));
                self.push(t, Event::Wakeup { node: v });
            }
        }
        set.clear();
        self.enabled_scratch = set;
    }
}
