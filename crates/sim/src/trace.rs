//! Execution traces: what ran where and when.
//!
//! The analysis crate derives every paper metric from the trace:
//! stabilization time (last protocol-variable change), contamination (the
//! set of nodes that executed non-maintenance actions), and control
//! overhead (messages sent).

use std::collections::{BTreeMap, BTreeSet};

use lsrp_graph::NodeId;

use crate::node::ActionId;
use crate::time::SimTime;

/// One executed action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionRecord {
    /// Execution time.
    pub time: SimTime,
    /// Executing node.
    pub node: NodeId,
    /// Which action.
    pub action: ActionId,
    /// Protocol-reported action name.
    pub name: &'static str,
    /// Whether this is a maintenance action (excluded from contamination).
    pub maintenance: bool,
    /// Whether the execution changed a protocol variable.
    pub var_changed: bool,
}

/// Cumulative execution record of one engine.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Executed actions in time order (only when trace recording is on).
    pub actions: Vec<ActionRecord>,
    /// Times at which some node's protocol variables changed (includes
    /// changes made inside receive handlers, e.g. a mirror-triggered
    /// distance update in protocols that update on receipt).
    pub var_changes: Vec<(SimTime, NodeId)>,
    /// Total messages handed to links.
    pub messages_sent: u64,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by the link's loss model (i.i.d. or bursty).
    pub dropped_lossy_link: u64,
    /// Messages dropped because their edge or receiving endpoint was gone
    /// at delivery time (fail-stop faults racing in-flight traffic).
    pub dropped_dead_receiver: u64,
    /// Extra copies delivered by the link's duplication model. When the
    /// queue is drained, `messages_delivered + messages_dropped() ==
    /// messages_sent + messages_duplicated`.
    pub messages_duplicated: u64,
    /// Per-node count of non-maintenance action executions.
    pub action_counts: BTreeMap<NodeId, u64>,
    /// Per-node count of maintenance action executions.
    pub maintenance_counts: BTreeMap<NodeId, u64>,
    /// Per-node messages sent.
    pub sent_counts: BTreeMap<NodeId, u64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Clears everything (e.g. between the warm-up and measured phases of
    /// an experiment).
    pub fn reset(&mut self) {
        *self = Trace::default();
    }

    /// Total messages dropped, over all causes.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped_lossy_link + self.dropped_dead_receiver
    }

    /// Nodes that executed at least one non-maintenance action at or after
    /// `since`.
    ///
    /// When `since` predates the whole (time-ordered) record — the common
    /// case, measurements reset the trace and then ask from their start
    /// time — the answer is served straight from the per-node counters
    /// instead of re-scanning the action vector.
    pub fn acted_nodes_since(&self, since: SimTime) -> BTreeSet<NodeId> {
        match self.actions.first() {
            Some(first) if first.time >= since => self.action_counts.keys().copied().collect(),
            _ => self
                .actions
                .iter()
                .filter(|r| !r.maintenance && r.time >= since)
                .map(|r| r.node)
                .collect(),
        }
    }

    /// The last time a protocol variable changed at or after `since`
    /// (`None` if none did).
    pub fn last_var_change_since(&self, since: SimTime) -> Option<SimTime> {
        self.var_changes
            .iter()
            .rev()
            .map(|&(t, _)| t)
            .find(|&t| t >= since)
            .or({
                // var_changes is time-ordered, so a reverse scan finding
                // nothing >= since means none exist.
                None
            })
    }

    /// Total non-maintenance actions executed.
    pub fn total_actions(&self) -> u64 {
        self.action_counts.values().sum()
    }

    /// Actions executed at `node` (non-maintenance).
    pub fn actions_at(&self, node: NodeId) -> u64 {
        self.action_counts.get(&node).copied().unwrap_or(0)
    }

    /// A compact per-node timeline of executed actions (name, time),
    /// non-maintenance only — used to render the paper's Figure 5/6
    /// space-time diagrams.
    pub fn timeline(&self) -> BTreeMap<NodeId, Vec<(&'static str, SimTime)>> {
        let mut out: BTreeMap<NodeId, Vec<(&'static str, SimTime)>> = BTreeMap::new();
        for r in &self.actions {
            if !r.maintenance {
                out.entry(r.node).or_default().push((r.name, r.time));
            }
        }
        out
    }

    pub(crate) fn record_action(&mut self, rec: ActionRecord, keep_records: bool) {
        let counts = if rec.maintenance {
            &mut self.maintenance_counts
        } else {
            &mut self.action_counts
        };
        *counts.entry(rec.node).or_insert(0) += 1;
        if rec.var_changed {
            self.var_changes.push((rec.time, rec.node));
        }
        if keep_records {
            self.actions.push(rec);
        }
    }

    pub(crate) fn record_receive_change(&mut self, time: SimTime, node: NodeId) {
        self.var_changes.push((time, node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, node: u32, maintenance: bool, changed: bool) -> ActionRecord {
        ActionRecord {
            time: SimTime::new(t),
            node: NodeId::new(node),
            action: ActionId::plain(0),
            name: "A",
            maintenance,
            var_changed: changed,
        }
    }

    #[test]
    fn acted_nodes_excludes_maintenance() {
        let mut t = Trace::new();
        t.record_action(rec(1.0, 1, false, true), true);
        t.record_action(rec(2.0, 2, true, false), true);
        t.record_action(rec(3.0, 3, false, false), true);
        assert_eq!(
            t.acted_nodes_since(SimTime::ZERO),
            BTreeSet::from([NodeId::new(1), NodeId::new(3)])
        );
        assert_eq!(
            t.acted_nodes_since(SimTime::new(2.5)),
            BTreeSet::from([NodeId::new(3)])
        );
    }

    #[test]
    fn acted_nodes_fast_path_matches_the_scan() {
        let mut t = Trace::new();
        t.record_action(rec(1.0, 1, false, true), true);
        t.record_action(rec(2.0, 2, true, false), true);
        t.record_action(rec(3.0, 1, false, false), true);
        t.record_action(rec(4.0, 5, false, false), true);
        for since in [0.0, 1.0, 2.5, 9.0] {
            let since = SimTime::new(since);
            let scanned: BTreeSet<NodeId> = t
                .actions
                .iter()
                .filter(|r| !r.maintenance && r.time >= since)
                .map(|r| r.node)
                .collect();
            assert_eq!(t.acted_nodes_since(since), scanned, "since {since}");
        }
    }

    #[test]
    fn last_var_change_and_counts() {
        let mut t = Trace::new();
        t.record_action(rec(1.0, 1, false, true), true);
        t.record_action(rec(4.0, 2, false, true), true);
        assert_eq!(
            t.last_var_change_since(SimTime::ZERO),
            Some(SimTime::new(4.0))
        );
        assert_eq!(t.last_var_change_since(SimTime::new(5.0)), None);
        assert_eq!(t.total_actions(), 2);
        assert_eq!(t.actions_at(NodeId::new(1)), 1);
    }

    #[test]
    fn timeline_groups_by_node() {
        let mut t = Trace::new();
        t.record_action(rec(1.0, 7, false, true), true);
        t.record_action(rec(2.0, 7, false, true), true);
        let tl = t.timeline();
        assert_eq!(tl[&NodeId::new(7)].len(), 2);
    }

    #[test]
    fn counters_survive_record_off() {
        let mut t = Trace::new();
        t.record_action(rec(1.0, 1, false, true), false);
        assert!(t.actions.is_empty());
        assert_eq!(t.total_actions(), 1);
        t.reset();
        assert_eq!(t.total_actions(), 0);
    }
}
