//! The protocol-node abstraction: guarded actions with hold-times.

use std::collections::BTreeMap;
use std::fmt;

use lsrp_graph::{NodeId, RouteEntry, Weight};

use crate::effects::Effects;

/// Identifies one (possibly parameterized) guarded action of a protocol.
///
/// LSRP's action `S2`, for instance, is parameterized by the neighbor `k`
/// the stabilization wave would be propagated from; each `(S2, k)` pair
/// tracks its own continuous-enablement interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId {
    /// Protocol-defined action kind (e.g. "S2").
    pub kind: u8,
    /// Protocol-instance tag, for multiplexed protocols (e.g. one LSRP
    /// instance per destination); 0 for single-instance protocols.
    pub instance: u32,
    /// Optional node parameter.
    pub param: Option<NodeId>,
}

impl ActionId {
    /// An unparameterized action.
    pub const fn plain(kind: u8) -> Self {
        ActionId {
            kind,
            instance: 0,
            param: None,
        }
    }

    /// An action parameterized by a neighbor.
    pub const fn with_param(kind: u8, param: NodeId) -> Self {
        ActionId {
            kind,
            instance: 0,
            param: Some(param),
        }
    }

    /// Retags this action with a protocol-instance id (builder style).
    #[must_use]
    pub const fn for_instance(mut self, instance: u32) -> Self {
        self.instance = instance;
        self
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.instance != 0 {
            write!(f, "[{}]", self.instance)?;
        }
        match self.param {
            Some(p) => write!(f, "#{}({p})", self.kind),
            None => write!(f, "#{}", self.kind),
        }
    }
}

/// What a node reports when its guards are (re-)evaluated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnabledSet {
    /// Currently enabled actions with their guard hold-times (in *local
    /// clock* units). The engine executes an action once it has been
    /// continuously enabled for its hold-time.
    pub actions: Vec<(ActionId, f64)>,
    /// Optional guard *fingerprints*: when an enabled action's fingerprint
    /// differs from the one recorded when its hold started, the engine
    /// restarts the hold — the guard is "the same" only while the values
    /// it witnesses are. This models route-advertisement timers that
    /// re-arm when the candidate route changes (BGP's
    /// MinRouteAdvertisementInterval behaves this way), and is what makes
    /// LSRP's loop freedom robust to mid-hold mirror updates (DESIGN.md
    /// §5). Actions without a fingerprint never restart. Stored as a flat
    /// list (guard sets are tiny, and clearing keeps its capacity — see
    /// [`EnabledSet::clear`]); look up with [`EnabledSet::fingerprint_of`].
    pub fingerprints: Vec<(ActionId, u64)>,
    /// If some guard is a function of the local clock (e.g. LSRP's
    /// periodic `SYN1`), the earliest local-clock reading at which guards
    /// should be re-evaluated even if no event arrives.
    pub wakeup_local: Option<f64>,
}

impl EnabledSet {
    /// An empty set (nothing enabled, no wakeup).
    pub fn none() -> Self {
        EnabledSet::default()
    }

    /// Empties the set while keeping its allocations, so one `EnabledSet`
    /// can be refilled per guard evaluation ([`ProtocolNode::enabled_actions_into`]).
    pub fn clear(&mut self) {
        self.actions.clear();
        self.fingerprints.clear();
        self.wakeup_local = None;
    }

    /// Adds an enabled action (builder style).
    pub fn enable(&mut self, id: ActionId, hold_local: f64) -> &mut Self {
        self.actions.push((id, hold_local));
        self
    }

    /// Adds an enabled action whose hold restarts whenever `fingerprint`
    /// changes between guard evaluations.
    pub fn enable_with_fingerprint(
        &mut self,
        id: ActionId,
        hold_local: f64,
        fingerprint: u64,
    ) -> &mut Self {
        self.actions.push((id, hold_local));
        self.fingerprints.push((id, fingerprint));
        self
    }

    /// The fingerprint recorded for `id`, if any.
    pub fn fingerprint_of(&self, id: ActionId) -> Option<u64> {
        self.fingerprints
            .iter()
            .find(|&&(fid, _)| fid == id)
            .map(|&(_, fp)| fp)
    }

    /// Whether `id` is among the enabled actions.
    pub fn is_enabled(&self, id: ActionId) -> bool {
        self.actions.iter().any(|&(aid, _)| aid == id)
    }

    /// Requests a wakeup at the given local-clock reading (keeps the
    /// earliest if called repeatedly).
    pub fn wake_at(&mut self, local: f64) -> &mut Self {
        self.wakeup_local = Some(match self.wakeup_local {
            Some(w) => w.min(local),
            None => local,
        });
        self
    }
}

/// A protocol's per-node state machine.
///
/// Implementations hold the node's variables (including neighbor mirrors)
/// and express the protocol as guarded actions. The engine guarantees:
///
/// * [`ProtocolNode::enabled_actions`] is called after every local state
///   change (action execution, message receipt, neighbor change, wakeup);
/// * an action is executed only after its guard was continuously enabled
///   for its hold-time on the local clock;
/// * [`ProtocolNode::on_receive`] runs atomically per message;
/// * statements' sends are delivered reliably (while the edge stays up)
///   with bounded delay and per-edge FIFO order.
///
/// Node state and messages must be [`Send`] (messages also [`Sync`], as
/// broadcast fan-out shares one `Arc` payload across regions): the
/// region-parallel executor moves per-region state across worker threads
/// at window boundaries. Protocol state is plain data, so these bounds
/// are satisfied structurally in practice.
pub trait ProtocolNode: Send {
    /// Message payload exchanged between neighbors.
    type Msg: Clone + fmt::Debug + Send + Sync;

    /// Evaluates all guards against the current state. `now_local` is the
    /// node's clock reading.
    fn enabled_actions(&self, now_local: f64) -> EnabledSet;

    /// [`ProtocolNode::enabled_actions`], writing into a caller-provided
    /// (cleared) set. The engine re-evaluates guards after every event and
    /// calls this with a reusable buffer; protocols should override it
    /// with their actual guard logic (and implement `enabled_actions` by
    /// delegation) so the hot path allocates nothing.
    fn enabled_actions_into(&self, now_local: f64, out: &mut EnabledSet) {
        *out = self.enabled_actions(now_local);
    }

    /// Executes the statement of `action` atomically. Implementations must
    /// call [`Effects::note_var_change`] whenever a *protocol variable*
    /// (for routing: distance, parent, containment flag) changes value —
    /// this is what stabilization-time measurement keys on.
    fn execute(&mut self, action: ActionId, now_local: f64, fx: &mut Effects<Self::Msg>);

    /// Handles a received message (a zero-hold receive action).
    fn on_receive(
        &mut self,
        from: NodeId,
        msg: &Self::Msg,
        now_local: f64,
        fx: &mut Effects<Self::Msg>,
    );

    /// Informs the node of its current neighbor set (called once at start
    /// and again after every topology change affecting it). Implementations
    /// should drop mirrors of vanished neighbors.
    fn on_neighbors_changed(
        &mut self,
        neighbors: &BTreeMap<NodeId, Weight>,
        now_local: f64,
        fx: &mut Effects<Self::Msg>,
    );

    /// How many protocol-level adverts one wire message carries. Batching
    /// wrappers (one message = many per-instance adverts) override this
    /// with the batch length so [`crate::EngineStats`]' ledger can count
    /// both wire messages and inner adverts; unbatched protocols carry
    /// exactly one.
    fn advert_count(_msg: &Self::Msg) -> u64 {
        1
    }

    /// The node's current problem-specific variables `(d.v, p.v)`.
    fn route_entry(&self) -> RouteEntry;

    /// The node's route entry toward an arbitrary destination — the
    /// per-hop lookup the engine's data-plane packet lane forwards on.
    /// Single-destination protocols compute one tree and route everything
    /// along it, so the default ignores `dest`; multi-destination wrappers
    /// override this with their per-instance lookup. `None` means the node
    /// holds no state at all for that destination (packets black-hole).
    fn route_entry_toward(&self, dest: NodeId) -> Option<RouteEntry> {
        let _ = dest;
        Some(self.route_entry())
    }

    /// Whether the node is currently involved in a containment wave
    /// (`ghost.v` for LSRP; `false` for protocols without containment).
    fn in_containment(&self) -> bool {
        false
    }

    /// Human-readable name of an action kind (for traces and timelines).
    fn action_name(action: ActionId) -> &'static str;

    /// Maintenance actions (LSRP's `SYN1`) are excluded from contamination
    /// accounting, matching the paper's examples which count only
    /// `S1/S2/C1/C2/SC` executions.
    fn is_maintenance(action: ActionId) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_id_display() {
        assert_eq!(ActionId::plain(3).to_string(), "#3");
        assert_eq!(
            ActionId::with_param(2, NodeId::new(7)).to_string(),
            "#2(v7)"
        );
    }

    #[test]
    fn enabled_set_builder() {
        let mut s = EnabledSet::none();
        s.enable(ActionId::plain(1), 2.0).wake_at(9.0).wake_at(5.0);
        assert_eq!(s.actions.len(), 1);
        assert_eq!(s.wakeup_local, Some(5.0));
    }
}
