//! Side-effects of a protocol statement: message sends and
//! variable-change notes.

use lsrp_graph::NodeId;

/// Where an outgoing message goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendTarget {
    /// To every current neighbor (the common case — the paper's statements
    /// all "send msg(...) to N.v").
    Broadcast,
    /// To a single neighbor.
    To(NodeId),
}

/// Staging area for *batched* sends.
///
/// Wrapper protocols that multiplex many inner instances over one link
/// (e.g. the multi-destination plane, one LSRP instance per destination)
/// stage at most one advert per instance key here instead of emitting a
/// wire message per instance, then flush the whole batch as a *single*
/// broadcast via [`Effects::send_batched`] — one engine delivery event per
/// neighbor amortizes across every staged instance.
///
/// Staging is latest-wins per key: re-staging a key replaces its message
/// in place (keeping its position). That is equivalent to sending both
/// copies over a FIFO link, because the inner receive action is
/// last-writer-wins mirror absorption and no event can interleave between
/// two same-instant deliveries from the same sender.
#[derive(Debug, Clone, PartialEq)]
pub struct SendBatch<K, M> {
    entries: Vec<(K, M)>,
}

impl<K, M> Default for SendBatch<K, M> {
    fn default() -> Self {
        SendBatch {
            entries: Vec::new(),
        }
    }
}

impl<K: PartialEq + Copy, M> SendBatch<K, M> {
    /// An empty batch.
    pub fn new() -> Self {
        SendBatch::default()
    }

    /// Number of staged adverts (at most one per key).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stages an advert for `key`, replacing (latest-wins) any advert
    /// already staged for it.
    pub fn stage(&mut self, key: K, msg: M) {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => *slot = msg,
            None => self.entries.push((key, msg)),
        }
    }

    /// Takes the staged adverts out, leaving the batch empty.
    pub fn take(&mut self) -> Vec<(K, M)> {
        std::mem::take(&mut self.entries)
    }
}

/// Collector for the side-effects of one atomic statement (action execution,
/// message receipt, or neighbor-change handler).
#[derive(Debug)]
pub struct Effects<M> {
    pub(crate) sends: Vec<(SendTarget, M)>,
    pub(crate) var_changed: bool,
    pub(crate) mirror_changed: bool,
}

impl<M> Default for Effects<M> {
    fn default() -> Self {
        Effects::new()
    }
}

impl<M> Effects<M> {
    pub(crate) fn new() -> Self {
        Effects {
            sends: Vec::new(),
            var_changed: false,
            mirror_changed: false,
        }
    }

    /// Empties the collector while keeping the send buffer's allocation —
    /// the engine reuses one collector across events.
    pub(crate) fn clear(&mut self) {
        self.sends.clear();
        self.var_changed = false;
        self.mirror_changed = false;
    }

    /// Sends `msg` to every current neighbor.
    pub fn broadcast(&mut self, msg: M) {
        self.sends.push((SendTarget::Broadcast, msg));
    }

    /// Sends `msg` to one neighbor. Silently dropped by the engine if the
    /// edge is not up at send time.
    pub fn send_to(&mut self, to: NodeId, msg: M) {
        self.sends.push((SendTarget::To(to), msg));
    }

    /// Notes that a protocol variable changed value. Stabilization time is
    /// the last instant any node notes a change, so implementations must
    /// call this for changes to `d`, `p`, containment flags — but *not* for
    /// neighbor-mirror refreshes.
    pub fn note_var_change(&mut self) {
        self.var_changed = true;
    }

    /// Whether a variable change was noted.
    pub fn var_changed(&self) -> bool {
        self.var_changed
    }

    /// Notes that a *neighbor mirror* changed value. Mirror changes do not
    /// count toward stabilization time, but they do count as "effective"
    /// for quiescence detection — a stale mirror refresh can still enable
    /// future actions.
    pub fn note_mirror_change(&mut self) {
        self.mirror_changed = true;
    }

    /// Whether a mirror change was noted.
    pub fn mirror_changed(&self) -> bool {
        self.mirror_changed
    }

    /// Creates a detached collector, for *composing* protocols: a wrapper
    /// node (e.g. the multi-destination multiplexer) runs an inner
    /// protocol against a detached collector and folds the result into its
    /// own via [`Effects::merge_into`].
    pub fn detached() -> Self {
        Effects::new()
    }

    /// Folds this collector into `outer`, translating each queued message
    /// with `wrap` and OR-ing the change flags.
    pub fn merge_into<N>(self, outer: &mut Effects<N>, mut wrap: impl FnMut(M) -> N) {
        for (target, msg) in self.sends {
            outer.sends.push((target, wrap(msg)));
        }
        outer.var_changed |= self.var_changed;
        outer.mirror_changed |= self.mirror_changed;
    }

    /// Folds this (detached) collector into `outer` for a *batching*
    /// wrapper: every broadcast is staged into `batch` under `key`
    /// (latest-wins) instead of being queued as its own wire message, and
    /// the change flags are OR-ed into `outer`. The wrapper later flushes
    /// the batch with [`Effects::send_batched`].
    ///
    /// # Panics
    ///
    /// Panics on targeted sends — batching wrappers multiplex
    /// broadcast-only protocols (one batch per (sender, neighbor) pair
    /// falls out of broadcasting the batch).
    pub fn merge_batched_into<N, K: PartialEq + Copy>(
        self,
        outer: &mut Effects<N>,
        batch: &mut SendBatch<K, M>,
        key: K,
    ) {
        for (target, msg) in self.sends {
            match target {
                SendTarget::Broadcast => batch.stage(key, msg),
                SendTarget::To(n) => {
                    panic!("merge_batched_into supports broadcast-only inner protocols (got a targeted send to {n})")
                }
            }
        }
        outer.var_changed |= self.var_changed;
        outer.mirror_changed |= self.mirror_changed;
    }

    /// Flushes `batch` as one broadcast wire message: `pack` turns the
    /// drained `(key, advert)` list into the wrapper's message type. No-op
    /// when the batch is empty.
    pub fn send_batched<K: PartialEq + Copy, I>(
        &mut self,
        batch: &mut SendBatch<K, I>,
        pack: impl FnOnce(Vec<(K, I)>) -> M,
    ) {
        if batch.is_empty() {
            return;
        }
        self.broadcast(pack(batch.take()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_sends_and_changes() {
        let mut fx: Effects<u32> = Effects::new();
        assert!(!fx.var_changed());
        fx.broadcast(1);
        fx.send_to(NodeId::new(3), 2);
        fx.note_var_change();
        assert_eq!(fx.sends.len(), 2);
        assert!(fx.var_changed());
    }

    #[test]
    fn staging_is_latest_wins_and_keeps_position() {
        let mut batch: SendBatch<u32, &str> = SendBatch::new();
        batch.stage(7, "old");
        batch.stage(9, "other");
        batch.stage(7, "new");
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.take(), vec![(7, "new"), (9, "other")]);
        assert!(batch.is_empty());
    }

    #[test]
    fn batched_merge_stages_broadcasts_and_flush_sends_one_message() {
        let mut outer: Effects<Vec<(u32, &str)>> = Effects::new();
        let mut batch = SendBatch::new();

        let mut inner: Effects<&str> = Effects::detached();
        inner.broadcast("a");
        inner.note_var_change();
        inner.merge_batched_into(&mut outer, &mut batch, 1);

        let mut inner: Effects<&str> = Effects::detached();
        inner.broadcast("b");
        inner.merge_batched_into(&mut outer, &mut batch, 2);

        assert!(outer.sends.is_empty(), "staged, not sent");
        assert!(outer.var_changed());
        outer.send_batched(&mut batch, |adverts| adverts);
        assert_eq!(outer.sends.len(), 1);
        assert_eq!(outer.sends[0].0, SendTarget::Broadcast);
        assert_eq!(outer.sends[0].1, vec![(1, "a"), (2, "b")]);
        // Flushing an empty batch emits nothing.
        outer.send_batched(&mut batch, |adverts| adverts);
        assert_eq!(outer.sends.len(), 1);
    }

    #[test]
    #[should_panic(expected = "broadcast-only")]
    fn batched_merge_rejects_targeted_sends() {
        let mut outer: Effects<Vec<(u32, u8)>> = Effects::new();
        let mut batch = SendBatch::new();
        let mut inner: Effects<u8> = Effects::detached();
        inner.send_to(NodeId::new(4), 1);
        inner.merge_batched_into(&mut outer, &mut batch, 1);
    }
}
