//! Side-effects of a protocol statement: message sends and
//! variable-change notes.

use lsrp_graph::NodeId;

/// Where an outgoing message goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendTarget {
    /// To every current neighbor (the common case — the paper's statements
    /// all "send msg(...) to N.v").
    Broadcast,
    /// To a single neighbor.
    To(NodeId),
}

/// Collector for the side-effects of one atomic statement (action execution,
/// message receipt, or neighbor-change handler).
#[derive(Debug)]
pub struct Effects<M> {
    pub(crate) sends: Vec<(SendTarget, M)>,
    pub(crate) var_changed: bool,
    pub(crate) mirror_changed: bool,
}

impl<M> Default for Effects<M> {
    fn default() -> Self {
        Effects::new()
    }
}

impl<M> Effects<M> {
    pub(crate) fn new() -> Self {
        Effects {
            sends: Vec::new(),
            var_changed: false,
            mirror_changed: false,
        }
    }

    /// Empties the collector while keeping the send buffer's allocation —
    /// the engine reuses one collector across events.
    pub(crate) fn clear(&mut self) {
        self.sends.clear();
        self.var_changed = false;
        self.mirror_changed = false;
    }

    /// Sends `msg` to every current neighbor.
    pub fn broadcast(&mut self, msg: M) {
        self.sends.push((SendTarget::Broadcast, msg));
    }

    /// Sends `msg` to one neighbor. Silently dropped by the engine if the
    /// edge is not up at send time.
    pub fn send_to(&mut self, to: NodeId, msg: M) {
        self.sends.push((SendTarget::To(to), msg));
    }

    /// Notes that a protocol variable changed value. Stabilization time is
    /// the last instant any node notes a change, so implementations must
    /// call this for changes to `d`, `p`, containment flags — but *not* for
    /// neighbor-mirror refreshes.
    pub fn note_var_change(&mut self) {
        self.var_changed = true;
    }

    /// Whether a variable change was noted.
    pub fn var_changed(&self) -> bool {
        self.var_changed
    }

    /// Notes that a *neighbor mirror* changed value. Mirror changes do not
    /// count toward stabilization time, but they do count as "effective"
    /// for quiescence detection — a stale mirror refresh can still enable
    /// future actions.
    pub fn note_mirror_change(&mut self) {
        self.mirror_changed = true;
    }

    /// Whether a mirror change was noted.
    pub fn mirror_changed(&self) -> bool {
        self.mirror_changed
    }

    /// Creates a detached collector, for *composing* protocols: a wrapper
    /// node (e.g. the multi-destination multiplexer) runs an inner
    /// protocol against a detached collector and folds the result into its
    /// own via [`Effects::merge_into`].
    pub fn detached() -> Self {
        Effects::new()
    }

    /// Folds this collector into `outer`, translating each queued message
    /// with `wrap` and OR-ing the change flags.
    pub fn merge_into<N>(self, outer: &mut Effects<N>, mut wrap: impl FnMut(M) -> N) {
        for (target, msg) in self.sends {
            outer.sends.push((target, wrap(msg)));
        }
        outer.var_changed |= self.var_changed;
        outer.mirror_changed |= self.mirror_changed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_sends_and_changes() {
        let mut fx: Effects<u32> = Effects::new();
        assert!(!fx.var_changed());
        fx.broadcast(1);
        fx.send_to(NodeId::new(3), 2);
        fx.note_var_change();
        assert_eq!(fx.sends.len(), 2);
        assert!(fx.var_changed());
    }
}
