//! The generic simulation harness: one wrapper for every protocol.
//!
//! Each protocol crate used to ship its own engine-wrapper struct
//! (`LsrpSimulation`, `DbfSimulation`, …) re-implementing the same dozen
//! delegating methods. [`SimHarness`] implements them once, generically;
//! protocols plug in through [`HarnessProtocol`], a small extension of
//! [`ProtocolNode`] that adds the protocol-specific fault hooks (state
//! corruption, mirror poisoning, route injection). Protocol crates expose
//! their old names as type aliases (`type LsrpSimulation =
//! SimHarness<LsrpNode>`) plus extension traits for protocol-specific
//! conveniences.

use std::collections::BTreeSet;
use std::fmt;

use lsrp_graph::{Distance, Graph, GraphError, NodeId, RouteTable, Weight};

use crate::engine::{Engine, EngineStats, RunReport};
use crate::node::ProtocolNode;
use crate::time::SimTime;
use crate::trace::Trace;
use crate::view::{RouteCursor, RouteDelta, RouteView};

/// A forged route advertisement, as planted into a node's mirror of a
/// neighbor by the *mirror poisoning* fault class.
///
/// The harness forges the advertisement from the poisoned-about node's
/// current public state (parent, containment flag) with the attacker's
/// distance substituted — each protocol maps it onto whatever its mirrors
/// store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForgedAdvert {
    /// The advertised (forged) distance.
    pub d: Distance,
    /// The advertised parent.
    pub parent: NodeId,
    /// The advertised containment flag (protocols without containment
    /// ignore it).
    pub ghost: bool,
}

/// A [`ProtocolNode`] that can run under [`SimHarness`]: adds the
/// protocol-specific fault hooks the unified measurement interface needs.
///
/// All hooks receive the harness's destination so multi-instance protocols
/// can pick the right instance.
pub trait HarnessProtocol: ProtocolNode {
    /// Protocol name, for reports ("LSRP", "DBF", …).
    const NAME: &'static str;

    /// Extra per-simulation data the protocol's facade carries (timing
    /// config for LSRP, `()` for the baselines).
    type Meta: fmt::Debug;

    /// Overwrites the node's distance variable (state corruption).
    fn corrupt_distance(&mut self, d: Distance, dest: NodeId);

    /// Plants a forged advertisement in the node's mirror of `about`.
    fn poison_mirror(&mut self, about: NodeId, advert: ForgedAdvert, dest: NodeId);

    /// Overwrites the node's route `(d, p)` jointly (fault classes that
    /// install a consistent-looking but wrong route).
    fn inject_route(&mut self, d: Distance, p: NodeId, dest: NodeId);
}

/// A protocol simulation: an [`Engine`] plus the destination it routes to,
/// its quiescence settle window, and protocol metadata.
pub struct SimHarness<P: HarnessProtocol> {
    engine: Engine<P>,
    destination: NodeId,
    settle: f64,
    meta: P::Meta,
}

impl<P: HarnessProtocol> fmt::Debug for SimHarness<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimHarness")
            .field("protocol", &P::NAME)
            .field("destination", &self.destination)
            .field("engine", &self.engine)
            .field("meta", &self.meta)
            .finish()
    }
}

impl<P: HarnessProtocol> SimHarness<P> {
    /// Assembles a harness from a built engine (called by each protocol's
    /// builder/constructor).
    pub fn from_parts(engine: Engine<P>, destination: NodeId, settle: f64, meta: P::Meta) -> Self {
        SimHarness {
            engine,
            destination,
            settle,
            meta,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine<P> {
        &self.engine
    }

    /// Mutable access to the underlying engine (fault injection between
    /// runs).
    pub fn engine_mut(&mut self) -> &mut Engine<P> {
        &mut self.engine
    }

    /// The destination all routes lead to.
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// Protocol-specific metadata (e.g. LSRP's timing config).
    pub fn meta(&self) -> &P::Meta {
        &self.meta
    }

    /// Mutable access to the protocol metadata.
    pub fn meta_mut(&mut self) -> &mut P::Meta {
        &mut self.meta
    }

    /// The current topology.
    pub fn graph(&self) -> &Graph {
        self.engine.graph()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The settle window used by [`SimHarness::run_to_quiescence`] (0 for
    /// protocols without periodic maintenance).
    pub fn settle_window(&self) -> f64 {
        self.settle
    }

    /// The current route table.
    pub fn route_table(&self) -> RouteTable {
        self.engine.route_table()
    }

    /// The engine-maintained dense route view.
    pub fn route_view(&self) -> &RouteView {
        self.engine.route_view()
    }

    /// Turns route-delta logging on (idempotent) and returns the current
    /// change cursor (see [`crate::view`]).
    pub fn route_cursor(&mut self) -> RouteCursor {
        self.engine.route_cursor()
    }

    /// Every route delta recorded after `cursor`, oldest first.
    ///
    /// # Panics
    ///
    /// Panics for cursors that were trimmed past.
    pub fn route_deltas_since(&self, cursor: RouteCursor) -> &[RouteDelta] {
        self.engine.route_deltas_since(cursor)
    }

    /// Discards route deltas every consumer has advanced past.
    pub fn trim_route_deltas(&mut self, cursor: RouteCursor) {
        self.engine.trim_route_deltas(cursor);
    }

    /// Whether every node's `(d, p)` is correct for the current topology.
    pub fn routes_correct(&self) -> bool {
        self.route_table()
            .is_correct(self.engine.graph(), self.destination)
    }

    /// Nodes currently involved in a containment wave.
    pub fn containment_set(&self) -> BTreeSet<NodeId> {
        self.engine
            .graph()
            .nodes()
            .filter(|&v| self.engine.node(v).is_some_and(P::in_containment))
            .collect()
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        self.engine.trace()
    }

    /// Clears the trace.
    pub fn reset_trace(&mut self) {
        self.engine.reset_trace();
    }

    /// Always-on engine health statistics.
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Processes exactly one event; `None` when the queue is empty.
    pub fn step(&mut self) -> Option<SimTime> {
        self.engine.step()
    }

    /// Runs until quiescent or `horizon`, using the protocol's settle
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted (a livelock in the protocol
    /// under test).
    pub fn run_to_quiescence(&mut self, horizon: f64) -> RunReport {
        self.engine
            .run_to_quiescence(SimTime::new(horizon), self.settle)
            .unwrap_or_else(|e| panic!("{} must not livelock: {e}", P::NAME))
    }

    /// Runs until simulated time `until`.
    ///
    /// # Panics
    ///
    /// Panics if the event budget is exhausted.
    pub fn run_until(&mut self, until: f64) -> RunReport {
        self.engine
            .run_until(SimTime::new(until))
            .unwrap_or_else(|e| panic!("{} must not livelock: {e}", P::NAME))
    }

    // ------------------------------------------------------------------
    // Fault injection.
    // ------------------------------------------------------------------

    /// Corrupts `v`'s distance variable.
    pub fn corrupt_distance(&mut self, v: NodeId, d: Distance) {
        let dest = self.destination;
        self.engine
            .with_node_mut(v, |n| n.corrupt_distance(d, dest));
    }

    /// Plants a forged advertisement about `about` (with distance `d`) in
    /// `at`'s mirrors. The advertisement carries `about`'s *current*
    /// public parent and containment flag, so it is maximally plausible.
    pub fn poison_mirror(&mut self, at: NodeId, about: NodeId, d: Distance) {
        let dest = self.destination;
        let advert = self.engine.node(about).map_or(
            ForgedAdvert {
                d,
                parent: about,
                ghost: false,
            },
            |n| ForgedAdvert {
                d,
                parent: n.route_entry().parent,
                ghost: n.in_containment(),
            },
        );
        self.engine
            .with_node_mut(at, |n| n.poison_mirror(about, advert, dest));
    }

    /// Installs the route `(d, p)` at `v`.
    pub fn inject_route(&mut self, v: NodeId, d: Distance, p: NodeId) {
        let dest = self.destination;
        self.engine.with_node_mut(v, |n| n.inject_route(d, p, dest));
    }

    /// Fail-stops a node.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for unknown nodes.
    pub fn fail_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        self.engine.fail_node(v)
    }

    /// Joins a new node with the given edges.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the node exists or an edge is invalid.
    pub fn join_node(&mut self, v: NodeId, edges: &[(NodeId, Weight)]) -> Result<(), GraphError> {
        self.engine.join_node(v, edges)
    }

    /// Fail-stops an edge.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for unknown edges.
    pub fn fail_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), GraphError> {
        self.engine.fail_edge(a, b)
    }

    /// Joins an edge.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] on invalid endpoints/weight.
    pub fn join_edge(&mut self, a: NodeId, b: NodeId, w: Weight) -> Result<(), GraphError> {
        self.engine.join_edge(a, b, w)
    }

    /// Changes an edge weight.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for unknown edges or zero weight.
    pub fn set_weight(&mut self, a: NodeId, b: NodeId, w: Weight) -> Result<(), GraphError> {
        self.engine.set_weight(a, b, w)
    }
}
