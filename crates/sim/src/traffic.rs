//! Data-plane packet types for the engine's packet lane.
//!
//! Packets travel *inside* the event queue: each hop is an
//! `Event::PacketHop` dispatched at the packet's arrival time, looking up
//! the next hop in the receiving node's **live** route table
//! ([`crate::node::ProtocolNode::route_entry_toward`]) — so traffic
//! experiences control-plane convergence, containment waves and topology
//! faults exactly as they unfold, not as a post-hoc snapshot probe.
//!
//! Two invariants keep the lane composable with everything built on the
//! engine's determinism contract:
//!
//! 1. **Control-plane isolation.** Packet forwarding draws randomness
//!    (link delays, loss) from a *dedicated* traffic RNG and reads — but
//!    never advances — the Gilbert–Elliott link chains. A run with traffic
//!    produces the byte-identical control-plane trajectory as the same run
//!    without, which is what makes live availability comparable to
//!    snapshot probes on frozen states.
//! 2. **Flow aggregation.** A packet carries a `weight`: the number of
//!    real packets the probe stands for. Workloads representing millions
//!    of packets sample each flow periodically with the accumulated weight
//!    instead of enqueueing every packet (exact per-packet mode is
//!    `weight = 1`). All traffic counters are weighted.
//!
//! Loop detection is Brent's algorithm carried in O(1) state per packet
//! (a checkpoint node plus a power-of-two lap counter): on a frozen route
//! table a revisit to the checkpoint proves a true forwarding cycle and
//! yields its exact length. Under live churn the tables shift beneath the
//! packet, so a reported cycle is "the packet re-entered its recorded
//! loop" — the practical data-plane signal — while TTL stays the backstop.

use lsrp_graph::NodeId;

use crate::flow::FlowTag;
use crate::time::SimTime;

/// A packet in flight. Created by [`crate::engine::Engine::inject_packet`];
/// lives inside `Event::PacketHop` queue entries until it completes.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Node the packet is currently arriving at.
    pub at: NodeId,
    /// Hops taken so far.
    pub hops: u32,
    /// Hop budget; the packet expires when `hops` would exceed it.
    pub ttl: u32,
    /// How many real packets this probe represents (flow aggregation).
    pub weight: u64,
    /// Sum of traversed edge weights (for stretch vs `shortest_path`).
    pub cost: u64,
    /// Injection time.
    pub injected_at: SimTime,
    /// ECN congestion mark, set by a marking queue discipline on the way
    /// and echoed on the flow ACK for delivered flow segments.
    pub marked: bool,
    /// Flow attribution and Go-Back-N sequence number, for segments sent
    /// by [`crate::engine::Engine::start_flow`] (plain probes carry none).
    pub flow: Option<FlowTag>,
    /// The node that forwarded the packet to `at` (`None` at the source).
    /// PFC-style pause uses it to find the upstream port to silence.
    pub(crate) came_from: Option<NodeId>,
    /// Brent checkpoint: the node a revisit of which proves a cycle.
    checkpoint: NodeId,
    /// Hops taken since the checkpoint was planted.
    lap: u32,
    /// Current power-of-two lap limit; reaching it re-plants the checkpoint.
    power: u32,
}

impl Packet {
    pub(crate) fn new(src: NodeId, dest: NodeId, ttl: u32, weight: u64, at: SimTime) -> Self {
        Packet {
            src,
            dest,
            at: src,
            hops: 0,
            ttl,
            weight,
            cost: 0,
            injected_at: at,
            marked: false,
            flow: None,
            came_from: None,
            checkpoint: src,
            lap: 0,
            power: 1,
        }
    }

    /// Advances Brent's cycle detector for a hop onto `next`. Returns the
    /// cycle length if `next` closes a detected cycle.
    pub(crate) fn brent_step(&mut self, next: NodeId) -> Option<u32> {
        if next == self.checkpoint {
            return Some(self.lap + 1);
        }
        self.lap += 1;
        if self.lap == self.power {
            self.checkpoint = next;
            self.power = self.power.saturating_mul(2);
            self.lap = 0;
        }
        None
    }
}

/// How a packet's journey ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketStatus {
    /// Reached its destination.
    Delivered,
    /// A node on the path had no usable route toward the destination (no
    /// entry, infinite distance, or a self-parent short of the
    /// destination).
    BlackHoled {
        /// The routeless node.
        at: NodeId,
    },
    /// The route pointed across a link that is down, or the node holding
    /// the packet fail-stopped before forwarding it.
    LinkDown {
        /// Where the packet died.
        at: NodeId,
    },
    /// The packet re-entered a forwarding cycle (Brent detection).
    Looped {
        /// Length of the detected cycle in hops.
        cycle_len: u32,
    },
    /// The hop budget ran out before any other fate.
    TtlExpired,
    /// The loss model dropped the packet on a link.
    Lost {
        /// The node that transmitted the lost copy.
        at: NodeId,
    },
    /// A bounded egress queue overflowed (congestion lane only) and the
    /// discipline dropped the packet.
    QueueDropped {
        /// The node whose port queue was full.
        at: NodeId,
    },
}

/// One completed packet, drained via
/// [`crate::engine::Engine::drain_completed_packets`].
#[derive(Debug, Clone, Copy)]
pub struct PacketRecord {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// How the journey ended.
    pub status: PacketStatus,
    /// Hops taken.
    pub hops: u32,
    /// Sum of traversed edge weights.
    pub cost: u64,
    /// Real packets represented (flow aggregation weight).
    pub weight: u64,
    /// Injection time.
    pub injected_at: SimTime,
    /// Completion time (delivery, drop or expiry).
    pub completed_at: SimTime,
    /// Whether the packet completed carrying an ECN congestion mark.
    pub marked: bool,
    /// Flow attribution for Go-Back-N segments (`None` for plain probes).
    pub flow: Option<FlowTag>,
}

impl PacketRecord {
    /// End-to-end latency in simulated seconds.
    pub fn latency(&self) -> f64 {
        self.completed_at.since(self.injected_at)
    }
}

/// Always-on, weighted data-plane counters (a field of
/// [`crate::engine::EngineStats`]). Every count is in *represented*
/// packets — a probe of weight `w` moves each counter by `w`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounts {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered to their destination.
    pub delivered: u64,
    /// Packets dropped at a routeless node.
    pub black_holed: u64,
    /// Packets that died on a down link or a failed node.
    pub link_down: u64,
    /// Packets that entered a detected forwarding cycle.
    pub looped: u64,
    /// Packets whose hop budget expired.
    pub ttl_expired: u64,
    /// Packets dropped by the link loss model.
    pub lost: u64,
    /// Packets dropped by a full egress queue (congestion lane). Kept
    /// separate from `lost` so overload drops are distinguishable from
    /// chaos drops in every report.
    pub queue_dropped: u64,
    /// Total hops taken by delivered packets (for mean hop count).
    pub delivered_hops: u64,
}

impl TrafficCounts {
    /// Packets that completed, by any fate.
    pub fn completed(&self) -> u64 {
        self.delivered
            + self.black_holed
            + self.link_down
            + self.looped
            + self.ttl_expired
            + self.lost
            + self.queue_dropped
    }

    /// Delivered fraction of completed packets (1.0 when none completed).
    pub fn delivered_fraction(&self) -> f64 {
        let done = self.completed();
        if done == 0 {
            1.0
        } else {
            self.delivered as f64 / done as f64
        }
    }
}

/// Slab storage for in-flight packets, so `PacketHop` events and port
/// queues carry a `u32` index instead of the full [`Packet`].
///
/// Invariants:
///
/// * Every index handed out by [`PacketArena::alloc`] is owned by exactly
///   one holder (a `PacketHop` event or a port-queue entry) until it is
///   returned through [`PacketArena::take`]; taking transfers the packet
///   out and recycles the slot.
/// * The free list is LIFO, so a hop that takes a packet and immediately
///   re-allocates its forwarded copy reuses the same slot — steady-state
///   traffic runs at a fixed arena footprint equal to the in-flight peak.
/// * Indices never influence event ordering, RNG draws, or any recorded
///   observable, so trajectories are byte-identical to the by-value lane.
#[derive(Debug, Default)]
pub(crate) struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
}

impl PacketArena {
    /// Stores `p`, returning its slot index.
    pub(crate) fn alloc(&mut self, p: Packet) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = p;
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("more than u32::MAX live packets");
                self.slots.push(p);
                i
            }
        }
    }

    /// Removes and returns the packet at `i`, recycling the slot. The
    /// index must have come from [`PacketArena::alloc`] and not have been
    /// taken already (the slot's stale contents make double-takes
    /// undetectable — holders own their index uniquely).
    pub(crate) fn take(&mut self, i: u32) -> Packet {
        debug_assert!(
            !self.free.contains(&i),
            "packet arena double-take of slot {i}"
        );
        self.free.push(i);
        self.slots[i as usize]
    }

    /// Live packets currently parked in the arena.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_detects_a_two_cycle() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let c = NodeId::new(3);
        let mut p = Packet::new(a, NodeId::new(9), 64, 1, SimTime::ZERO);
        // a -> b -> c -> b -> c -> ... checkpoint lands inside the cycle.
        assert_eq!(p.brent_step(b), None);
        assert_eq!(p.brent_step(c), None);
        let mut hops = 0;
        let len = loop {
            if let Some(len) = p.brent_step(if hops % 2 == 0 { b } else { c }) {
                break len;
            }
            hops += 1;
            assert!(hops < 32, "cycle never detected");
        };
        assert_eq!(len, 2);
    }

    #[test]
    fn weighted_counts_aggregate() {
        let c = TrafficCounts {
            injected: 10,
            delivered: 6,
            black_holed: 2,
            lost: 2,
            ..TrafficCounts::default()
        };
        assert_eq!(c.completed(), 10);
        assert!((c.delivered_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn arena_recycles_slots_lifo() {
        let mut a = PacketArena::default();
        let p = |w| Packet::new(NodeId::new(1), NodeId::new(2), 8, w, SimTime::ZERO);
        let i0 = a.alloc(p(10));
        let i1 = a.alloc(p(20));
        assert_ne!(i0, i1);
        assert_eq!(a.live(), 2);
        assert_eq!(a.take(i0).weight, 10);
        // LIFO reuse: the freed slot is handed right back.
        let i2 = a.alloc(p(30));
        assert_eq!(i2, i0);
        assert_eq!(a.take(i2).weight, 30);
        assert_eq!(a.take(i1).weight, 20);
        assert_eq!(a.live(), 0);
    }
}
