//! Finite-capacity links and bounded per-port egress queues.
//!
//! PR 5's packet lane forwards over infinite-capacity links: a hop costs
//! one propagation delay and nothing else, so the data plane can never
//! saturate. This module adds the missing resource model:
//!
//! * **Link rate.** Each directed link serializes at a configurable rate
//!   (weighted packets per simulated second). A probe of weight `w`
//!   occupies the transmitter for `w / rate` seconds before its
//!   propagation delay starts, so hotspot fan-in builds real queues.
//! * **Bounded egress queues.** Each node holds one FIFO egress queue per
//!   outgoing link (a *port*). Occupancy is counted in weighted packets
//!   and bounded by [`CongestionConfig::queue_capacity`]; what happens at
//!   the bound is decided by a pluggable [`QueueDiscipline`].
//!
//! Three disciplines ship with the engine:
//!
//! * [`DropTail`] — drop arrivals that would overflow the queue.
//! * [`EcnMarking`] — drop-tail at capacity, but set the packet's
//!   congestion mark once occupancy crosses a threshold fraction; marks
//!   are echoed on flow ACKs and drive [`crate::flow::CongAlg::on_mark`].
//! * [`PfcPause`] — 802.3x-flavored backpressure: crossing the threshold
//!   pauses the *upstream* port (the one that forwarded the packet here)
//!   for a fixed quantum, pushing the queue buildup one hop back.
//!   Drop-tail at full capacity remains the backstop, so the occupancy
//!   bound `occupancy <= capacity` is an invariant of *every* discipline.
//!
//! The whole lane is gated on [`CongestionConfig::link_rate`]: with the
//! default `None` (infinite rate, queues cannot build) the engine runs the
//! PR-5 forwarding path byte-for-byte — that equivalence is the oracle the
//! congestion tests pin.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Verdict of a [`QueueDiscipline`] on one arriving packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission {
    /// Whether the packet enters the queue (`false` = queue-overflow drop).
    pub admit: bool,
    /// Whether to set the packet's ECN congestion mark.
    pub mark: bool,
    /// Seconds of pause to apply to the upstream port (0.0 = none).
    pub pause_upstream: f64,
}

impl Admission {
    /// Plain admission: no mark, no pause.
    pub const ACCEPT: Admission = Admission {
        admit: true,
        mark: false,
        pause_upstream: 0.0,
    };
    /// Queue-overflow drop.
    pub const DROP: Admission = Admission {
        admit: false,
        mark: false,
        pause_upstream: 0.0,
    };
}

/// A per-port queue admission policy.
///
/// The engine consults the discipline once per forwarded packet, passing
/// the target port's current weighted occupancy and the configured
/// capacity (`None` = unbounded). Disciplines are pure policy: they never
/// see the queue itself, so they cannot break the occupancy invariant the
/// engine enforces.
pub trait QueueDiscipline: fmt::Debug + Send + Sync {
    /// Decides the fate of a packet of weight `weight` arriving at a port
    /// holding `occupancy` weighted packets out of `capacity`.
    fn admit(&self, occupancy: u64, weight: u64, capacity: Option<u64>) -> Admission;
}

/// Whether `occupancy + weight` fits under `capacity`.
fn fits(occupancy: u64, weight: u64, capacity: Option<u64>) -> bool {
    capacity.is_none_or(|cap| occupancy.saturating_add(weight) <= cap)
}

/// Classic drop-tail: admit until the queue is full, drop the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropTail;

impl QueueDiscipline for DropTail {
    fn admit(&self, occupancy: u64, weight: u64, capacity: Option<u64>) -> Admission {
        if fits(occupancy, weight, capacity) {
            Admission::ACCEPT
        } else {
            Admission::DROP
        }
    }
}

/// Drop-tail at capacity, ECN mark above a threshold fraction of it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcnMarking {
    /// Occupancy fraction of capacity at which admitted packets are
    /// marked (e.g. `0.5` marks once the queue is half full).
    pub mark_at: f64,
}

impl QueueDiscipline for EcnMarking {
    fn admit(&self, occupancy: u64, weight: u64, capacity: Option<u64>) -> Admission {
        if !fits(occupancy, weight, capacity) {
            return Admission::DROP;
        }
        let mark = capacity.is_some_and(|cap| {
            (occupancy.saturating_add(weight)) as f64 >= self.mark_at * cap as f64
        });
        Admission {
            admit: true,
            mark,
            pause_upstream: 0.0,
        }
    }
}

/// PFC-style pause: crossing the threshold pauses the upstream port for a
/// fixed quantum; drop-tail at full capacity stays as the backstop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfcPause {
    /// Occupancy fraction of capacity at which pause frames are emitted.
    pub pause_at: f64,
    /// Seconds each pause frame silences the upstream port for.
    pub quantum: f64,
}

impl QueueDiscipline for PfcPause {
    fn admit(&self, occupancy: u64, weight: u64, capacity: Option<u64>) -> Admission {
        if !fits(occupancy, weight, capacity) {
            return Admission::DROP;
        }
        let pause = capacity.is_some_and(|cap| {
            (occupancy.saturating_add(weight)) as f64 >= self.pause_at * cap as f64
        });
        Admission {
            admit: true,
            mark: false,
            pause_upstream: if pause { self.quantum } else { 0.0 },
        }
    }
}

/// Which [`QueueDiscipline`] the engine builds — the config-friendly
/// (plain-data, comparable) handle for the pluggable trait.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DisciplineKind {
    /// [`DropTail`].
    #[default]
    DropTail,
    /// [`EcnMarking`] with the given mark threshold fraction.
    Ecn {
        /// Occupancy fraction of capacity at which to mark.
        mark_at: f64,
    },
    /// [`PfcPause`] with the given threshold fraction and pause quantum.
    Pause {
        /// Occupancy fraction of capacity at which to pause upstream.
        pause_at: f64,
        /// Seconds per pause frame.
        quantum: f64,
    },
}

impl DisciplineKind {
    /// Instantiates the discipline.
    pub fn build(&self) -> Box<dyn QueueDiscipline> {
        match *self {
            DisciplineKind::DropTail => Box::new(DropTail),
            DisciplineKind::Ecn { mark_at } => Box::new(EcnMarking { mark_at }),
            DisciplineKind::Pause { pause_at, quantum } => Box::new(PfcPause { pause_at, quantum }),
        }
    }

    /// Parses a CLI spelling (`drop-tail` / `ecn` / `pause`), with the
    /// stock thresholds (mark at half, pause at three quarters, one-second
    /// quantum).
    pub fn parse(s: &str) -> Option<DisciplineKind> {
        match s {
            "drop-tail" | "droptail" => Some(DisciplineKind::DropTail),
            "ecn" => Some(DisciplineKind::Ecn { mark_at: 0.5 }),
            "pause" | "pfc" => Some(DisciplineKind::Pause {
                pause_at: 0.75,
                quantum: 1.0,
            }),
            _ => None,
        }
    }

    /// Validates threshold parameters.
    ///
    /// # Panics
    ///
    /// Panics if a threshold fraction is not in `(0, 1]` or a pause
    /// quantum is not positive and finite.
    pub fn validate(&self) {
        let frac = |name: &str, f: f64| {
            assert!(!f.is_nan(), "{name} must not be NaN");
            assert!(f > 0.0 && f <= 1.0, "{name} must be a fraction in (0, 1]");
        };
        match *self {
            DisciplineKind::DropTail => {}
            DisciplineKind::Ecn { mark_at } => frac("ecn mark_at", mark_at),
            DisciplineKind::Pause { pause_at, quantum } => {
                frac("pause pause_at", pause_at);
                assert!(
                    quantum > 0.0 && quantum.is_finite(),
                    "pause quantum must be positive and finite"
                );
            }
        }
    }
}

/// Resource limits of the data plane. The default (`link_rate: None`) is
/// the PR-5 lane: infinite-rate links, no queues, byte-identical
/// trajectories — the equivalence oracle for everything in this module.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CongestionConfig {
    /// Link serialization rate in weighted packets per second; `None`
    /// disables the congestion lane entirely (infinite capacity).
    pub link_rate: Option<f64>,
    /// Per-port egress queue capacity in weighted packets; `None` =
    /// unbounded queues (rate still applies when set).
    pub queue_capacity: Option<u64>,
    /// Admission policy at the bound.
    pub discipline: DisciplineKind,
}

impl CongestionConfig {
    /// Finite-rate links with bounded drop-tail queues.
    pub fn limited(link_rate: f64, queue_capacity: u64) -> Self {
        CongestionConfig {
            link_rate: Some(link_rate),
            queue_capacity: Some(queue_capacity),
            discipline: DisciplineKind::DropTail,
        }
    }

    /// Sets the queue discipline (builder style).
    #[must_use]
    pub fn with_discipline(mut self, discipline: DisciplineKind) -> Self {
        self.discipline = discipline;
        self
    }

    /// Whether the congestion lane is active at all.
    pub fn enabled(&self) -> bool {
        self.link_rate.is_some()
    }

    /// Validates rate, capacity and discipline parameters.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive/non-finite rate, a zero capacity, or
    /// invalid discipline thresholds.
    pub fn validate(&self) {
        if let Some(rate) = self.link_rate {
            assert!(!rate.is_nan(), "link_rate must not be NaN");
            assert!(
                rate > 0.0 && rate.is_finite(),
                "link_rate must be positive and finite"
            );
        }
        if let Some(cap) = self.queue_capacity {
            assert!(cap > 0, "queue_capacity must be >= 1 weighted packet");
        }
        self.discipline.validate();
    }
}

/// Always-on congestion lane counters (a field of
/// [`crate::engine::EngineStats`]). Zero whenever the lane is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CongestionCounts {
    /// High-water mark of any single port's weighted occupancy.
    pub peak_port_occupancy: u64,
    /// Weighted packets admitted with an ECN mark.
    pub ecn_marks: u64,
    /// Pause frames applied to upstream ports.
    pub pause_frames: u64,
    /// Weighted flow payload offered via [`crate::engine::Engine::start_flow`].
    pub flow_offered_weight: u64,
    /// Weighted flow payload cumulatively acknowledged (unique goodput —
    /// retransmissions of an already-acked segment never count twice).
    pub flow_acked_weight: u64,
    /// Weighted flow payload retransmitted by Go-Back-N timeouts.
    pub flow_retransmit_weight: u64,
    /// Flow retransmit timers that fired (not stale ones).
    pub flow_timeouts: u64,
}

/// One packet parked in a port queue, with its pre-drawn propagation
/// delay (drawn at enqueue so the traffic RNG consumption order stays
/// deterministic regardless of drain timing).
///
/// The packet itself lives in the engine's [`crate::traffic::PacketArena`];
/// the queue holds only its slab index, plus a copy of the weight so the
/// serialization-time and occupancy arithmetic never touch the arena.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedPacket {
    /// Arena index of the parked packet.
    pub packet: u32,
    /// The packet's weight ([`crate::traffic::Packet::weight`]).
    pub weight: u64,
    pub prop_delay: f64,
}

/// Egress queue state of one directed link.
#[derive(Debug, Clone, Default)]
pub(crate) struct PortState {
    /// FIFO of admitted packets awaiting serialization.
    pub queue: VecDeque<QueuedPacket>,
    /// Sum of queued packet weights (the bounded quantity).
    pub occupancy: u64,
    /// Whether a `PortDrain` event is scheduled for this port.
    pub draining: bool,
    /// PFC pause horizon: the port releases nothing before this time.
    pub paused_until: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_tail_admits_until_full() {
        let d = DropTail;
        assert_eq!(d.admit(0, 4, Some(8)), Admission::ACCEPT);
        assert_eq!(d.admit(4, 4, Some(8)), Admission::ACCEPT);
        assert_eq!(d.admit(5, 4, Some(8)), Admission::DROP);
        // Unbounded: never drops.
        assert_eq!(d.admit(u64::MAX - 1, 4, None), Admission::ACCEPT);
    }

    #[test]
    fn ecn_marks_above_threshold_and_drops_at_capacity() {
        let d = EcnMarking { mark_at: 0.5 };
        assert!(!d.admit(0, 1, Some(10)).mark);
        let v = d.admit(4, 1, Some(10));
        assert!(v.admit && v.mark);
        assert!(!d.admit(10, 1, Some(10)).admit);
        // No capacity: nothing to take a fraction of, never marks.
        assert!(!d.admit(1_000, 1, None).mark);
    }

    #[test]
    fn pause_emits_quanta_above_threshold_with_drop_backstop() {
        let d = PfcPause {
            pause_at: 0.75,
            quantum: 2.0,
        };
        assert_eq!(d.admit(0, 1, Some(8)).pause_upstream, 0.0);
        let v = d.admit(5, 1, Some(8));
        assert!(v.admit);
        assert_eq!(v.pause_upstream, 2.0);
        assert!(!d.admit(8, 1, Some(8)).admit);
    }

    #[test]
    fn discipline_kind_parses_and_builds() {
        assert_eq!(
            DisciplineKind::parse("drop-tail"),
            Some(DisciplineKind::DropTail)
        );
        assert!(matches!(
            DisciplineKind::parse("ecn"),
            Some(DisciplineKind::Ecn { .. })
        ));
        assert!(matches!(
            DisciplineKind::parse("pfc"),
            Some(DisciplineKind::Pause { .. })
        ));
        assert_eq!(DisciplineKind::parse("red"), None);
        // Every kind builds a live discipline.
        for kind in [
            DisciplineKind::DropTail,
            DisciplineKind::Ecn { mark_at: 0.5 },
            DisciplineKind::Pause {
                pause_at: 0.75,
                quantum: 1.0,
            },
        ] {
            kind.validate();
            let d = kind.build();
            assert!(d.admit(0, 1, Some(4)).admit);
        }
    }

    #[test]
    fn unlimited_config_is_disabled() {
        let c = CongestionConfig::default();
        assert!(!c.enabled());
        c.validate();
        let c = CongestionConfig::limited(100.0, 16);
        assert!(c.enabled());
        c.validate();
    }

    #[test]
    #[should_panic(expected = "link_rate must be positive")]
    fn zero_rate_rejected() {
        CongestionConfig::limited(0.0, 16).validate();
    }

    #[test]
    #[should_panic(expected = "queue_capacity must be >= 1")]
    fn zero_capacity_rejected() {
        CongestionConfig::limited(10.0, 0).validate();
    }

    #[test]
    #[should_panic(expected = "mark_at must be a fraction")]
    fn bad_mark_threshold_rejected() {
        CongestionConfig::limited(10.0, 8)
            .with_discipline(DisciplineKind::Ecn { mark_at: 1.5 })
            .validate();
    }
}
