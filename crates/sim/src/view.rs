//! The incremental observation plane: a dense, versioned route view.
//!
//! Every consumer of routing state used to call [`Engine::route_table`]
//! and diff the result — O(n) per observation, which turns an O(changes)
//! recovery into an O(events × n) measurement. The engine instead
//! maintains a [`RouteView`]: a dense per-slot copy of each node's
//! observable routing state (`(d, p)` plus the containment flag),
//! refreshed at the single point effects are applied, so it is *always*
//! current at O(1) cost per state change.
//!
//! Consumers that need change feeds (flap counters, loop monitors,
//! legitimacy trackers) obtain a [`RouteCursor`] and read
//! [`RouteDelta`]s instead of rebuilding tables:
//!
//! * [`RouteView::cursor`] marks a position in the change log;
//! * [`RouteView::deltas_since`] returns every change after a cursor, in
//!   the exact order the engine applied them;
//! * [`RouteView::trim`] discards log entries every live cursor has
//!   passed.
//!
//! Delta logging is **off** until the first cursor is taken (via
//! [`Engine::route_cursor`]): bare engine runs pay only the dense-entry
//! refresh, never log growth. The change-cursor contract: a cursor is
//! valid from the moment it is taken until someone trims past it;
//! reading with a trimmed or never-issued cursor panics rather than
//! silently skipping changes.
//!
//! [`Engine::route_table`]: crate::engine::Engine::route_table
//! [`Engine::route_cursor`]: crate::engine::Engine::route_cursor

use lsrp_graph::{NodeId, RouteEntry, RouteTable};

use crate::slots::NodeSlots;

/// One node's observable routing state, as the view tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewEntry {
    /// The problem-specific variables `(d.v, p.v)`.
    pub route: RouteEntry,
    /// Whether the node is in a containment wave (`ghost.v` for LSRP).
    pub containment: bool,
}

/// One observed change: a node's entry went from `old` to `new`.
///
/// `old = None` means the node joined; `new = None` means it fail-stopped.
/// The two are never both `None`, and `old != new` always holds — the view
/// logs only *actual* changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDelta {
    /// The node whose entry changed.
    pub node: NodeId,
    /// The entry before the change (`None` = node was absent).
    pub old: Option<ViewEntry>,
    /// The entry after the change (`None` = node removed).
    pub new: Option<ViewEntry>,
}

/// An opaque position in a [`RouteView`]'s change log.
///
/// Obtained from [`RouteView::cursor`] (or
/// [`Engine::route_cursor`](crate::engine::Engine::route_cursor), which
/// also turns logging on). Advance it with [`RouteCursor::advanced`] after
/// consuming a slice returned by [`RouteView::deltas_since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RouteCursor(u64);

impl RouteCursor {
    /// The cursor `n` deltas past `self` — call with the length of the
    /// slice just consumed from [`RouteView::deltas_since`].
    #[must_use]
    pub fn advanced(self, n: usize) -> RouteCursor {
        RouteCursor(self.0 + n as u64)
    }
}

/// The dense, versioned route view the engine maintains (see the module
/// docs for the contract).
#[derive(Debug, Clone, Default)]
pub struct RouteView {
    entries: NodeSlots<ViewEntry>,
    log: Vec<RouteDelta>,
    /// Cursor position of `log[0]` (deltas before it were trimmed).
    base: u64,
    logging: bool,
}

impl RouteView {
    /// The tracked entry of `v`, if the node is up.
    pub fn entry(&self, v: NodeId) -> Option<ViewEntry> {
        self.entries.get(v).copied()
    }

    /// Iterates `(node, entry)` in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ViewEntry)> + '_ {
        self.entries.iter().map(|(v, e)| (v, *e))
    }

    /// Number of tracked (up) nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no node is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Materializes the `(d, p)` projection as a [`RouteTable`] —
    /// identical, entry for entry, to rebuilding from the protocol nodes.
    pub fn to_table(&self) -> RouteTable {
        self.iter().map(|(v, e)| (v, e.route)).collect()
    }

    /// The current end-of-log position.
    pub fn cursor(&self) -> RouteCursor {
        RouteCursor(self.base + self.log.len() as u64)
    }

    /// Whether change logging is on (it turns on with the first cursor
    /// taken through the engine and stays on).
    pub fn is_logging(&self) -> bool {
        self.logging
    }

    /// Every delta recorded after `cursor`, oldest first. Consume the
    /// slice, then continue from `cursor.advanced(slice.len())`.
    ///
    /// # Panics
    ///
    /// Panics if `cursor` was trimmed past ([`RouteView::trim`]) or lies
    /// beyond the log end (a cursor from a different view).
    pub fn deltas_since(&self, cursor: RouteCursor) -> &[RouteDelta] {
        assert!(
            cursor.0 >= self.base,
            "route cursor {} was trimmed past (log starts at {})",
            cursor.0,
            self.base
        );
        let start = (cursor.0 - self.base) as usize;
        assert!(
            start <= self.log.len(),
            "route cursor {} is beyond the log end {}",
            cursor.0,
            self.base + self.log.len() as u64
        );
        &self.log[start..]
    }

    /// Discards log entries before `cursor` (no-op for already-trimmed
    /// positions). Call once every consumer has advanced past them;
    /// cursors left behind become invalid.
    pub fn trim(&mut self, cursor: RouteCursor) {
        if cursor.0 <= self.base {
            return;
        }
        let upto = ((cursor.0 - self.base) as usize).min(self.log.len());
        self.log.drain(..upto);
        self.base += upto as u64;
    }

    /// Turns delta logging on, from this point forward.
    pub(crate) fn enable_logging(&mut self) {
        self.logging = true;
    }

    /// Records `v`'s current entry (`None` = node down), updating the
    /// dense view and, when logging, the change log. No-change refreshes
    /// are free and log nothing.
    pub(crate) fn record(&mut self, v: NodeId, new: Option<ViewEntry>) {
        let old = self.entries.get(v).copied();
        if old == new {
            return;
        }
        match new {
            Some(e) => {
                self.entries.insert(v, e);
            }
            None => {
                self.entries.remove(v);
            }
        }
        if self.logging {
            self.log.push(RouteDelta { node: v, old, new });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_graph::Distance;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn entry(d: u64, p: u32) -> ViewEntry {
        ViewEntry {
            route: RouteEntry::new(Distance::Finite(d), v(p)),
            containment: false,
        }
    }

    #[test]
    fn record_updates_dense_entries_and_table() {
        let mut view = RouteView::default();
        view.record(v(0), Some(entry(0, 0)));
        view.record(v(1), Some(entry(1, 0)));
        assert_eq!(view.len(), 2);
        assert_eq!(view.entry(v(1)), Some(entry(1, 0)));
        let table = view.to_table();
        assert_eq!(table.entry(v(1)).unwrap().parent, v(0));
        view.record(v(1), None);
        assert_eq!(view.len(), 1);
        assert_eq!(view.entry(v(1)), None);
    }

    #[test]
    fn logging_is_off_until_enabled_and_skips_no_changes() {
        let mut view = RouteView::default();
        view.record(v(0), Some(entry(0, 0)));
        assert_eq!(view.cursor(), RouteCursor(0), "no log before enabling");
        view.enable_logging();
        let c = view.cursor();
        view.record(v(0), Some(entry(0, 0))); // no change: nothing logged
        view.record(v(0), Some(entry(2, 1)));
        let deltas = view.deltas_since(c);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].node, v(0));
        assert_eq!(deltas[0].old, Some(entry(0, 0)));
        assert_eq!(deltas[0].new, Some(entry(2, 1)));
    }

    #[test]
    fn cursors_advance_and_trim_invalidates() {
        let mut view = RouteView::default();
        view.enable_logging();
        let c0 = view.cursor();
        view.record(v(1), Some(entry(1, 0)));
        view.record(v(2), Some(entry(2, 1)));
        let read = view.deltas_since(c0);
        assert_eq!(read.len(), 2);
        let c1 = c0.advanced(read.len());
        assert_eq!(c1, view.cursor());
        assert!(view.deltas_since(c1).is_empty());
        view.trim(c1);
        assert!(view.deltas_since(c1).is_empty(), "cursor at trim point ok");
        view.record(v(1), None);
        assert_eq!(view.deltas_since(c1).len(), 1);
    }

    #[test]
    #[should_panic(expected = "trimmed past")]
    fn reading_a_trimmed_cursor_panics() {
        let mut view = RouteView::default();
        view.enable_logging();
        let stale = view.cursor();
        view.record(v(1), Some(entry(1, 0)));
        view.trim(view.cursor());
        let _ = view.deltas_since(stale);
    }

    #[test]
    #[should_panic(expected = "beyond the log end")]
    fn reading_a_future_cursor_panics() {
        let view = RouteView::default();
        let _ = view.deltas_since(RouteCursor(5));
    }
}
