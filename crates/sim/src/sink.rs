//! Pluggable trace sinks: where the engine's observability stream goes.
//!
//! Analysis code (monitors, measurements, timelines) wants the full
//! [`Trace`] — per-action records, per-node counters, variable-change
//! times. Benchmarks want cheap counters. Raw throughput runs want
//! nothing at all. The engine therefore writes its observability stream
//! through a [`TraceSink`]:
//!
//! * [`FullTrace`] (an alias for [`Trace`]) — everything; the default, and
//!   what every monitor and measurement in `lsrp-analysis` consumes.
//! * [`CountsOnly`] — scalar counters only; no per-action records, no
//!   per-node maps, no allocation on the hot path.
//! * [`NullSink`] — discards everything.
//!
//! Engine-health statistics (event counts by kind, message totals, peak
//! queue depth — see [`crate::engine::EngineStats`]) are *not* routed
//! through the sink: they are a handful of scalar increments the engine
//! always maintains, so throughput reports exist even with a [`NullSink`].

use lsrp_graph::{Graph, NodeId};

use crate::flow::FlowRecord;
use crate::time::SimTime;
use crate::trace::{ActionRecord, Trace};
use crate::traffic::PacketRecord;
use crate::view::ViewEntry;

/// What kind of driver mutation a [`TraceSink::record_marker`] marks.
///
/// Markers are emitted from the engine's *driver* context — fault
/// injection, topology churn, protocol-state mutation — which is
/// deterministic and region-invariant, so streaming sinks can anchor
/// wave epochs and fault annotations on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// A node fail-stopped ([`crate::engine::Engine::fail_node`]).
    FailNode,
    /// A node rejoined ([`crate::engine::Engine::join_node`]).
    JoinNode,
    /// An edge went down ([`crate::engine::Engine::fail_edge`]).
    FailEdge,
    /// An edge came up ([`crate::engine::Engine::join_edge`]).
    JoinEdge,
    /// An edge weight changed ([`crate::engine::Engine::set_weight`]).
    SetWeight,
    /// Protocol state was mutated in place
    /// ([`crate::engine::Engine::with_node_mut`] — corruption, route
    /// injection, mirror poisoning).
    Mutate,
    /// The sink was reset mid-run ([`crate::engine::Engine::reset_trace`]).
    Reset,
}

impl MarkerKind {
    /// The wire spelling used by structured trace streams.
    pub fn as_str(self) -> &'static str {
        match self {
            MarkerKind::FailNode => "fail_node",
            MarkerKind::JoinNode => "join_node",
            MarkerKind::FailEdge => "fail_edge",
            MarkerKind::JoinEdge => "join_edge",
            MarkerKind::SetWeight => "set_weight",
            MarkerKind::Mutate => "mutate",
            MarkerKind::Reset => "reset",
        }
    }
}

/// A consumer of the engine's observability stream.
///
/// The engine calls these hooks from its hot path; implementations decide
/// what to retain. `Send` is required so whole engines can run inside
/// worker threads of the parallel campaign executor.
pub trait TraceSink: Send {
    /// An action executed. `keep_records` mirrors
    /// [`crate::EngineConfig::record_trace`]: when `false`, sinks should
    /// keep counters but drop per-action records.
    fn record_action(&mut self, rec: ActionRecord, keep_records: bool);

    /// A receive handler changed a protocol variable at `time` on `node`.
    fn record_receive_change(&mut self, time: SimTime, node: NodeId);

    /// A message was handed to a link by `from`.
    fn count_sent(&mut self, from: NodeId);

    /// A message was delivered to a live receiver.
    fn count_delivered(&mut self);

    /// A message was dropped by the link's loss model.
    fn count_dropped_lossy(&mut self);

    /// A message was dropped because its edge or receiver was gone.
    fn count_dropped_dead(&mut self);

    /// An extra copy was scheduled by the link's duplication model.
    fn count_duplicated(&mut self);

    /// Clears everything recorded so far.
    fn reset(&mut self);

    /// The full trace, if this sink keeps one (only [`FullTrace`] does).
    fn trace(&self) -> Option<&Trace> {
        None
    }

    /// The scalar counters, if this sink is a [`CountsOnly`].
    fn counts(&self) -> Option<&CountsOnly> {
        None
    }

    // -----------------------------------------------------------------
    // Streaming hooks. All default to no-ops so the three built-in
    // sinks — and the zero-trace fast path — are untouched; a streaming
    // sink (e.g. `lsrp-trace`'s `StreamingSink`) overrides them. Every
    // hook below is fed exclusively from region-invariant engine points
    // (the ordered ObsOps merge, or the serial driver context), so the
    // emitted stream is byte-identical for every `--regions` value.
    // -----------------------------------------------------------------

    /// Called once when the sink is installed into an engine, before any
    /// events run: the topology and the engine seed, for header frames.
    fn attach(&mut self, graph: &Graph, seed: u64) {
        let _ = (graph, seed);
    }

    /// A driver mutation landed at `time` (see [`MarkerKind`]). `a`/`b`
    /// identify the touched node(s) where applicable.
    fn record_marker(
        &mut self,
        time: SimTime,
        kind: MarkerKind,
        a: Option<NodeId>,
        b: Option<NodeId>,
    ) {
        let _ = (time, kind, a, b);
    }

    /// `node`'s route-view entry was (re)published at `time`. Callers do
    /// not dedup; sinks interested in route *deltas* keep their own
    /// last-seen cache (exactly like [`crate::view::RouteView`] does).
    fn record_view_update(&mut self, time: SimTime, node: NodeId, entry: Option<ViewEntry>) {
        let _ = (time, node, entry);
    }

    /// A packet completed (delivered, dropped or expired).
    fn record_packet_done(&mut self, rec: &PacketRecord) {
        let _ = rec;
    }

    /// A Go-Back-N flow finished (or was aborted).
    fn record_flow_done(&mut self, rec: &FlowRecord) {
        let _ = rec;
    }

    /// A bounded egress port's occupancy changed: `occupancy` is the
    /// post-transition weighted depth of the `from -> to` port;
    /// `dropped` is set when the transition was an admission drop.
    /// Only emitted when [`TraceSink::wants_queue_samples`] returned
    /// `true` at installation time.
    fn record_queue_sample(
        &mut self,
        time: SimTime,
        from: NodeId,
        to: NodeId,
        occupancy: u64,
        dropped: bool,
    ) {
        let _ = (time, from, to, occupancy, dropped);
    }

    /// Whether the engine should thread per-port queue transitions
    /// through the ordered observability stream. Queried once at sink
    /// installation; `false` (the default) keeps the congestion lane's
    /// hot path free of extra observability records.
    fn wants_queue_samples(&self) -> bool {
        false
    }

    /// Retained-state footprint in bytes, if this sink accounts one
    /// (streaming sinks do, so bounded-memory tests can assert it
    /// stays flat as the event stream grows).
    fn footprint(&self) -> Option<usize> {
        None
    }
}

/// The full-fidelity sink: [`Trace`] itself.
pub type FullTrace = Trace;

impl TraceSink for Trace {
    fn record_action(&mut self, rec: ActionRecord, keep_records: bool) {
        Trace::record_action(self, rec, keep_records);
    }

    fn record_receive_change(&mut self, time: SimTime, node: NodeId) {
        Trace::record_receive_change(self, time, node);
    }

    fn count_sent(&mut self, from: NodeId) {
        self.messages_sent += 1;
        *self.sent_counts.entry(from).or_insert(0) += 1;
    }

    fn count_delivered(&mut self) {
        self.messages_delivered += 1;
    }

    fn count_dropped_lossy(&mut self) {
        self.dropped_lossy_link += 1;
    }

    fn count_dropped_dead(&mut self) {
        self.dropped_dead_receiver += 1;
    }

    fn count_duplicated(&mut self) {
        self.messages_duplicated += 1;
    }

    fn reset(&mut self) {
        Trace::reset(self);
    }

    fn trace(&self) -> Option<&Trace> {
        Some(self)
    }
}

/// A sink retaining scalar counters only — no records, no per-node maps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountsOnly {
    /// Non-maintenance actions executed.
    pub actions: u64,
    /// Maintenance actions executed.
    pub maintenance_actions: u64,
    /// Protocol-variable changes noted (in actions or receive handlers).
    pub var_changes: u64,
    /// Messages handed to links.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped_lossy_link: u64,
    /// Messages dropped on dead edges/receivers.
    pub dropped_dead_receiver: u64,
    /// Extra copies scheduled by the duplication model.
    pub messages_duplicated: u64,
}

impl TraceSink for CountsOnly {
    fn record_action(&mut self, rec: ActionRecord, _keep_records: bool) {
        if rec.maintenance {
            self.maintenance_actions += 1;
        } else {
            self.actions += 1;
        }
        if rec.var_changed {
            self.var_changes += 1;
        }
    }

    fn record_receive_change(&mut self, _time: SimTime, _node: NodeId) {
        self.var_changes += 1;
    }

    fn count_sent(&mut self, _from: NodeId) {
        self.messages_sent += 1;
    }

    fn count_delivered(&mut self) {
        self.messages_delivered += 1;
    }

    fn count_dropped_lossy(&mut self) {
        self.dropped_lossy_link += 1;
    }

    fn count_dropped_dead(&mut self) {
        self.dropped_dead_receiver += 1;
    }

    fn count_duplicated(&mut self) {
        self.messages_duplicated += 1;
    }

    fn reset(&mut self) {
        *self = CountsOnly::default();
    }

    fn counts(&self) -> Option<&CountsOnly> {
        Some(self)
    }
}

/// A sink that discards everything (raw-throughput runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record_action(&mut self, _rec: ActionRecord, _keep_records: bool) {}
    fn record_receive_change(&mut self, _time: SimTime, _node: NodeId) {}
    fn count_sent(&mut self, _from: NodeId) {}
    fn count_delivered(&mut self) {}
    fn count_dropped_lossy(&mut self) {}
    fn count_dropped_dead(&mut self) {}
    fn count_duplicated(&mut self) {}
    fn reset(&mut self) {}
}

/// Which sink an engine is configured with (see
/// [`crate::EngineConfig::sink`]).
///
/// Sink choice never affects simulation behavior — event order, RNG
/// draws, route tables and [`crate::engine::EngineStats`] are identical
/// across kinds; only what is *recorded* differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SinkKind {
    /// Full [`Trace`] (the default; required by analysis and monitors).
    #[default]
    Full,
    /// Scalar counters only ([`CountsOnly`]).
    CountsOnly,
    /// Record nothing ([`NullSink`]).
    Null,
}

impl SinkKind {
    /// Builds a fresh sink of this kind.
    pub fn build(self) -> Box<dyn TraceSink> {
        match self {
            SinkKind::Full => Box::new(Trace::new()),
            SinkKind::CountsOnly => Box::new(CountsOnly::default()),
            SinkKind::Null => Box::new(NullSink),
        }
    }
}

/// A shared sink constructor carried by [`crate::EngineConfig`]:
/// lets callers inject a custom [`TraceSink`] (e.g. a file-backed
/// streaming sink) into an engine built deep inside a campaign, without
/// the `sim` crate depending on the sink's crate.
///
/// The closure returns `None` when it declines to produce a sink (the
/// usual pattern is a one-shot factory that arms exactly one engine);
/// the engine then falls back to [`EngineConfig::sink`]'s kind.
///
/// Equality is pointer identity ([`std::sync::Arc::ptr_eq`]) — two
/// configs compare equal only when they share the same factory object —
/// so [`crate::EngineConfig`] keeps its derived `PartialEq`.
///
/// [`EngineConfig::sink`]: crate::EngineConfig
#[derive(Clone)]
pub struct SinkFactory(pub std::sync::Arc<dyn Fn() -> Option<Box<dyn TraceSink>> + Send + Sync>);

impl SinkFactory {
    /// Wraps a sink constructor.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn() -> Option<Box<dyn TraceSink>> + Send + Sync + 'static,
    {
        SinkFactory(std::sync::Arc::new(f))
    }

    /// Invokes the factory.
    pub fn build(&self) -> Option<Box<dyn TraceSink>> {
        (self.0)()
    }
}

impl std::fmt::Debug for SinkFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkFactory(..)")
    }
}

impl PartialEq for SinkFactory {
    fn eq(&self, other: &Self) -> bool {
        std::sync::Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ActionId;

    fn rec(maintenance: bool, var_changed: bool) -> ActionRecord {
        ActionRecord {
            time: SimTime::new(1.0),
            node: NodeId::new(3),
            action: ActionId::plain(0),
            name: "A",
            maintenance,
            var_changed,
        }
    }

    #[test]
    fn counts_only_tracks_scalars() {
        let mut s = CountsOnly::default();
        s.record_action(rec(false, true), true);
        s.record_action(rec(true, false), true);
        s.record_receive_change(SimTime::new(2.0), NodeId::new(1));
        s.count_sent(NodeId::new(1));
        s.count_delivered();
        s.count_duplicated();
        s.count_dropped_lossy();
        s.count_dropped_dead();
        assert_eq!(s.actions, 1);
        assert_eq!(s.maintenance_actions, 1);
        assert_eq!(s.var_changes, 2);
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.messages_duplicated, 1);
        assert_eq!(s.dropped_lossy_link, 1);
        assert_eq!(s.dropped_dead_receiver, 1);
        s.reset();
        assert_eq!(s, CountsOnly::default());
    }

    #[test]
    fn full_trace_sink_matches_trace_semantics() {
        let mut t = Trace::new();
        TraceSink::record_action(&mut t, rec(false, true), true);
        TraceSink::count_sent(&mut t, NodeId::new(3));
        assert_eq!(t.actions.len(), 1);
        assert_eq!(t.total_actions(), 1);
        assert_eq!(t.messages_sent, 1);
        assert_eq!(t.sent_counts[&NodeId::new(3)], 1);
        assert!(TraceSink::trace(&t).is_some());
        assert!(TraceSink::counts(&t).is_none());
    }

    #[test]
    fn kinds_build_the_right_sink() {
        assert!(SinkKind::Full.build().trace().is_some());
        assert!(SinkKind::CountsOnly.build().counts().is_some());
        let null = SinkKind::Null.build();
        assert!(null.trace().is_none() && null.counts().is_none());
    }
}
