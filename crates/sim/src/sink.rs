//! Pluggable trace sinks: where the engine's observability stream goes.
//!
//! Analysis code (monitors, measurements, timelines) wants the full
//! [`Trace`] — per-action records, per-node counters, variable-change
//! times. Benchmarks want cheap counters. Raw throughput runs want
//! nothing at all. The engine therefore writes its observability stream
//! through a [`TraceSink`]:
//!
//! * [`FullTrace`] (an alias for [`Trace`]) — everything; the default, and
//!   what every monitor and measurement in `lsrp-analysis` consumes.
//! * [`CountsOnly`] — scalar counters only; no per-action records, no
//!   per-node maps, no allocation on the hot path.
//! * [`NullSink`] — discards everything.
//!
//! Engine-health statistics (event counts by kind, message totals, peak
//! queue depth — see [`crate::engine::EngineStats`]) are *not* routed
//! through the sink: they are a handful of scalar increments the engine
//! always maintains, so throughput reports exist even with a [`NullSink`].

use lsrp_graph::NodeId;

use crate::time::SimTime;
use crate::trace::{ActionRecord, Trace};

/// A consumer of the engine's observability stream.
///
/// The engine calls these hooks from its hot path; implementations decide
/// what to retain. `Send` is required so whole engines can run inside
/// worker threads of the parallel campaign executor.
pub trait TraceSink: Send {
    /// An action executed. `keep_records` mirrors
    /// [`crate::EngineConfig::record_trace`]: when `false`, sinks should
    /// keep counters but drop per-action records.
    fn record_action(&mut self, rec: ActionRecord, keep_records: bool);

    /// A receive handler changed a protocol variable at `time` on `node`.
    fn record_receive_change(&mut self, time: SimTime, node: NodeId);

    /// A message was handed to a link by `from`.
    fn count_sent(&mut self, from: NodeId);

    /// A message was delivered to a live receiver.
    fn count_delivered(&mut self);

    /// A message was dropped by the link's loss model.
    fn count_dropped_lossy(&mut self);

    /// A message was dropped because its edge or receiver was gone.
    fn count_dropped_dead(&mut self);

    /// An extra copy was scheduled by the link's duplication model.
    fn count_duplicated(&mut self);

    /// Clears everything recorded so far.
    fn reset(&mut self);

    /// The full trace, if this sink keeps one (only [`FullTrace`] does).
    fn trace(&self) -> Option<&Trace> {
        None
    }

    /// The scalar counters, if this sink is a [`CountsOnly`].
    fn counts(&self) -> Option<&CountsOnly> {
        None
    }
}

/// The full-fidelity sink: [`Trace`] itself.
pub type FullTrace = Trace;

impl TraceSink for Trace {
    fn record_action(&mut self, rec: ActionRecord, keep_records: bool) {
        Trace::record_action(self, rec, keep_records);
    }

    fn record_receive_change(&mut self, time: SimTime, node: NodeId) {
        Trace::record_receive_change(self, time, node);
    }

    fn count_sent(&mut self, from: NodeId) {
        self.messages_sent += 1;
        *self.sent_counts.entry(from).or_insert(0) += 1;
    }

    fn count_delivered(&mut self) {
        self.messages_delivered += 1;
    }

    fn count_dropped_lossy(&mut self) {
        self.dropped_lossy_link += 1;
    }

    fn count_dropped_dead(&mut self) {
        self.dropped_dead_receiver += 1;
    }

    fn count_duplicated(&mut self) {
        self.messages_duplicated += 1;
    }

    fn reset(&mut self) {
        Trace::reset(self);
    }

    fn trace(&self) -> Option<&Trace> {
        Some(self)
    }
}

/// A sink retaining scalar counters only — no records, no per-node maps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountsOnly {
    /// Non-maintenance actions executed.
    pub actions: u64,
    /// Maintenance actions executed.
    pub maintenance_actions: u64,
    /// Protocol-variable changes noted (in actions or receive handlers).
    pub var_changes: u64,
    /// Messages handed to links.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped_lossy_link: u64,
    /// Messages dropped on dead edges/receivers.
    pub dropped_dead_receiver: u64,
    /// Extra copies scheduled by the duplication model.
    pub messages_duplicated: u64,
}

impl TraceSink for CountsOnly {
    fn record_action(&mut self, rec: ActionRecord, _keep_records: bool) {
        if rec.maintenance {
            self.maintenance_actions += 1;
        } else {
            self.actions += 1;
        }
        if rec.var_changed {
            self.var_changes += 1;
        }
    }

    fn record_receive_change(&mut self, _time: SimTime, _node: NodeId) {
        self.var_changes += 1;
    }

    fn count_sent(&mut self, _from: NodeId) {
        self.messages_sent += 1;
    }

    fn count_delivered(&mut self) {
        self.messages_delivered += 1;
    }

    fn count_dropped_lossy(&mut self) {
        self.dropped_lossy_link += 1;
    }

    fn count_dropped_dead(&mut self) {
        self.dropped_dead_receiver += 1;
    }

    fn count_duplicated(&mut self) {
        self.messages_duplicated += 1;
    }

    fn reset(&mut self) {
        *self = CountsOnly::default();
    }

    fn counts(&self) -> Option<&CountsOnly> {
        Some(self)
    }
}

/// A sink that discards everything (raw-throughput runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record_action(&mut self, _rec: ActionRecord, _keep_records: bool) {}
    fn record_receive_change(&mut self, _time: SimTime, _node: NodeId) {}
    fn count_sent(&mut self, _from: NodeId) {}
    fn count_delivered(&mut self) {}
    fn count_dropped_lossy(&mut self) {}
    fn count_dropped_dead(&mut self) {}
    fn count_duplicated(&mut self) {}
    fn reset(&mut self) {}
}

/// Which sink an engine is configured with (see
/// [`crate::EngineConfig::sink`]).
///
/// Sink choice never affects simulation behavior — event order, RNG
/// draws, route tables and [`crate::engine::EngineStats`] are identical
/// across kinds; only what is *recorded* differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SinkKind {
    /// Full [`Trace`] (the default; required by analysis and monitors).
    #[default]
    Full,
    /// Scalar counters only ([`CountsOnly`]).
    CountsOnly,
    /// Record nothing ([`NullSink`]).
    Null,
}

impl SinkKind {
    /// Builds a fresh sink of this kind.
    pub fn build(self) -> Box<dyn TraceSink> {
        match self {
            SinkKind::Full => Box::new(Trace::new()),
            SinkKind::CountsOnly => Box::new(CountsOnly::default()),
            SinkKind::Null => Box::new(NullSink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ActionId;

    fn rec(maintenance: bool, var_changed: bool) -> ActionRecord {
        ActionRecord {
            time: SimTime::new(1.0),
            node: NodeId::new(3),
            action: ActionId::plain(0),
            name: "A",
            maintenance,
            var_changed,
        }
    }

    #[test]
    fn counts_only_tracks_scalars() {
        let mut s = CountsOnly::default();
        s.record_action(rec(false, true), true);
        s.record_action(rec(true, false), true);
        s.record_receive_change(SimTime::new(2.0), NodeId::new(1));
        s.count_sent(NodeId::new(1));
        s.count_delivered();
        s.count_duplicated();
        s.count_dropped_lossy();
        s.count_dropped_dead();
        assert_eq!(s.actions, 1);
        assert_eq!(s.maintenance_actions, 1);
        assert_eq!(s.var_changes, 2);
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.messages_duplicated, 1);
        assert_eq!(s.dropped_lossy_link, 1);
        assert_eq!(s.dropped_dead_receiver, 1);
        s.reset();
        assert_eq!(s, CountsOnly::default());
    }

    #[test]
    fn full_trace_sink_matches_trace_semantics() {
        let mut t = Trace::new();
        TraceSink::record_action(&mut t, rec(false, true), true);
        TraceSink::count_sent(&mut t, NodeId::new(3));
        assert_eq!(t.actions.len(), 1);
        assert_eq!(t.total_actions(), 1);
        assert_eq!(t.messages_sent, 1);
        assert_eq!(t.sent_counts[&NodeId::new(3)], 1);
        assert!(TraceSink::trace(&t).is_some());
        assert!(TraceSink::counts(&t).is_none());
    }

    #[test]
    fn kinds_build_the_right_sink() {
        assert!(SinkKind::Full.build().trace().is_some());
        assert!(SinkKind::CountsOnly.build().counts().is_some());
        let null = SinkKind::Null.build();
        assert!(null.trace().is_none() && null.counts().is_none());
    }
}
