//! Stateful flows: Go-Back-N windowed retransmission over the packet lane.
//!
//! PR 5's probes were fire-and-forget: a drop was a drop. This module
//! promotes traffic endpoints to stateful flows that *recover*: a flow
//! transfers `segments` numbered segments (each a weighted packet) from
//! `src` to `dest`, keeps a send window governed by a pluggable
//! congestion-control algorithm ([`CongAlg`]), and retransmits on a
//! per-flow timeout with exponential backoff — the classic Go-Back-N
//! sender over a cumulative-ACK receiver.
//!
//! Everything rides the engine's ordinary event queue, which is the
//! determinism contract: segment sends are `PacketHop` events, ACKs are
//! `FlowAck` events scheduled at the delivering packet's own one-way
//! latency (a symmetric-reverse-path model; ACKs are pure control and are
//! not themselves subject to loss or queueing — Go-Back-N's cumulative
//! ACKs make that simplification harmless), and retransmit timers are
//! `FlowTimer` events guarded by a per-flow generation counter so a
//! superseded timer is recognizably stale, exactly like the engine's
//! guard-hold timers. No wall clocks, no global state: the same seed
//! replays the same flow trajectory byte for byte.
//!
//! Two [`CongAlg`] implementations ship with the engine: [`FixedWindow`]
//! (a constant window — the degenerate algorithm every textbook starts
//! with) and [`Aimd`] (additive increase per acked segment, multiplicative
//! decrease on ECN marks, collapse to one segment on timeout).

use std::fmt;

use lsrp_graph::NodeId;

use crate::time::SimTime;

/// Congestion-control policy of one flow: owns the send window.
///
/// The engine calls the hooks as ACK/mark/timeout evidence arrives; the
/// algorithm answers only one question — how many segments past the
/// cumulative ACK may be outstanding ([`CongAlg::window`], always >= 1).
pub trait CongAlg: fmt::Debug + Send {
    /// Current window in segments (>= 1).
    fn window(&self) -> u64;
    /// One new segment was cumulatively acknowledged.
    fn on_ack(&mut self);
    /// An ACK arrived carrying an ECN congestion mark.
    fn on_mark(&mut self);
    /// The retransmit timer fired.
    fn on_timeout(&mut self);
}

/// A constant send window, blind to all congestion evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedWindow {
    window: u64,
}

impl FixedWindow {
    /// A fixed window of `window` segments (clamped to >= 1).
    pub fn new(window: u64) -> Self {
        FixedWindow {
            window: window.max(1),
        }
    }
}

impl CongAlg for FixedWindow {
    fn window(&self) -> u64 {
        self.window
    }
    fn on_ack(&mut self) {}
    fn on_mark(&mut self) {}
    fn on_timeout(&mut self) {}
}

/// Additive-increase / multiplicative-decrease: +1 segment per window's
/// worth of ACKs, halve on mark, collapse to 1 on timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aimd {
    cwnd: f64,
    max: f64,
}

impl Aimd {
    /// AIMD starting at `initial` segments, capped at `max`.
    pub fn new(initial: u64, max: u64) -> Self {
        let max = max.max(1) as f64;
        Aimd {
            cwnd: (initial.max(1) as f64).min(max),
            max,
        }
    }
}

impl CongAlg for Aimd {
    fn window(&self) -> u64 {
        self.cwnd as u64
    }
    fn on_ack(&mut self) {
        // Additive increase spread over the window: +1/cwnd per acked
        // segment is +1 segment per round trip.
        self.cwnd = (self.cwnd + 1.0 / self.cwnd).min(self.max);
    }
    fn on_mark(&mut self) {
        self.cwnd = (self.cwnd / 2.0).max(1.0);
    }
    fn on_timeout(&mut self) {
        self.cwnd = 1.0;
    }
}

/// Config-friendly handle for the pluggable [`CongAlg`] trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CongAlgKind {
    /// [`FixedWindow`] of the given size.
    FixedWindow {
        /// Window in segments.
        window: u64,
    },
    /// [`Aimd`] with the given initial and maximum window.
    Aimd {
        /// Initial window in segments.
        initial: u64,
        /// Window cap in segments.
        max: u64,
    },
}

impl CongAlgKind {
    /// Instantiates the algorithm.
    pub fn build(&self) -> Box<dyn CongAlg> {
        match *self {
            CongAlgKind::FixedWindow { window } => Box::new(FixedWindow::new(window)),
            CongAlgKind::Aimd { initial, max } => Box::new(Aimd::new(initial, max)),
        }
    }

    /// Parses a CLI spelling (`fixed` / `aimd`) with stock parameters.
    pub fn parse(s: &str) -> Option<CongAlgKind> {
        match s {
            "fixed" | "fixed-window" => Some(CongAlgKind::FixedWindow { window: 8 }),
            "aimd" => Some(CongAlgKind::Aimd {
                initial: 4,
                max: 64,
            }),
            _ => None,
        }
    }

    /// Validates window parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero windows or an AIMD cap below its initial window.
    pub fn validate(&self) {
        match *self {
            CongAlgKind::FixedWindow { window } => {
                assert!(window >= 1, "fixed window must be >= 1 segment");
            }
            CongAlgKind::Aimd { initial, max } => {
                assert!(initial >= 1, "aimd initial window must be >= 1 segment");
                assert!(max >= initial, "aimd max window must be >= initial");
            }
        }
    }
}

impl Default for CongAlgKind {
    fn default() -> Self {
        CongAlgKind::FixedWindow { window: 8 }
    }
}

/// Parameters of one flow, passed to [`crate::engine::Engine::start_flow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// Number of segments to transfer.
    pub segments: u64,
    /// Weight (represented real packets) per segment.
    pub seg_weight: u64,
    /// Hop budget per segment packet.
    pub ttl: u32,
    /// Congestion-control algorithm.
    pub cc: CongAlgKind,
    /// Initial retransmit timeout in simulated seconds.
    pub rto_initial: f64,
    /// Backoff cap: the RTO doubles per timeout up to this bound.
    pub rto_max: f64,
}

impl FlowConfig {
    /// Validates all parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero segments/weight/ttl, a non-positive or non-finite
    /// initial RTO, or an RTO cap below the initial RTO.
    pub fn validate(&self) {
        assert!(self.segments >= 1, "flows must transfer >= 1 segment");
        assert!(self.seg_weight >= 1, "segments must weigh >= 1 packet");
        assert!(self.ttl >= 1, "flow ttl must be >= 1 hop");
        self.cc.validate();
        assert!(
            self.rto_initial > 0.0 && self.rto_initial.is_finite(),
            "rto_initial must be positive and finite"
        );
        assert!(
            self.rto_max >= self.rto_initial && self.rto_max.is_finite(),
            "rto_max must be >= rto_initial and finite"
        );
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            segments: 1,
            seg_weight: 1,
            ttl: 64,
            cc: CongAlgKind::default(),
            rto_initial: 30.0,
            rto_max: 1920.0,
        }
    }
}

/// Flow attribution carried by a segment packet (and surfaced on its
/// [`crate::traffic::PacketRecord`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTag {
    /// Flow id from [`crate::engine::Engine::start_flow`].
    pub flow: u32,
    /// Go-Back-N sequence number of the segment.
    pub seq: u64,
}

/// One finished flow, drained via
/// [`crate::engine::Engine::drain_completed_flows`].
#[derive(Debug, Clone, Copy)]
pub struct FlowRecord {
    /// Flow id.
    pub id: u32,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dest: NodeId,
    /// Segments offered.
    pub segments: u64,
    /// Weight per segment.
    pub seg_weight: u64,
    /// Segments cumulatively acknowledged when the flow ended. Equal to
    /// `segments` for completed flows; smaller only when an endpoint
    /// fail-stopped and the flow was aborted.
    pub acked_segments: u64,
    /// When the flow started.
    pub started_at: SimTime,
    /// When the final ACK arrived (or the flow was aborted).
    pub finished_at: SimTime,
    /// Weighted packets retransmitted by Go-Back-N timeouts.
    pub retransmitted: u64,
    /// Retransmit timer firings.
    pub timeouts: u64,
    /// ACKs that arrived carrying an ECN mark.
    pub marks: u64,
}

impl FlowRecord {
    /// Whether every segment was acknowledged.
    pub fn completed(&self) -> bool {
        self.acked_segments == self.segments
    }

    /// Flow completion time in simulated seconds.
    pub fn completion_time(&self) -> f64 {
        self.finished_at.since(self.started_at)
    }

    /// Acknowledged weighted packets per second (0.0 for an instant or
    /// empty flow).
    pub fn goodput(&self) -> f64 {
        let t = self.completion_time();
        if t > 0.0 {
            (self.acked_segments * self.seg_weight) as f64 / t
        } else {
            0.0
        }
    }
}

/// Engine-internal per-flow state: both endpoints of the Go-Back-N
/// machine, simulated centrally (the engine is the only party that sees
/// both ends of the path).
pub(crate) struct FlowState {
    pub src: NodeId,
    pub dest: NodeId,
    pub config: FlowConfig,
    pub cc: Box<dyn CongAlg>,
    /// Sender: lowest unacknowledged sequence number.
    pub base: u64,
    /// Sender: next sequence number to transmit. (The receiver cursor
    /// lives with the *destination's* region — see the engine's
    /// `flow_recv` — so delivery processing never touches sender state.)
    pub next_seq: u64,
    /// Current retransmit timeout (doubles per timeout, capped).
    pub rto: f64,
    /// Live retransmit-timer generation; `FlowTimer` events carrying any
    /// other generation are stale.
    pub timer_generation: u64,
    pub retransmitted: u64,
    pub timeouts: u64,
    pub marks: u64,
    pub started_at: SimTime,
    /// Completed or aborted; terminal.
    pub done: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_window_ignores_evidence() {
        let mut w = FixedWindow::new(4);
        w.on_ack();
        w.on_mark();
        w.on_timeout();
        assert_eq!(w.window(), 4);
        assert_eq!(FixedWindow::new(0).window(), 1);
    }

    #[test]
    fn aimd_grows_halves_and_collapses() {
        let mut a = Aimd::new(4, 64);
        assert_eq!(a.window(), 4);
        // A round trip's worth of ACKs grows the window by about one
        // segment (slightly less, since the divisor grows per ACK).
        for _ in 0..5 {
            a.on_ack();
        }
        assert_eq!(a.window(), 5);
        a.on_mark();
        assert_eq!(a.window(), 2);
        a.on_timeout();
        assert_eq!(a.window(), 1);
        // Never below one, never above the cap.
        a.on_mark();
        assert_eq!(a.window(), 1);
        for _ in 0..10_000 {
            a.on_ack();
        }
        assert_eq!(a.window(), 64);
    }

    #[test]
    fn cong_alg_kind_parses_and_validates() {
        assert!(matches!(
            CongAlgKind::parse("fixed"),
            Some(CongAlgKind::FixedWindow { .. })
        ));
        assert!(matches!(
            CongAlgKind::parse("aimd"),
            Some(CongAlgKind::Aimd { .. })
        ));
        assert_eq!(CongAlgKind::parse("cubic"), None);
        CongAlgKind::default().validate();
    }

    #[test]
    #[should_panic(expected = "aimd max window must be >= initial")]
    fn inverted_aimd_rejected() {
        CongAlgKind::Aimd { initial: 8, max: 4 }.validate();
    }

    #[test]
    fn flow_record_goodput() {
        let r = FlowRecord {
            id: 0,
            src: NodeId::new(0),
            dest: NodeId::new(1),
            segments: 10,
            seg_weight: 5,
            acked_segments: 10,
            started_at: SimTime::ZERO,
            finished_at: SimTime::new(25.0),
            retransmitted: 0,
            timeouts: 0,
            marks: 0,
        };
        assert!(r.completed());
        assert!((r.goodput() - 2.0).abs() < 1e-12);
        assert!((r.completion_time() - 25.0).abs() < 1e-12);
    }
}
