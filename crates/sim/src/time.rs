//! Simulated time.
//!
//! Time is a non-negative `f64` in abstract "seconds". All comparisons go
//! through [`f64::total_cmp`], making [`SimTime`] totally ordered so it can
//! key the event queue deterministically.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from raw seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN or negative.
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds >= 0.0 && !seconds.is_nan(),
            "sim time must be a non-negative number, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Raw seconds.
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// Elapsed seconds since `earlier` (saturating at 0).
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_sane() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO, SimTime::default());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(1.5) + 0.5;
        assert_eq!(t, SimTime::new(2.0));
        assert_eq!(t - SimTime::new(0.5), 1.5);
        assert_eq!(SimTime::new(1.0).since(SimTime::new(3.0)), 0.0);
        let mut u = SimTime::ZERO;
        u += 2.0;
        assert_eq!(u.seconds(), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::new(-1.0);
    }
}
