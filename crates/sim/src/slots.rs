//! Dense, `NodeId`-indexed storage for per-node and per-edge engine state.
//!
//! The engine's hot path touches per-node bookkeeping (protocol state,
//! clock, guard tracking, pending wakeups) on every event. Keyed
//! `BTreeMap`s pay a pointer chase per lookup; topologies in this
//! repository use compact ids (`0..n` from the generators), so a plain
//! vector indexed by [`NodeId::raw`] is both smaller and faster. The two
//! containers here keep the *deterministic ascending-id iteration order*
//! the maps provided — every consumer of engine iteration order (route
//! tables, quiescence checks, trace reports) relies on it.

use std::collections::BTreeMap;

use lsrp_graph::NodeId;

/// A dense map from [`NodeId`] to `T`, backed by `Vec<Option<T>>`.
///
/// Slots grow on insert to cover the largest id seen; removal leaves a
/// hole (`None`) so ids can re-join later (fail-stop + join). Iteration
/// is always in ascending id order.
#[derive(Debug, Clone)]
pub struct NodeSlots<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for NodeSlots<T> {
    fn default() -> Self {
        NodeSlots::new()
    }
}

impl<T> NodeSlots<T> {
    /// An empty map.
    pub fn new() -> Self {
        NodeSlots {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` is present.
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Read access to the slot of `id`.
    pub fn get(&self, id: NodeId) -> Option<&T> {
        self.slots.get(id.raw() as usize).and_then(Option::as_ref)
    }

    /// Write access to the slot of `id`.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        self.slots
            .get_mut(id.raw() as usize)
            .and_then(Option::as_mut)
    }

    /// Inserts (or replaces) the slot of `id`, returning the old value.
    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        let idx = id.raw() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the slot of `id`.
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let old = self.slots.get_mut(id.raw() as usize).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterates occupied slots in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (NodeId::new(i as u32), t)))
    }

    /// Iterates occupied slots mutably in ascending id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|t| (NodeId::new(i as u32), t)))
    }

    /// Iterates occupied values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

/// A map from directed edges `(from, to)` to `T`, dense in `from`.
///
/// The `from` side is a vector indexed by [`NodeId::raw`] (every live node
/// sends on its edges constantly); the `to` side stays a small ordered map
/// (a node's degree is tiny compared to `n`). Iteration order — ascending
/// `from`, then ascending `to` — is deterministic.
#[derive(Debug, Clone, Default)]
pub struct EdgeSlots<T> {
    rows: Vec<BTreeMap<NodeId, T>>,
}

impl<T> EdgeSlots<T> {
    /// An empty map.
    pub fn new() -> Self {
        EdgeSlots { rows: Vec::new() }
    }

    /// Read access to the state of edge `(from, to)`.
    pub fn get(&self, from: NodeId, to: NodeId) -> Option<&T> {
        self.rows.get(from.raw() as usize).and_then(|r| r.get(&to))
    }
}

impl<T: Default> EdgeSlots<T> {
    /// Write access to the state of edge `(from, to)`, inserting a default
    /// value first if absent.
    pub fn entry(&mut self, from: NodeId, to: NodeId) -> &mut T {
        let idx = from.raw() as usize;
        if idx >= self.rows.len() {
            self.rows.resize_with(idx + 1, BTreeMap::new);
        }
        self.rows[idx].entry(to).or_default()
    }
}

/// The region-parallel engine's node addressing map: which region owns
/// each raw node id, and the node's dense *local* id inside that region.
///
/// Per-region state (slots, links, ports, emission counters) is indexed
/// by local id so a region's working set stays proportional to its own
/// size, not the global id space. Assignments are sticky: a node that
/// fails and later rejoins keeps its `(region, local)` pair, so its
/// emission counters continue where they left off — a prerequisite for
/// globally unique event keys across the node's whole lifetime.
#[derive(Debug, Clone, Default)]
pub struct RegionMap {
    /// Region per raw id (`u32::MAX` = never seen).
    region_of: Vec<u32>,
    /// Local id per raw id (`u32::MAX` = never seen).
    local_of: Vec<u32>,
    /// Next free local id per region.
    next_local: Vec<u32>,
}

impl RegionMap {
    /// An empty map with `regions` region slots (at least one).
    pub fn new(regions: usize) -> Self {
        RegionMap {
            region_of: Vec::new(),
            local_of: Vec::new(),
            next_local: vec![0; regions.max(1)],
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.next_local.len()
    }

    /// The region owning `v`, or `None` if `v` was never assigned.
    pub fn region(&self, v: NodeId) -> Option<u32> {
        let r = *self.region_of.get(v.raw() as usize)?;
        (r != u32::MAX).then_some(r)
    }

    /// `v`'s dense local id inside its region.
    ///
    /// # Panics
    ///
    /// Panics if `v` was never assigned.
    pub fn local(&self, v: NodeId) -> u32 {
        let l = self.local_of[v.raw() as usize];
        assert!(l != u32::MAX, "node {v:?} has no region assignment");
        l
    }

    /// Assigns `v` to `region`, returning its local id. Re-assigning an
    /// already-mapped node is a no-op that keeps (and returns) the
    /// original mapping — region identity is sticky across fail/rejoin.
    pub fn assign(&mut self, v: NodeId, region: u32) -> u32 {
        let idx = v.raw() as usize;
        if idx >= self.region_of.len() {
            self.region_of.resize(idx + 1, u32::MAX);
            self.local_of.resize(idx + 1, u32::MAX);
        }
        if self.region_of[idx] != u32::MAX {
            return self.local_of[idx];
        }
        let r = region as usize;
        assert!(r < self.next_local.len(), "region {region} out of range");
        let l = self.next_local[r];
        self.next_local[r] = l + 1;
        self.region_of[idx] = region;
        self.local_of[idx] = l;
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn node_slots_insert_get_remove() {
        let mut s = NodeSlots::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(v(3), "c"), None);
        assert_eq!(s.insert(v(1), "a"), None);
        assert_eq!(s.insert(v(1), "b"), Some("a"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(v(1)), Some(&"b"));
        assert!(s.contains(v(3)));
        assert!(!s.contains(v(0)));
        assert_eq!(s.remove(v(3)), Some("c"));
        assert_eq!(s.remove(v(3)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn node_slots_iterate_in_ascending_id_order() {
        let mut s = NodeSlots::new();
        for i in [5u32, 0, 9, 2] {
            s.insert(v(i), i);
        }
        let order: Vec<u32> = s.iter().map(|(id, _)| id.raw()).collect();
        assert_eq!(order, vec![0, 2, 5, 9]);
        let values: Vec<u32> = s.values().copied().collect();
        assert_eq!(values, vec![0, 2, 5, 9]);
        for (_, t) in s.iter_mut() {
            *t += 1;
        }
        assert_eq!(s.get(v(5)), Some(&6));
    }

    #[test]
    fn edge_slots_default_and_entry() {
        let mut e: EdgeSlots<bool> = EdgeSlots::new();
        assert_eq!(e.get(v(1), v(2)), None);
        *e.entry(v(1), v(2)) = true;
        assert_eq!(e.get(v(1), v(2)), Some(&true));
        assert_eq!(e.get(v(2), v(1)), None);
        *e.entry(v(0), v(7)) |= false;
        assert_eq!(e.get(v(0), v(7)), Some(&false));
    }
}
