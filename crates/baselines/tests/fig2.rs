//! Reproduction of the paper's Figure 2: fault propagation in existing
//! distance-vector routing protocols.
//!
//! On the Figure 1 network, `d.v9` is corrupted to 1 (its true value is 3)
//! and `v7`, `v8` have learned the corrupted value. Under distributed
//! Bellman-Ford the corruption races ahead of `v9`'s own correction:
//! `v7`/`v8` adopt 2, then `v1`, `v3`, `v10` and `v6` adopt 3 — `v6`
//! switching its route *into* the corrupted subtree (the route-flapping
//! instability the paper calls out) — before the correction wave restores
//! everything. LSRP on the identical scenario executes actions at `v9`
//! only (see `lsrp-core/tests/paper_examples.rs`).

use std::collections::BTreeSet;

use lsrp_baselines::{BaselineSimulation, DbfConfig, DbfSimulation};
use lsrp_graph::topologies::{fig1_route_table, paper_fig1, v, FIG1_DESTINATION};
use lsrp_graph::{contamination, Distance, NodeId};
use lsrp_sim::{EngineConfig, SimTime};

fn fig2_sim() -> DbfSimulation {
    DbfSimulation::new(
        paper_fig1(),
        FIG1_DESTINATION,
        Some(fig1_route_table()),
        DbfConfig::default(),
        EngineConfig::default(),
    )
}

fn corrupt_v9(sim: &mut DbfSimulation) {
    sim.corrupt_distance(v(9), Distance::Finite(1));
    sim.poison_mirror(v(7), v(9), Distance::Finite(1));
    sim.poison_mirror(v(8), v(9), Distance::Finite(1));
}

#[test]
fn corruption_contaminates_the_subtree_and_beyond() {
    let mut sim = fig2_sim();
    corrupt_v9(&mut sim);
    let report = sim.run_to_quiescence(10_000.0);
    assert!(report.quiescent);
    assert!(sim.routes_correct(), "DBF does converge eventually");

    // Figure 2(b): the fault propagates to v7, v8 and then to v1, v3,
    // v10 and v6 — two hops from the perturbed node.
    let perturbed = BTreeSet::from([v(9)]);
    let acted = sim.engine().trace().acted_nodes_since(SimTime::ZERO);
    let contaminated = contamination::contaminated_nodes(&perturbed, &acted);
    assert_eq!(
        contaminated,
        BTreeSet::from([v(1), v(3), v(6), v(7), v(8), v(10)]),
        "exactly the Figure 2 contamination set"
    );
    let range = contamination::range_of_contamination(sim.graph(), &perturbed, &contaminated);
    assert_eq!(range, 2);
}

#[test]
fn propagated_values_match_figure_2b() {
    // Figure 2(b) is the perturbed state after the corruption has swept
    // through: v7/v8 at 2, then v1/v3/v10/v6 at 3, everything else
    // untouched. With our maximally-synchronous scheduler the correction
    // wave trails exactly one tier behind the corruption, so we assert the
    // per-node *minimum* distance over the whole run, which is the value
    // each node transiently held in the figure's snapshot.
    let mut sim = fig2_sim();
    corrupt_v9(&mut sim);
    let mut min_d: std::collections::BTreeMap<NodeId, Distance> = sim
        .route_table()
        .iter()
        .map(|(n, e)| (n, e.distance))
        .collect();
    while sim.engine_mut().step().is_some() {
        for (n, e) in sim.route_table().iter() {
            let m = min_d.get_mut(&n).expect("all nodes tracked");
            *m = (*m).min(e.distance);
        }
        if sim.engine().now() > SimTime::new(10_000.0) {
            break;
        }
    }
    let expect = [
        (9, 1), // the corrupted value itself
        (7, 2),
        (8, 2),
        (1, 3),
        (3, 3),
        (10, 3),
        (6, 3), // v6 flaps into the subtree at distance 3
        // Untouched nodes keep their legitimate distances throughout.
        (5, 3),
        (4, 4),
        (13, 2),
        (14, 2),
        (11, 1),
        (12, 1),
        (2, 0),
    ];
    for (node, d) in expect {
        assert_eq!(
            min_d[&v(node)],
            Distance::Finite(d),
            "minimum distance at v{node}"
        );
    }
}

#[test]
fn v6_route_flaps_into_the_corrupted_subtree() {
    let mut sim = fig2_sim();
    corrupt_v9(&mut sim);
    // Track v6's parent over time: v5 -> v7 (flap) -> v5 (repair).
    let mut parents: Vec<NodeId> = vec![sim.route_table().entry(v(6)).unwrap().parent];
    while sim.engine_mut().step().is_some() {
        let p = sim.route_table().entry(v(6)).unwrap().parent;
        if *parents.last().unwrap() != p {
            parents.push(p);
        }
        if sim.engine().now() > SimTime::new(10_000.0) {
            break;
        }
    }
    assert_eq!(
        parents,
        vec![v(5), v(7), v(5)],
        "v6 must flap into the corrupted subtree and back"
    );
}

#[test]
fn dbf_stabilization_scales_with_tree_depth_not_perturbation() {
    // The same 1-node corruption on deep paths takes time proportional to
    // the depth below the corrupted node (the paper's core complaint).
    let mut last = 0.0;
    for depth in [8u32, 16, 32] {
        let g = lsrp_graph::generators::path(depth + 2, 1);
        let mut sim =
            DbfSimulation::new(g, v(0), None, DbfConfig::default(), EngineConfig::default());
        sim.corrupt_distance(v(1), Distance::ZERO);
        sim.poison_mirror(v(2), v(1), Distance::ZERO);
        let report = sim.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(sim.routes_correct());
        let t = report.last_effective.seconds();
        assert!(
            t > last * 1.5,
            "stabilization time should grow with depth: {t} after {last}"
        );
        last = t;
    }
}
