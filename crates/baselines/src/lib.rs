//! Baseline distance-vector routing protocols for comparison against LSRP.
//!
//! The paper argues against two families:
//!
//! * **Existing distance-vector protocols** ("based on the distributed
//!   Bellman-Ford algorithm", §IV-B) — reproduced here as [`DbfNode`]:
//!   textbook distributed Bellman-Ford over the same simulator substrate
//!   (mirrors, bounded-delay FIFO links, guard hold-times), with RIP-style
//!   bounded infinity so count-to-infinity terminates. Figure 2's
//!   fault-propagation example is reproduced against this protocol.
//! * **Path-vector routing** — [`PvNode`], a BGP-lite with full-path
//!   advertisements and the AS-path-style loop check under an MRAI-style
//!   hold; this is the protocol family of the paper's opening BGP
//!   example, and it exhibits the same global fault propagation.
//! * **Loop-free distance-vector protocols (DUAL, LPA)** — represented by
//!   [`DualNode`], a faithful-in-spirit "DUAL-lite": the Source Node
//!   Condition feasibility check, passive/active states and diffusing
//!   query/reply computations, for a single destination. The paper's
//!   claims about DUAL (fault propagation is global under corruption;
//!   breaking an existing loop takes time proportional to its length) are
//!   exercised against it. Deviations from full EIGRP-DUAL are documented
//!   on the type.
//!
//! Both implement [`lsrp_sim::ProtocolNode`], so every measurement
//! (stabilization time, contamination, message counts) is collected by the
//! same machinery as for LSRP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lsrp_graph::{Graph, NodeId, RouteTable};
use lsrp_sim::EngineConfig;

pub mod dbf;
pub mod dual;
pub mod pathvector;

/// Uniform constructor for the baseline simulations.
///
/// Every baseline harness (`DbfSimulation`, `DualSimulation`,
/// `PvSimulation`) is a [`lsrp_sim::SimHarness`] type alias; this trait
/// gives them the common `new(graph, destination, initial, config,
/// engine_config)` entry point the CLI and analysis crates construct them
/// through.
pub trait BaselineSimulation {
    /// Protocol-specific tuning knobs.
    type Config: Default;

    /// Builds a network starting from the given route table (or the
    /// canonical legitimate one when `initial` is `None`).
    fn new(
        graph: Graph,
        destination: NodeId,
        initial: Option<RouteTable>,
        config: Self::Config,
        engine_config: EngineConfig,
    ) -> Self;
}

pub use crate::dbf::{DbfConfig, DbfMsg, DbfNode, DbfSimulation};
pub use crate::dual::{DualConfig, DualMsg, DualNode, DualSimulation};
pub use crate::pathvector::{PvConfig, PvNode, PvRoute, PvSimulation};
