//! Path-vector routing ("BGP-lite"): the protocol family of the paper's
//! opening example ("inter-domain routing in the Internet by the Border
//! Gateway Protocol, where faults at some edge routers can propagate
//! across the whole Internet").
//!
//! Each node advertises its full path to the destination; a node only
//! adopts a route whose path does not contain itself, which prevents
//! steady-state loops by construction (like BGP's AS-path check). The
//! update action runs under an MRAI-style hold, comparable to LSRP's
//! `hd_S`.
//!
//! What it does *not* prevent — and what the experiments show — is fault
//! propagation: a corrupted-short path is adopted and re-advertised by the
//! whole downstream network (path exploration), with recovery churning
//! through ever-longer candidate paths exactly like the BGP convergence
//! pathologies of the paper's citations \[1\]\[7\].

use std::collections::BTreeMap;

use lsrp_graph::{Distance, Graph, NodeId, RouteTable, Weight};
use lsrp_sim::{
    ActionId, Effects, EnabledSet, Engine, EngineConfig, ForgedAdvert, HarnessProtocol,
    ProtocolNode, SimHarness,
};

use crate::BaselineSimulation;

/// Configuration for [`PvNode`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvConfig {
    /// MRAI-style hold of the update action.
    pub hold: f64,
    /// Maximum advertised path length (like BGP's practical AS-path
    /// limits); longer candidates count as unreachable.
    pub max_path: usize,
}

impl Default for PvConfig {
    fn default() -> Self {
        PvConfig {
            hold: 17.0,
            max_path: 64,
        }
    }
}

/// An advertised route: total weighted distance plus the node path to the
/// destination (most-recent hop first, destination last).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvRoute {
    /// Weighted distance of the advertised path.
    pub d: Distance,
    /// The advertiser's node path to the destination (excluding the
    /// advertiser itself).
    pub path: Vec<NodeId>,
}

impl PvRoute {
    /// The unreachable route.
    pub fn none() -> Self {
        PvRoute {
            d: Distance::Infinite,
            path: Vec::new(),
        }
    }
}

/// The message: the sender's current route.
pub type PvMsg = PvRoute;

/// The single update action.
pub const P1: ActionId = ActionId::plain(0);

/// One path-vector node.
#[derive(Debug, Clone, PartialEq)]
pub struct PvNode {
    /// Node id.
    pub id: NodeId,
    /// Destination id.
    pub dest: NodeId,
    /// Current route (distance + path).
    pub route: PvRoute,
    /// Neighbor weights.
    pub neighbors: BTreeMap<NodeId, Weight>,
    /// Mirrors of neighbors' advertised routes.
    pub mirrors: BTreeMap<NodeId, PvRoute>,
    config: PvConfig,
}

impl PvNode {
    /// Creates a node with the given initial route.
    pub fn new(
        id: NodeId,
        dest: NodeId,
        route: PvRoute,
        neighbors: BTreeMap<NodeId, Weight>,
        config: PvConfig,
    ) -> Self {
        PvNode {
            id,
            dest,
            route,
            neighbors,
            mirrors: BTreeMap::new(),
            config,
        }
    }

    /// The route offered by neighbor `k`: its advertised route extended by
    /// the connecting edge — `None` when unusable (unknown, too long, or
    /// its path already contains us: the loop-prevention check).
    fn offer(&self, k: NodeId) -> Option<PvRoute> {
        let &w = self.neighbors.get(&k)?;
        let adv = self.mirrors.get(&k)?;
        let d = adv.d.plus(w);
        if d.is_infinite()
            || adv.path.len() + 1 > self.config.max_path
            || adv.path.contains(&self.id)
            || k == self.id
        {
            return None;
        }
        let mut path = Vec::with_capacity(adv.path.len() + 1);
        path.push(k);
        path.extend_from_slice(&adv.path);
        Some(PvRoute { d, path })
    }

    /// The best available route (shortest distance, ties by shorter path
    /// then lower next-hop id).
    fn target(&self) -> PvRoute {
        if self.id == self.dest {
            return PvRoute {
                d: Distance::ZERO,
                path: Vec::new(),
            };
        }
        self.neighbors
            .keys()
            .filter_map(|&k| self.offer(k))
            .min_by(|a, b| {
                a.d.cmp(&b.d)
                    .then(a.path.len().cmp(&b.path.len()))
                    .then(a.path.first().cmp(&b.path.first()))
            })
            .unwrap_or_else(PvRoute::none)
    }
}

impl ProtocolNode for PvNode {
    type Msg = PvMsg;

    fn enabled_actions(&self, now_local: f64) -> EnabledSet {
        let mut set = EnabledSet::none();
        self.enabled_actions_into(now_local, &mut set);
        set
    }

    fn enabled_actions_into(&self, _now_local: f64, set: &mut EnabledSet) {
        if self.target() != self.route {
            set.enable(P1, self.config.hold);
        }
    }

    fn execute(&mut self, action: ActionId, _now_local: f64, fx: &mut Effects<PvMsg>) {
        debug_assert_eq!(action, P1);
        let t = self.target();
        if t != self.route {
            self.route = t;
            fx.note_var_change();
        }
        fx.broadcast(self.route.clone());
    }

    fn on_receive(&mut self, from: NodeId, msg: &PvMsg, _now_local: f64, fx: &mut Effects<PvMsg>) {
        if self.neighbors.contains_key(&from) && self.mirrors.get(&from) != Some(msg) {
            self.mirrors.insert(from, msg.clone());
            fx.note_mirror_change();
        }
    }

    fn on_neighbors_changed(
        &mut self,
        neighbors: &BTreeMap<NodeId, Weight>,
        _now_local: f64,
        fx: &mut Effects<PvMsg>,
    ) {
        let grew = neighbors.keys().any(|k| !self.neighbors.contains_key(k));
        self.mirrors.retain(|k, _| neighbors.contains_key(k));
        self.neighbors = neighbors.clone();
        if grew {
            fx.broadcast(self.route.clone());
        }
    }

    fn route_entry(&self) -> lsrp_graph::RouteEntry {
        let parent = self.route.path.first().copied().unwrap_or(self.id);
        lsrp_graph::RouteEntry::new(self.route.d, parent)
    }

    fn action_name(_action: ActionId) -> &'static str {
        "P1"
    }

    fn is_maintenance(_action: ActionId) -> bool {
        false
    }
}

impl HarnessProtocol for PvNode {
    const NAME: &'static str = "PV";
    type Meta = ();

    fn corrupt_distance(&mut self, d: Distance, dest: NodeId) {
        // A bogus short route claiming direct adjacency to the
        // destination (the classic hijack).
        self.route = PvRoute {
            d,
            path: if self.id == dest {
                Vec::new()
            } else {
                vec![dest]
            },
        };
    }

    fn poison_mirror(&mut self, about: NodeId, advert: ForgedAdvert, dest: NodeId) {
        self.mirrors.insert(
            about,
            PvRoute {
                d: advert.d,
                path: if about == dest {
                    Vec::new()
                } else {
                    vec![dest]
                },
            },
        );
    }

    fn inject_route(&mut self, d: Distance, p: NodeId, dest: NodeId) {
        // A path-vector "loop injection": the route claims to go through
        // `p` straight to the destination. The path check then prevents
        // *new* loops, but the injected parent pointers themselves stand
        // until updates flush them.
        self.route = PvRoute {
            d,
            path: if p == dest { vec![dest] } else { vec![p, dest] },
        };
    }
}

/// Convenience facade for path-vector networks.
pub type PvSimulation = SimHarness<PvNode>;

impl BaselineSimulation for PvSimulation {
    type Config = PvConfig;

    /// Builds a path-vector network at the legitimate state implied by the
    /// given route table (paths reconstructed by following parents), with
    /// consistent mirrors.
    fn new(
        graph: Graph,
        destination: NodeId,
        initial: Option<RouteTable>,
        config: PvConfig,
        engine_config: EngineConfig,
    ) -> Self {
        assert!(
            graph.has_node(destination),
            "destination {destination} is not in the graph"
        );
        let table = initial.unwrap_or_else(|| RouteTable::legitimate(&graph, destination));
        // Reconstruct each node's full path by walking parents.
        let mut paths: BTreeMap<NodeId, PvRoute> = BTreeMap::new();
        for v in graph.nodes() {
            let Some(e) = table.entry(v) else {
                paths.insert(v, PvRoute::none());
                continue;
            };
            if v == destination {
                paths.insert(
                    v,
                    PvRoute {
                        d: Distance::ZERO,
                        path: Vec::new(),
                    },
                );
                continue;
            }
            if e.distance.is_infinite() {
                paths.insert(v, PvRoute::none());
                continue;
            }
            let mut path = Vec::new();
            let mut at = v;
            let mut ok = false;
            for _ in 0..graph.node_count() {
                let Some(entry) = table.entry(at) else { break };
                if at == destination {
                    ok = true;
                    break;
                }
                path.push(entry.parent);
                at = entry.parent;
            }
            if at == destination {
                ok = true;
            }
            paths.insert(
                v,
                if ok {
                    PvRoute {
                        d: e.distance,
                        path,
                    }
                } else {
                    PvRoute::none()
                },
            );
        }
        let engine = Engine::new(graph, engine_config, move |id, neighbors| {
            let route = paths.get(&id).cloned().unwrap_or_else(PvRoute::none);
            let mut node = PvNode::new(id, destination, route, neighbors.clone(), config);
            for k in neighbors.keys() {
                node.mirrors
                    .insert(*k, paths.get(k).cloned().unwrap_or_else(PvRoute::none));
            }
            node
        });
        PvSimulation::from_parts(engine, destination, 0.0, ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_graph::generators;
    use lsrp_sim::SimTime;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sim(graph: Graph, dest: NodeId) -> PvSimulation {
        PvSimulation::new(
            graph,
            dest,
            None,
            PvConfig::default(),
            EngineConfig::default(),
        )
    }

    #[test]
    fn legitimate_start_is_quiescent() {
        let mut s = sim(generators::grid(4, 4, 1), v(0));
        let report = s.run_to_quiescence(1_000.0);
        assert!(report.quiescent);
        assert_eq!(s.engine().trace().total_actions(), 0);
        assert!(s.routes_correct());
    }

    #[test]
    fn paths_are_consistent_at_start() {
        let s = sim(generators::path(4, 2), v(0));
        let n3 = s.engine().node(v(3)).unwrap();
        assert_eq!(n3.route.d, Distance::Finite(6));
        assert_eq!(n3.route.path, vec![v(2), v(1), v(0)]);
    }

    #[test]
    fn hijack_propagates_then_recovers() {
        let mut s = sim(generators::path(6, 1), v(0));
        s.corrupt_distance(v(1), Distance::ZERO);
        s.poison_mirror(v(2), v(1), Distance::ZERO);
        let report = s.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        let acted = s.engine().trace().acted_nodes_since(SimTime::ZERO);
        for node in [2, 3, 4, 5] {
            assert!(acted.contains(&v(node)), "v{node} must be contaminated");
        }
    }

    #[test]
    fn loop_prevention_rejects_paths_through_self() {
        let mut n = PvNode::new(
            v(1),
            v(0),
            PvRoute::none(),
            BTreeMap::from([(v(2), 1)]),
            PvConfig::default(),
        );
        // v2 advertises a path THROUGH v1: must be rejected.
        n.mirrors.insert(
            v(2),
            PvRoute {
                d: Distance::Finite(3),
                path: vec![v(1), v(0)],
            },
        );
        assert_eq!(n.target(), PvRoute::none());
        // A clean path is accepted.
        n.mirrors.insert(
            v(2),
            PvRoute {
                d: Distance::Finite(3),
                path: vec![v(3), v(0)],
            },
        );
        let t = n.target();
        assert_eq!(t.d, Distance::Finite(4));
        assert_eq!(t.path, vec![v(2), v(3), v(0)]);
    }

    #[test]
    fn disconnection_withdraws_without_counting() {
        // Path exploration is bounded by the path-containment check: no
        // count-to-infinity, unlike plain DBF.
        let mut s = sim(generators::path(5, 1), v(0));
        s.engine_mut().fail_edge(v(0), v(1)).unwrap();
        let report = s.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        for node in [1, 2, 3, 4] {
            assert!(s
                .route_table()
                .entry(v(node))
                .unwrap()
                .distance
                .is_infinite());
        }
    }

    #[test]
    fn never_loops_at_rest() {
        // After any single corruption, the settled table is loop-free by
        // the path check.
        for seed in 0..5 {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let graph = generators::connected_erdos_renyi(14, 0.1, 3, &mut rng);
            let mut s = PvSimulation::new(
                graph.clone(),
                v(0),
                None,
                PvConfig::default(),
                EngineConfig::default().with_seed(seed),
            );
            let victim = v(rng.gen_range(1..14));
            s.corrupt_distance(victim, Distance::ZERO);
            let ns: Vec<NodeId> = graph.neighbors(victim).map(|(k, _)| k).collect();
            for k in ns {
                s.poison_mirror(k, victim, Distance::ZERO);
            }
            let report = s.run_to_quiescence(1_000_000.0);
            assert!(report.quiescent);
            assert!(s.routes_correct(), "seed {seed}");
            assert!(!s.route_table().has_routing_loop(v(0)));
        }
    }
}
