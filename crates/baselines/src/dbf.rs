//! Distributed Bellman-Ford ("existing distance-vector routing
//! protocols", §IV-B).
//!
//! Each node keeps `(d.v, p.v)` and mirrors of its neighbors' advertised
//! distances. One guarded action recomputes the route from the mirrors:
//!
//! ```text
//! B1 :: (d.v, p.v) ≠ bellman_ford(mirrors)  --hold-->
//!       (d.v, p.v) := bellman_ford(mirrors); broadcast d.v
//! ```
//!
//! `bellman_ford` picks the neighbor minimizing `d.k.v + w.v.k` (ties by
//! id); distances at or above the RIP-style `infinity` bound collapse to
//! `∞` so count-to-infinity terminates. The destination pins `(0, self)`.
//!
//! This is exactly the dynamics of the paper's Figure 2: a corrupted-small
//! distance is adopted by downstream neighbors at the same speed at which
//! its owner corrects it, so the corruption races ahead until it falls off
//! the leaves of the routing tree.

use std::collections::BTreeMap;

use lsrp_graph::{Distance, Graph, NodeId, RouteTable, Weight};
use lsrp_sim::{
    ActionId, Effects, EnabledSet, Engine, EngineConfig, ForgedAdvert, HarnessProtocol,
    ProtocolNode, SimHarness,
};

use crate::BaselineSimulation;

/// Configuration for [`DbfNode`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbfConfig {
    /// Guard hold-time of the update action — comparable to LSRP's `hd_S`
    /// (both model a BGP-MRAI-style advertisement interval).
    pub hold: f64,
    /// RIP-style bounded infinity: any computed distance `>= infinity`
    /// becomes `∞`. RIP uses 16 hops; we default to 64 (weighted metrics).
    pub infinity: u64,
    /// Optional periodic re-advertisement (like RIP's 30s updates);
    /// required for recovery from mirror corruption.
    pub syn_period: Option<f64>,
}

impl Default for DbfConfig {
    fn default() -> Self {
        DbfConfig {
            hold: 17.0, // LSRP's paper-example hd_S, for fair comparisons
            infinity: 64,
            syn_period: None,
        }
    }
}

/// The message: the sender's advertised distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbfMsg {
    /// Advertised distance to the destination.
    pub d: Distance,
}

/// Action tag of the single update action.
pub const B1: ActionId = ActionId::plain(0);
/// Action tag of the periodic re-advertisement.
pub const SYN: ActionId = ActionId::plain(1);

/// One distributed Bellman-Ford node.
#[derive(Debug, Clone, PartialEq)]
pub struct DbfNode {
    /// Node id.
    pub id: NodeId,
    /// Destination id.
    pub dest: NodeId,
    /// Current distance (`d.v`).
    pub d: Distance,
    /// Current next-hop (`p.v`); self when routeless.
    pub p: NodeId,
    /// Local-clock time of the last broadcast.
    pub t_last: f64,
    /// Neighbor weights.
    pub neighbors: BTreeMap<NodeId, Weight>,
    /// Mirrors of neighbors' advertised distances.
    pub mirrors: BTreeMap<NodeId, Distance>,
    config: DbfConfig,
}

impl DbfNode {
    /// Creates a node with the given initial route.
    pub fn new(
        id: NodeId,
        dest: NodeId,
        d: Distance,
        p: NodeId,
        neighbors: BTreeMap<NodeId, Weight>,
        config: DbfConfig,
    ) -> Self {
        DbfNode {
            id,
            dest,
            d,
            p,
            t_last: 0.0,
            neighbors,
            mirrors: BTreeMap::new(),
            config,
        }
    }

    /// The distance neighbor `k` offers (`∞` if unheard or not a
    /// neighbor), clamped by the bounded infinity.
    pub fn offer(&self, k: NodeId) -> Distance {
        let Some(&w) = self.neighbors.get(&k) else {
            return Distance::Infinite;
        };
        let d = self.mirrors.get(&k).copied().unwrap_or(Distance::Infinite);
        let o = d.plus(w);
        match o.as_finite() {
            Some(v) if v >= self.config.infinity => Distance::Infinite,
            _ => o,
        }
    }

    /// The Bellman-Ford target `(d, p)` given current mirrors. Ties keep
    /// the current next-hop (standard distance-vector behavior — switching
    /// on equal cost would flap routes).
    pub fn target(&self) -> (Distance, NodeId) {
        if self.id == self.dest {
            return (Distance::ZERO, self.id);
        }
        let best = self
            .neighbors
            .keys()
            .map(|&k| (self.offer(k), k))
            .min()
            .filter(|(o, _)| !o.is_infinite());
        match best {
            Some((o, _)) if self.offer(self.p) == o => (o, self.p),
            Some((o, k)) => (o, k),
            None => (Distance::Infinite, self.id),
        }
    }
}

impl ProtocolNode for DbfNode {
    type Msg = DbfMsg;

    fn enabled_actions(&self, now_local: f64) -> EnabledSet {
        let mut set = EnabledSet::none();
        self.enabled_actions_into(now_local, &mut set);
        set
    }

    fn enabled_actions_into(&self, now_local: f64, set: &mut EnabledSet) {
        if self.target() != (self.d, self.p) {
            set.enable(B1, self.config.hold);
        }
        if let Some(period) = self.config.syn_period {
            if self.t_last + period <= now_local || self.t_last > now_local {
                set.enable(SYN, 0.0);
            } else {
                set.wake_at(self.t_last + period);
            }
        }
    }

    fn execute(&mut self, action: ActionId, now_local: f64, fx: &mut Effects<DbfMsg>) {
        match action {
            B1 => {
                let (d, p) = self.target();
                if (d, p) != (self.d, self.p) {
                    self.d = d;
                    self.p = p;
                    fx.note_var_change();
                }
                self.t_last = now_local;
                fx.broadcast(DbfMsg { d: self.d });
            }
            SYN => {
                self.t_last = now_local;
                fx.broadcast(DbfMsg { d: self.d });
            }
            other => unreachable!("unknown DBF action {other}"),
        }
    }

    fn on_receive(
        &mut self,
        from: NodeId,
        msg: &DbfMsg,
        _now_local: f64,
        fx: &mut Effects<DbfMsg>,
    ) {
        if self.neighbors.contains_key(&from) && self.mirrors.insert(from, msg.d) != Some(msg.d) {
            fx.note_mirror_change();
        }
    }

    fn on_neighbors_changed(
        &mut self,
        neighbors: &BTreeMap<NodeId, Weight>,
        now_local: f64,
        fx: &mut Effects<DbfMsg>,
    ) {
        let grew = neighbors.keys().any(|k| !self.neighbors.contains_key(k));
        self.mirrors.retain(|k, _| neighbors.contains_key(k));
        self.neighbors = neighbors.clone();
        if grew {
            self.t_last = now_local;
            fx.broadcast(DbfMsg { d: self.d });
        }
    }

    fn route_entry(&self) -> lsrp_graph::RouteEntry {
        lsrp_graph::RouteEntry::new(self.d, self.p)
    }

    fn action_name(action: ActionId) -> &'static str {
        match action {
            B1 => "B1",
            SYN => "SYN",
            _ => "?",
        }
    }

    fn is_maintenance(action: ActionId) -> bool {
        action == SYN
    }
}

impl HarnessProtocol for DbfNode {
    const NAME: &'static str = "DBF";
    type Meta = ();

    fn corrupt_distance(&mut self, d: Distance, _dest: NodeId) {
        self.d = d;
    }

    fn poison_mirror(&mut self, about: NodeId, advert: ForgedAdvert, _dest: NodeId) {
        self.mirrors.insert(about, advert.d);
    }

    fn inject_route(&mut self, d: Distance, p: NodeId, _dest: NodeId) {
        self.d = d;
        self.p = p;
        // Make the injected parent look attractive so plain DBF keeps
        // the loop until values count up past it.
        self.mirrors.insert(
            p,
            d.plus(0).as_finite().map_or(Distance::Infinite, |x| {
                Distance::Finite(x.saturating_sub(1))
            }),
        );
    }
}

/// Convenience facade mirroring `lsrp_core::LsrpSimulation` for DBF: the
/// generic harness specialized to [`DbfNode`] (construct it via
/// [`BaselineSimulation::new`]).
pub type DbfSimulation = SimHarness<DbfNode>;

impl BaselineSimulation for DbfSimulation {
    type Config = DbfConfig;

    /// Builds a DBF network starting from the given route table (or the
    /// canonical legitimate one when `None`), with consistent mirrors.
    fn new(
        graph: Graph,
        destination: NodeId,
        initial: Option<RouteTable>,
        config: DbfConfig,
        engine_config: EngineConfig,
    ) -> Self {
        assert!(
            graph.has_node(destination),
            "destination {destination} is not in the graph"
        );
        let table = initial.unwrap_or_else(|| RouteTable::legitimate(&graph, destination));
        let engine = Engine::new(graph, engine_config, move |id, neighbors| {
            let entry = table
                .entry(id)
                .unwrap_or_else(|| lsrp_graph::RouteEntry::no_route(id));
            let mut node = DbfNode::new(
                id,
                destination,
                entry.distance,
                entry.parent,
                neighbors.clone(),
                config,
            );
            for k in neighbors.keys() {
                let kd = table.entry(*k).map_or(Distance::Infinite, |e| e.distance);
                node.mirrors.insert(*k, kd);
            }
            node
        });
        DbfSimulation::from_parts(engine, destination, 0.0, ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_graph::generators;
    use lsrp_sim::SimTime;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sim(graph: Graph, dest: NodeId) -> DbfSimulation {
        DbfSimulation::new(
            graph,
            dest,
            None,
            DbfConfig::default(),
            EngineConfig::default(),
        )
    }

    #[test]
    fn legitimate_start_is_quiescent() {
        let mut s = sim(generators::grid(4, 4, 1), v(0));
        let report = s.run_to_quiescence(1_000.0);
        assert!(report.quiescent);
        assert_eq!(s.engine().trace().total_actions(), 0);
        assert!(s.routes_correct());
    }

    #[test]
    fn cold_start_converges() {
        let table: RouteTable = generators::grid(4, 4, 1)
            .nodes()
            .map(|n| {
                let e = if n == v(0) {
                    lsrp_graph::RouteEntry::new(Distance::ZERO, v(0))
                } else {
                    lsrp_graph::RouteEntry::no_route(n)
                };
                (n, e)
            })
            .collect();
        let mut s = DbfSimulation::new(
            generators::grid(4, 4, 1),
            v(0),
            Some(table),
            DbfConfig::default(),
            EngineConfig::default(),
        );
        let report = s.run_to_quiescence(100_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
    }

    #[test]
    fn corruption_propagates_to_descendants() {
        // On a path 0-1-2-3-4, corrupting d.v1 small drags v2, v3, v4 along
        // (the Figure 2 effect), then everything recovers.
        let mut s = sim(generators::path(5, 1), v(0));
        s.corrupt_distance(v(1), Distance::ZERO);
        s.poison_mirror(v(2), v(1), Distance::ZERO);
        let report = s.run_to_quiescence(10_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        let acted = s.engine().trace().acted_nodes_since(SimTime::ZERO);
        assert!(acted.contains(&v(2)), "v2 adopts the corrupted value");
        assert!(acted.contains(&v(3)), "and passes it to v3");
        assert!(acted.contains(&v(4)), "and to v4");
    }

    #[test]
    fn fail_stop_counts_to_bounded_infinity() {
        // Cutting the only route makes the stranded side count up to the
        // infinity bound and then withdraw.
        let cfg = DbfConfig {
            infinity: 16,
            ..DbfConfig::default()
        };
        let mut s = DbfSimulation::new(
            generators::path(4, 1),
            v(0),
            None,
            cfg,
            EngineConfig::default(),
        );
        s.engine_mut().fail_edge(v(0), v(1)).unwrap();
        let report = s.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        let t = s.route_table();
        for node in [1, 2, 3] {
            assert!(t.entry(v(node)).unwrap().distance.is_infinite());
        }
        // Count-to-infinity: many actions despite the tiny network.
        assert!(s.engine().trace().total_actions() > 10);
    }

    #[test]
    fn destination_is_pinned() {
        let mut s = sim(generators::path(3, 1), v(0));
        s.corrupt_distance(v(0), Distance::Finite(9));
        let report = s.run_to_quiescence(10_000.0);
        assert!(report.quiescent);
        assert_eq!(
            s.route_table().entry(v(0)).unwrap().distance,
            Distance::ZERO
        );
        assert!(s.routes_correct());
    }

    #[test]
    fn offers_clamp_at_infinity_bound() {
        let cfg = DbfConfig {
            infinity: 10,
            ..DbfConfig::default()
        };
        let n = DbfNode::new(
            v(1),
            v(0),
            Distance::Finite(3),
            v(0),
            BTreeMap::from([(v(0), 5)]),
            cfg,
        );
        let mut n = n;
        n.mirrors.insert(v(0), Distance::Finite(6));
        assert!(n.offer(v(0)).is_infinite(), "6 + 5 >= 10 clamps to ∞");
        n.mirrors.insert(v(0), Distance::Finite(4));
        assert_eq!(n.offer(v(0)), Distance::Finite(9));
    }
}
