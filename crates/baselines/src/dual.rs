//! DUAL-lite: a diffusing-update loop-free distance-vector protocol in the
//! style of DUAL (Garcia-Luna-Aceves, ToN 1993), the paper's second
//! comparator class.
//!
//! Implemented faithfully in spirit for a single destination:
//!
//! * **Feasibility (Source Node Condition):** a node only switches its
//!   successor to a neighbor whose advertised distance is strictly below
//!   the node's *feasible distance* `fd` — the classic loop-avoidance
//!   invariant.
//! * **Diffusing computations:** when the route through the current
//!   successor worsens and no feasible successor exists, the node freezes
//!   (goes *active*), queries all neighbors, and only re-routes once every
//!   neighbor has replied; queries received from one's own successor while
//!   active are answered after the local diffusion completes, which is how
//!   the computation diffuses.
//!
//! Simplifications versus full EIGRP-DUAL (documented per DESIGN.md §2):
//! one destination; no split horizon; a single outstanding diffusion per
//! node (re-evaluation is deferred until it completes); and a
//! stuck-in-active timeout (real routers have the same escape hatch),
//! which also rescues the protocol from corrupted active states.
//!
//! The paper's claims reproduced against this protocol: corrupted-small
//! distances are *feasible* and therefore propagate globally exactly as in
//! plain distance-vector routing, and breaking an existing loop costs a
//! diffusing computation that walks the loop, i.e. time proportional to
//! loop length (experiment E9).

use std::collections::{BTreeMap, BTreeSet};

use lsrp_graph::{Distance, Graph, NodeId, RouteTable, Weight};
use lsrp_sim::{
    ActionId, Effects, EnabledSet, Engine, EngineConfig, ForgedAdvert, HarnessProtocol,
    ProtocolNode, SimHarness,
};

use crate::BaselineSimulation;

/// Configuration for [`DualNode`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualConfig {
    /// Guard hold-time of the local-computation action (comparable to
    /// LSRP's `hd_S` and DBF's hold).
    pub hold: f64,
    /// Bounded infinity (distances at or above collapse to `∞`).
    pub infinity: u64,
    /// Stuck-in-active timeout, in local-clock seconds.
    pub active_timeout: f64,
}

impl Default for DualConfig {
    fn default() -> Self {
        DualConfig {
            hold: 17.0,
            infinity: 64,
            active_timeout: 600.0,
        }
    }
}

/// DUAL-lite messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DualMsg {
    /// Advertise a new distance.
    Update(Distance),
    /// Start/propagate a diffusing computation; carries the sender's
    /// (worsened) distance.
    Query(Distance),
    /// Answer a query; carries the sender's distance.
    Reply(Distance),
}

/// The local computation action.
pub const D1: ActionId = ActionId::plain(0);

/// Bookkeeping of an in-progress diffusing computation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActiveState {
    /// Neighbors whose reply is still outstanding.
    pub pending: BTreeSet<NodeId>,
    /// Local-clock time the diffusion started (for the SIA timeout).
    pub started_local_ms: u64,
}

/// One DUAL-lite node. Fields are public: the fault model includes
/// arbitrary state corruption.
#[derive(Debug, Clone, PartialEq)]
pub struct DualNode {
    /// Node id.
    pub id: NodeId,
    /// Destination id.
    pub dest: NodeId,
    /// Current distance.
    pub d: Distance,
    /// Feasible distance (the loop-avoidance watermark).
    pub fd: Distance,
    /// Current successor (self when routeless).
    pub succ: NodeId,
    /// Neighbor weights.
    pub neighbors: BTreeMap<NodeId, Weight>,
    /// Mirrors of neighbors' advertised distances.
    pub mirrors: BTreeMap<NodeId, Distance>,
    /// `Some` while a diffusing computation is in progress.
    pub active: Option<ActiveState>,
    /// Queries owed a reply once we are passive with a settled route.
    pub owed_replies: BTreeSet<NodeId>,
    config: DualConfig,
}

impl DualNode {
    /// Creates a passive node with the given initial route.
    pub fn new(
        id: NodeId,
        dest: NodeId,
        d: Distance,
        succ: NodeId,
        neighbors: BTreeMap<NodeId, Weight>,
        config: DualConfig,
    ) -> Self {
        DualNode {
            id,
            dest,
            d,
            fd: d,
            succ,
            neighbors,
            mirrors: BTreeMap::new(),
            active: None,
            owed_replies: BTreeSet::new(),
            config,
        }
    }

    /// The clamped distance neighbor `k` offers.
    pub fn offer(&self, k: NodeId) -> Distance {
        let Some(&w) = self.neighbors.get(&k) else {
            return Distance::Infinite;
        };
        let d = self.mirrors.get(&k).copied().unwrap_or(Distance::Infinite);
        let o = d.plus(w);
        match o.as_finite() {
            Some(v) if v >= self.config.infinity => Distance::Infinite,
            _ => o,
        }
    }

    /// The advertised distance of `k` as mirrored.
    fn advertised(&self, k: NodeId) -> Distance {
        self.mirrors.get(&k).copied().unwrap_or(Distance::Infinite)
    }

    /// Best neighbor satisfying the Source Node Condition
    /// (`advertised < fd`), by offered distance then id.
    fn best_feasible(&self) -> Option<(Distance, NodeId)> {
        self.neighbors
            .keys()
            .filter(|&&k| self.advertised(k) < self.fd)
            .map(|&k| (self.offer(k), k))
            .filter(|(o, _)| !o.is_infinite())
            .min()
    }

    /// Best neighbor regardless of feasibility.
    fn best_any(&self) -> Option<(Distance, NodeId)> {
        self.neighbors
            .keys()
            .map(|&k| (self.offer(k), k))
            .filter(|(o, _)| !o.is_infinite())
            .min()
    }

    /// Whether the passive local computation has anything to do.
    fn needs_work(&self) -> bool {
        if self.active.is_some() {
            return false;
        }
        if self.id == self.dest {
            return self.d != Distance::ZERO || self.succ != self.id;
        }
        if !self.owed_replies.is_empty() {
            return true;
        }
        // Re-route if a feasible successor strictly improves on the
        // current distance, or if the route via the current successor no
        // longer matches our advertised distance.
        if let Some((o, k)) = self.best_feasible() {
            if o < self.d || (self.d != self.offer(self.succ) && k == self.succ) {
                return true;
            }
        }
        self.d != self.offer(self.succ) && self.d != Distance::Infinite
            || (self.d.is_infinite() && self.best_feasible().is_some())
    }

    fn finish_diffusion(&mut self, fx: &mut Effects<DualMsg>) {
        // Feasible distance resets: choose the best route freely.
        self.active = None;
        self.fd = Distance::Infinite;
        let (d, succ) = match self.best_any() {
            Some((o, k)) => (o, k),
            None => (Distance::Infinite, self.id),
        };
        if self.id == self.dest {
            self.set_route(Distance::ZERO, self.id, Distance::ZERO, fx);
        } else {
            self.set_route(d, succ, d, fx);
        }
        self.flush_owed(fx);
        fx.broadcast(DualMsg::Update(self.d));
    }

    fn set_route(&mut self, d: Distance, succ: NodeId, fd: Distance, fx: &mut Effects<DualMsg>) {
        if self.d != d || self.succ != succ {
            fx.note_var_change();
        }
        self.d = d;
        self.succ = succ;
        self.fd = fd;
    }

    fn flush_owed(&mut self, fx: &mut Effects<DualMsg>) {
        let owed = std::mem::take(&mut self.owed_replies);
        for k in owed {
            if self.neighbors.contains_key(&k) {
                fx.send_to(k, DualMsg::Reply(self.d));
            }
        }
    }

    fn go_active(&mut self, now_local: f64, fx: &mut Effects<DualMsg>) {
        // Freeze on the (worsened) route via the current successor and
        // diffuse a query.
        let via_succ = self.offer(self.succ);
        if self.d != via_succ {
            fx.note_var_change();
        }
        self.d = via_succ;
        self.fd = self.fd.min(via_succ);
        let pending: BTreeSet<NodeId> = self.neighbors.keys().copied().collect();
        if pending.is_empty() {
            // No one to ask: equivalent to an instantly-finished diffusion.
            self.active = Some(ActiveState::default());
            self.finish_diffusion(fx);
            return;
        }
        self.active = Some(ActiveState {
            pending,
            started_local_ms: (now_local * 1_000.0) as u64,
        });
        fx.broadcast(DualMsg::Query(self.d));
    }
}

impl ProtocolNode for DualNode {
    type Msg = DualMsg;

    fn enabled_actions(&self, now_local: f64) -> EnabledSet {
        let mut set = EnabledSet::none();
        self.enabled_actions_into(now_local, &mut set);
        set
    }

    fn enabled_actions_into(&self, now_local: f64, set: &mut EnabledSet) {
        match &self.active {
            Some(a) => {
                // Stuck-in-active escape: wake up at the timeout.
                let deadline = a.started_local_ms as f64 / 1_000.0 + self.config.active_timeout;
                if now_local >= deadline {
                    set.enable(D1, 0.0);
                } else {
                    set.wake_at(deadline);
                }
            }
            None => {
                if self.needs_work() {
                    set.enable(D1, self.config.hold);
                }
            }
        }
    }

    fn execute(&mut self, action: ActionId, now_local: f64, fx: &mut Effects<DualMsg>) {
        debug_assert_eq!(action, D1);
        if self.active.is_some() {
            // Only reachable via the SIA timeout.
            self.finish_diffusion(fx);
            return;
        }
        if self.id == self.dest {
            self.set_route(Distance::ZERO, self.id, Distance::ZERO, fx);
            self.flush_owed(fx);
            fx.broadcast(DualMsg::Update(self.d));
            return;
        }
        match self.best_feasible() {
            Some((o, k)) if o <= self.d || self.d.is_infinite() => {
                // A feasible successor no worse than the current route.
                let fd = self.fd.min(o);
                let changed = self.d != o;
                self.set_route(o, k, fd, fx);
                self.flush_owed(fx);
                if changed {
                    fx.broadcast(DualMsg::Update(self.d));
                }
            }
            _ => {
                if self.best_any().is_none() {
                    // Nothing reachable at all: withdraw.
                    let changed = !self.d.is_infinite();
                    self.set_route(Distance::Infinite, self.id, Distance::Infinite, fx);
                    self.flush_owed(fx);
                    if changed {
                        fx.broadcast(DualMsg::Update(self.d));
                    }
                } else {
                    self.go_active(now_local, fx);
                }
            }
        }
    }

    fn on_receive(
        &mut self,
        from: NodeId,
        msg: &DualMsg,
        _now_local: f64,
        fx: &mut Effects<DualMsg>,
    ) {
        if !self.neighbors.contains_key(&from) {
            return;
        }
        let record = |this: &mut Self, d: Distance, fx: &mut Effects<DualMsg>| {
            if this.mirrors.insert(from, d) != Some(d) {
                fx.note_mirror_change();
            }
        };
        match *msg {
            DualMsg::Update(d) => record(self, d, fx),
            DualMsg::Query(d) => {
                record(self, d, fx);
                if self.id == self.dest {
                    fx.send_to(from, DualMsg::Reply(Distance::ZERO));
                } else if self.active.is_some() {
                    // An *active* node replies immediately with its frozen
                    // distance, whoever asks — this is what keeps chained
                    // diffusing computations deadlock-free in DUAL.
                    fx.send_to(from, DualMsg::Reply(self.d));
                } else if from == self.succ {
                    // Passive, and our own route is in question: answer
                    // only once we have settled (this is what diffuses the
                    // computation).
                    self.owed_replies.insert(from);
                } else {
                    fx.send_to(from, DualMsg::Reply(self.d));
                }
            }
            DualMsg::Reply(d) => {
                record(self, d, fx);
                let finished = match &mut self.active {
                    Some(a) => {
                        a.pending.remove(&from);
                        a.pending.is_empty()
                    }
                    None => false,
                };
                if finished {
                    self.finish_diffusion(fx);
                }
            }
        }
    }

    fn on_neighbors_changed(
        &mut self,
        neighbors: &BTreeMap<NodeId, Weight>,
        _now_local: f64,
        fx: &mut Effects<DualMsg>,
    ) {
        let grew = neighbors.keys().any(|k| !self.neighbors.contains_key(k));
        self.mirrors.retain(|k, _| neighbors.contains_key(k));
        self.owed_replies.retain(|k| neighbors.contains_key(k));
        self.neighbors = neighbors.clone();
        let finished = match &mut self.active {
            Some(a) => {
                a.pending.retain(|k| self.neighbors.contains_key(k));
                a.pending.is_empty()
            }
            None => false,
        };
        if finished {
            self.finish_diffusion(fx);
        }
        if grew {
            fx.broadcast(DualMsg::Update(self.d));
        }
    }

    fn route_entry(&self) -> lsrp_graph::RouteEntry {
        lsrp_graph::RouteEntry::new(self.d, self.succ)
    }

    fn in_containment(&self) -> bool {
        // Active nodes are frozen, the closest analogue for metrics.
        self.active.is_some()
    }

    fn action_name(_action: ActionId) -> &'static str {
        "D1"
    }

    fn is_maintenance(_action: ActionId) -> bool {
        false
    }
}

impl HarnessProtocol for DualNode {
    const NAME: &'static str = "DUAL";
    type Meta = ();

    fn corrupt_distance(&mut self, d: Distance, _dest: NodeId) {
        // Keep `fd` consistent with the corrupted value, the worst case
        // for containment: the corruption is feasible.
        self.d = d;
        self.fd = d;
    }

    fn poison_mirror(&mut self, about: NodeId, advert: ForgedAdvert, _dest: NodeId) {
        self.mirrors.insert(about, advert.d);
    }

    fn inject_route(&mut self, d: Distance, p: NodeId, _dest: NodeId) {
        self.d = d;
        self.succ = p;
        self.fd = d;
    }
}

/// Convenience facade mirroring `lsrp_core::LsrpSimulation` for
/// DUAL-lite.
pub type DualSimulation = SimHarness<DualNode>;

impl BaselineSimulation for DualSimulation {
    type Config = DualConfig;

    /// Builds a DUAL network starting from the given route table (or the
    /// canonical legitimate one), with consistent mirrors and `fd = d`.
    fn new(
        graph: Graph,
        destination: NodeId,
        initial: Option<RouteTable>,
        config: DualConfig,
        engine_config: EngineConfig,
    ) -> Self {
        assert!(
            graph.has_node(destination),
            "destination {destination} is not in the graph"
        );
        let table = initial.unwrap_or_else(|| RouteTable::legitimate(&graph, destination));
        let engine = Engine::new(graph, engine_config, move |id, neighbors| {
            let entry = table
                .entry(id)
                .unwrap_or_else(|| lsrp_graph::RouteEntry::no_route(id));
            let mut node = DualNode::new(
                id,
                destination,
                entry.distance,
                entry.parent,
                neighbors.clone(),
                config,
            );
            for k in neighbors.keys() {
                let kd = table.entry(*k).map_or(Distance::Infinite, |e| e.distance);
                node.mirrors.insert(*k, kd);
            }
            node
        });
        DualSimulation::from_parts(engine, destination, 0.0, ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_graph::generators;
    use lsrp_sim::SimTime;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sim(graph: Graph, dest: NodeId) -> DualSimulation {
        DualSimulation::new(
            graph,
            dest,
            None,
            DualConfig::default(),
            EngineConfig::default(),
        )
    }

    #[test]
    fn legitimate_start_is_quiescent() {
        let mut s = sim(generators::grid(4, 4, 1), v(0));
        let report = s.run_to_quiescence(1_000.0);
        assert!(report.quiescent);
        assert_eq!(s.engine().trace().total_actions(), 0);
        assert!(s.routes_correct());
    }

    #[test]
    fn cold_start_converges() {
        let g = generators::grid(4, 4, 1);
        let table: RouteTable = g
            .nodes()
            .map(|n| {
                let e = if n == v(0) {
                    lsrp_graph::RouteEntry::new(Distance::ZERO, v(0))
                } else {
                    lsrp_graph::RouteEntry::no_route(n)
                };
                (n, e)
            })
            .collect();
        let mut s = DualSimulation::new(
            g,
            v(0),
            Some(table),
            DualConfig::default(),
            EngineConfig::default(),
        );
        let report = s.run_to_quiescence(100_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
    }

    #[test]
    fn link_failure_triggers_diffusing_recovery() {
        // Ring: failing one destination edge forces the stranded arc to
        // re-route the long way around — via diffusing computations, and
        // without ever counting to infinity.
        let mut s = sim(generators::ring(8, 1), v(0));
        s.engine_mut().fail_edge(v(0), v(1)).unwrap();
        let report = s.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        let t = s.route_table();
        assert_eq!(t.entry(v(1)).unwrap().distance, Distance::Finite(7));
    }

    #[test]
    fn disconnection_withdraws_without_count_to_infinity() {
        let mut s = sim(generators::path(5, 1), v(0));
        s.engine_mut().fail_edge(v(0), v(1)).unwrap();
        let report = s.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        for node in [1, 2, 3, 4] {
            assert!(s
                .route_table()
                .entry(v(node))
                .unwrap()
                .distance
                .is_infinite());
        }
        // DUAL withdraws in O(diameter) actions, unlike DBF's count-up.
        assert!(s.engine().trace().total_actions() < 30);
    }

    #[test]
    fn corrupted_small_distance_is_feasible_and_propagates() {
        // The paper's §I/§IV-B claim about DUAL: a corrupted-small value
        // passes the feasibility check and contaminates downstream nodes.
        let mut s = sim(generators::path(6, 1), v(0));
        s.corrupt_distance(v(1), Distance::ZERO);
        s.poison_mirror(v(2), v(1), Distance::ZERO);
        let report = s.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        let acted = s.engine().trace().acted_nodes_since(SimTime::ZERO);
        for node in [2, 3, 4, 5] {
            assert!(
                acted.contains(&v(node)),
                "v{node} must be contaminated; acted = {acted:?}"
            );
        }
    }

    #[test]
    fn weight_increase_goes_active_then_settles() {
        let mut s = sim(generators::path(4, 1), v(0));
        s.engine_mut().set_weight(v(0), v(1), 10).unwrap();
        let report = s.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        assert_eq!(
            s.route_table().entry(v(3)).unwrap().distance,
            Distance::Finite(12)
        );
    }

    #[test]
    fn stuck_in_active_times_out() {
        let cfg = DualConfig {
            active_timeout: 50.0,
            ..DualConfig::default()
        };
        let mut s = DualSimulation::new(
            generators::path(3, 1),
            v(0),
            None,
            cfg,
            EngineConfig::default(),
        );
        // Corrupt v1 straight into a bogus active state whose pending set
        // names a neighbor that will never reply (v0 is not even queried).
        s.engine_mut().with_node_mut(v(1), |n| {
            n.active = Some(ActiveState {
                pending: BTreeSet::from([v(0)]),
                started_local_ms: 0,
            });
        });
        let report = s.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(s.routes_correct());
        assert!(report.last_effective >= SimTime::new(50.0));
    }
}
