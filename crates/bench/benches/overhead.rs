//! Criterion benches for the control-overhead experiment (E11) and the
//! wave-ratio sweep (E12).

use criterion::{criterion_group, criterion_main, Criterion};

use lsrp_bench::build::Protocol;
use lsrp_bench::{scaling, waves};

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead_messages");
    g.sample_size(10);
    for protocol in [Protocol::Lsrp, Protocol::Dbf, Protocol::Dual] {
        g.bench_function(format!("{protocol:?}_grid16_p2"), |b| {
            b.iter(|| std::hint::black_box(scaling::scaling_cell(protocol, 16, 2, 9)))
        });
    }
    g.finish();
}

fn bench_waves(c: &mut Criterion) {
    let mut g = c.benchmark_group("wave_speed_ratio");
    g.sample_size(10);
    g.bench_function("mistaken_containment_ratio2", |b| {
        b.iter(|| std::hint::black_box(waves::mistaken_containment_run(2.125)))
    });
    g.bench_function("mistaken_stabilization_ratio2", |b| {
        b.iter(|| std::hint::black_box(waves::mistaken_stabilization_run(2.125)))
    });
    g.finish();
}

criterion_group!(benches, bench_overhead, bench_waves);
criterion_main!(benches);
