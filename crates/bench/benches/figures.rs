//! Criterion benches for the figure reproductions (E1–E4): wall-clock cost
//! of simulating each worked example end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use lsrp_bench::figures;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);
    g.bench_function("fig2_fig5_all_protocols", |b| {
        b.iter(|| std::hint::black_box(figures::e1_e2_fig2_vs_fig5()))
    });
    g.bench_function("fig6_supercontainment", |b| {
        b.iter(|| std::hint::black_box(figures::e3_fig6()))
    });
    g.bench_function("fig7_edge_density", |b| {
        b.iter(|| std::hint::black_box(figures::e4_fig7()))
    });
    g.bench_function("dependent_sets", |b| {
        b.iter(|| std::hint::black_box(figures::e4b_dependent_sets()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
