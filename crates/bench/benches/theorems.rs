//! Criterion benches for the theorem experiments (E5–E10): representative
//! instances of self-stabilization, scaling, concurrent regions, loop
//! freedom and loop breakage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsrp_bench::build::Protocol;
use lsrp_bench::{loops_exp, regions_exp, scaling, selfstab};

fn bench_selfstab(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm1_self_stabilization");
    g.sample_size(10);
    for n in [16u32, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(selfstab::selfstab_run(n, 1, 2)))
        });
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm2_scaling");
    g.sample_size(10);
    for p in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("lsrp_grid16_p", p), &p, |b, &p| {
            b.iter(|| std::hint::black_box(scaling::scaling_cell(Protocol::Lsrp, 16, p, 1)))
        });
    }
    g.bench_function("dbf_grid16_p4", |b| {
        b.iter(|| std::hint::black_box(scaling::scaling_cell(Protocol::Dbf, 16, 4, 1)))
    });
    g.finish();
}

fn bench_regions(c: &mut Criterion) {
    let mut g = c.benchmark_group("lem2_concurrent_regions");
    g.sample_size(10);
    g.bench_function("two_far_regions_ring64", |b| {
        b.iter(|| std::hint::black_box(regions_exp::multi_region_run(64, 4, &[16, 48], 5)))
    });
    g.finish();
}

fn bench_loops(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm4_loop_breakage");
    g.sample_size(10);
    for l in [8u32, 32] {
        g.bench_with_input(BenchmarkId::new("lsrp_L", l), &l, |b, &l| {
            b.iter(|| std::hint::black_box(loops_exp::loop_breakage_run(Protocol::Lsrp, l, 1)))
        });
        g.bench_with_input(BenchmarkId::new("dual_L", l), &l, |b, &l| {
            b.iter(|| std::hint::black_box(loops_exp::loop_breakage_run(Protocol::Dual, l, 1)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_selfstab,
    bench_scaling,
    bench_regions,
    bench_loops
);
criterion_main!(benches);
