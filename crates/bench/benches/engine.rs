//! Raw engine benchmarks: event throughput of the simulator substrate
//! (independent of any paper claim; useful for tracking regressions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lsrp_core::{InitialState, LsrpSimulation};
use lsrp_graph::{generators, NodeId};

fn bench_cold_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_cold_start");
    g.sample_size(10);
    for w in [8u32, 16] {
        let n = u64::from(w * w);
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("lsrp_grid", w), &w, |b, &w| {
            b.iter(|| {
                let mut sim = LsrpSimulation::builder(generators::grid(w, w, 1), NodeId::new(0))
                    .initial_state(InitialState::Fresh)
                    .build();
                let report = sim.run_to_quiescence(1_000_000.0);
                assert!(report.quiescent);
                std::hint::black_box(report.events)
            })
        });
    }
    g.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_event_rate");
    g.sample_size(10);
    g.bench_function("fresh_grid12_events", |b| {
        b.iter(|| {
            let mut sim = LsrpSimulation::builder(generators::grid(12, 12, 1), NodeId::new(0))
                .initial_state(InitialState::Fresh)
                .build();
            let mut n = 0u64;
            while sim.engine_mut().step().is_some() {
                n += 1;
            }
            std::hint::black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cold_start, bench_event_rate);
criterion_main!(benches);
