//! Raw engine benchmarks: event and delivery throughput of the simulator
//! substrate (independent of any paper claim; useful for tracking
//! regressions).
//!
//! The timed scenarios are the same fixed-seed builds the `perf_smoke`
//! binary measures (`lsrp_bench::engine_perf`): the benign Fig. 1 cold
//! start and a 200-node grid, both with a counters-only sink.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lsrp_analysis::{run_monitored, standard_monitors, WorkloadDriver, WorkloadSpec};
use lsrp_bench::engine_perf::{
    allpairs_grid_reference_sim, allpairs_grid_sim, fig1_sim, grid200_sim, PERF_SEED,
};
use lsrp_core::{InitialState, LsrpSimulation, LsrpSimulationExt};
use lsrp_faults::{FaultProcess, FaultSchedule};
use lsrp_graph::{generators, Distance, NodeId};
use lsrp_sim::EngineConfig;

fn bench_delivery_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_delivery_throughput");
    g.sample_size(10);
    for (name, build) in [
        ("fig1_benign", fig1_sim as fn() -> LsrpSimulation),
        ("grid200_benign", grid200_sim),
    ] {
        // Calibrate throughput to the scenario's deterministic delivery
        // count, so Criterion reports deliveries/sec.
        let mut probe = build();
        assert!(probe.run_to_quiescence(1_000_000.0).quiescent);
        let deliveries = probe.stats().messages_delivered;
        g.throughput(Throughput::Elements(deliveries));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = build();
                let report = sim.run_to_quiescence(1_000_000.0);
                assert!(report.quiescent);
                std::hint::black_box(sim.stats().messages_delivered)
            })
        });
    }
    g.finish();
}

fn bench_cold_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_cold_start");
    g.sample_size(10);
    for w in [8u32, 16] {
        let n = u64::from(w * w);
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("lsrp_grid", w), &w, |b, &w| {
            b.iter(|| {
                let mut sim = LsrpSimulation::builder(generators::grid(w, w, 1), NodeId::new(0))
                    .initial_state(InitialState::Fresh)
                    .build();
                let report = sim.run_to_quiescence(1_000_000.0);
                assert!(report.quiescent);
                std::hint::black_box(report.events)
            })
        });
    }
    g.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_event_rate");
    g.sample_size(10);
    g.bench_function("fresh_grid12_events", |b| {
        b.iter(|| {
            let mut sim = LsrpSimulation::builder(generators::grid(12, 12, 1), NodeId::new(0))
                .initial_state(InitialState::Fresh)
                .build();
            let mut n = 0u64;
            while sim.engine_mut().step().is_some() {
                n += 1;
            }
            std::hint::black_box(n)
        })
    });
    g.finish();
}

fn bench_monitored_chaos(c: &mut Criterion) {
    // The observation-plane benchmark: a fully-monitored chaos run on a
    // 10x10 grid (the perf_smoke `chaos_monitored` scenario), timing the
    // engine *and* the standard monitors' per-event work.
    let graph = generators::grid(10, 10, 1);
    let dest = NodeId::new(0);
    let horizon = 100_000.0;
    // Calibrate throughput from one probe run (seed-deterministic).
    let setup = || {
        let mut sim = LsrpSimulation::builder(graph.clone(), dest)
            .initial_state(InitialState::Fresh)
            .engine_config(EngineConfig::default().with_seed(PERF_SEED))
            .build();
        sim.run_to_quiescence(horizon);
        let t0 = sim.now().seconds();
        let raw = FaultProcess::standard().generate(&graph, dest, 600.0, PERF_SEED);
        let mut schedule = FaultSchedule::new();
        for e in &raw.events {
            schedule.push(t0 + e.at, e.fault.clone());
        }
        (sim, schedule)
    };
    let (mut probe_sim, probe_schedule) = setup();
    let timing = *probe_sim.timing();
    let mut probe_monitors = standard_monitors(&timing, graph.node_count());
    let probe = run_monitored(
        &mut probe_sim,
        &probe_schedule,
        horizon,
        &mut probe_monitors,
    );

    let mut g = c.benchmark_group("engine_monitored_chaos");
    g.sample_size(10);
    g.throughput(Throughput::Elements(probe.events));
    g.bench_function("grid100_standard_monitors", |b| {
        b.iter(|| {
            let (mut sim, schedule) = setup();
            let mut monitors = standard_monitors(&timing, graph.node_count());
            let report = run_monitored(&mut sim, &schedule, horizon, &mut monitors);
            assert_eq!(report.events, probe.events, "chaos runs are seed-pinned");
            std::hint::black_box(report.violations.len())
        })
    });
    g.finish();
}

fn bench_allpairs_grid(c: &mut Criterion) {
    // The multi-destination plane benchmark: full-table corruption at one
    // node of an all-pairs 6x6 grid (1296 instances), dense plane vs the
    // pre-dense reference. Throughput is calibrated to delivered protocol
    // adverts so the two are comparable despite batching.
    let mut g = c.benchmark_group("engine_allpairs_grid");
    g.sample_size(10);

    let mut probe = allpairs_grid_sim();
    assert!(probe.run_to_quiescence(1_000_000.0).quiescent);
    let dense_adverts = probe.stats().adverts_delivered;
    g.throughput(Throughput::Elements(dense_adverts));
    g.bench_function("dense_batched", |b| {
        b.iter(|| {
            let mut sim = allpairs_grid_sim();
            let report = sim.run_to_quiescence(1_000_000.0);
            assert!(report.quiescent);
            assert_eq!(
                sim.stats().adverts_delivered,
                dense_adverts,
                "allpairs runs are seed-pinned"
            );
            std::hint::black_box(sim.stats().messages_delivered)
        })
    });

    let mut probe = allpairs_grid_reference_sim();
    assert!(probe.run_to_quiescence(1_000_000.0).quiescent);
    let ref_adverts = probe.stats().adverts_delivered;
    g.throughput(Throughput::Elements(ref_adverts));
    g.bench_function("reference_unbatched", |b| {
        b.iter(|| {
            let mut sim = allpairs_grid_reference_sim();
            let report = sim.run_to_quiescence(1_000_000.0);
            assert!(report.quiescent);
            assert_eq!(
                sim.stats().adverts_delivered,
                ref_adverts,
                "allpairs runs are seed-pinned"
            );
            std::hint::black_box(sim.stats().messages_delivered)
        })
    });
    g.finish();
}

fn bench_traffic_grid(c: &mut Criterion) {
    // The live data-plane benchmark: the perf_smoke `traffic_grid`
    // scenario — an aggregated Poisson workload forwarding on a 10x10
    // grid while a mid-run corruption recovers. Throughput is calibrated
    // to the packets the weighted probes represent.
    let graph = generators::grid(10, 10, 1);
    let dest = NodeId::new(0);
    let victim = NodeId::new(55);
    let duration = 300.0;
    let run = |graph: &lsrp_graph::Graph| {
        let mut sim = LsrpSimulation::builder(graph.clone(), dest)
            .initial_state(InitialState::Legitimate)
            .engine_config(EngineConfig::default().with_seed(PERF_SEED))
            .build();
        sim.run_to_quiescence(100_000.0);
        let t0 = sim.now().seconds();
        let spec = WorkloadSpec::default();
        let mut workload = WorkloadDriver::new(&spec, graph, &[dest], t0, duration, PERF_SEED);
        workload.ensure_scheduled(sim.engine_mut(), t0 + duration / 2.0);
        sim.run_until(t0 + duration / 2.0);
        sim.corrupt_distance(victim, Distance::ZERO);
        workload.ensure_scheduled(sim.engine_mut(), f64::INFINITY);
        loop {
            let drained = !sim.engine().any_enabled_non_maintenance()
                && sim.engine().inflight_messages() == 0
                && sim.engine().packets_in_flight() == 0;
            if drained {
                break;
            }
            let next = sim
                .engine()
                .next_event_time()
                .expect("undrained planes imply pending events");
            sim.run_until(next.seconds() + 50.0);
        }
        sim.stats().traffic
    };

    let probe = run(&graph);
    assert_eq!(probe.completed(), probe.injected, "packets must drain");

    let mut g = c.benchmark_group("engine_traffic_grid");
    g.sample_size(10);
    g.throughput(Throughput::Elements(probe.injected));
    g.bench_function("grid100_aggregated_workload", |b| {
        b.iter(|| {
            let counts = run(&graph);
            assert_eq!(counts.injected, probe.injected, "runs are seed-pinned");
            std::hint::black_box(counts.delivered)
        })
    });
    g.finish();
}

fn bench_wakeup_scheduler(c: &mut Criterion) {
    // Guards the multi-instance wakeup scheduler's bulk re-arm path: a
    // neighbor change marks every instance dirty, and the next guard
    // evaluation recomputes all of them and re-arms their clock wakeups
    // in one batch (rebuilding the heap instead of N push/sift rounds).
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use lsrp_core::{LsrpState, TimingConfig};
    use lsrp_multi::{DestTable, MultiLsrpNode};
    use lsrp_sim::{Effects, EnabledSet, ProtocolNode};

    const DESTS: u32 = 256;
    let id = NodeId::new(0);
    let neighbors = BTreeMap::from([(NodeId::new(1), 1u64), (NodeId::new(2), 1u64)]);
    let dests = DestTable::new((0..DESTS).map(NodeId::new));
    let build = || {
        MultiLsrpNode::new(
            id,
            TimingConfig::paper_example(1.0),
            Arc::clone(&dests),
            (0..DESTS).map(|d| LsrpState::fresh(id, NodeId::new(d), neighbors.clone())),
        )
    };

    let mut g = c.benchmark_group("multi_wakeup_scheduler");
    g.throughput(Throughput::Elements(u64::from(DESTS)));
    g.bench_function("mark_all_dirty_then_evaluate_256", |b| {
        let mut node = build();
        let mut set = EnabledSet::none();
        let mut now = 0.0;
        b.iter(|| {
            let mut fx = Effects::detached();
            node.on_neighbors_changed(&neighbors, now, &mut fx);
            node.enabled_actions_into(now, &mut set);
            now += 1.0;
            std::hint::black_box(set.actions.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_delivery_throughput,
    bench_cold_start,
    bench_event_rate,
    bench_monitored_chaos,
    bench_traffic_grid,
    bench_allpairs_grid,
    bench_wakeup_scheduler
);
criterion_main!(benches);
