//! E21 (congestion lane): LSRP repair waves racing hotspot congestion.
//!
//! E20 measures live availability with fire-and-forget probes on
//! unlimited links; here the data plane is congestion-realistic — links
//! serialize at a finite rate, egress queues are bounded drop-tail, and
//! the workload is stateful Go-Back-N flows under AIMD. A size-`p`
//! prefix-hijack black hole lands mid-transfer, so the repair wave and
//! the hotspot's queue pressure compete for the same links: every
//! black-holed segment is a retransmission that deepens the very queues
//! the recovery traffic crosses. The claim under test is that local
//! stabilization keeps the collision survivable — after convergence the
//! transport layer recovers at least 90% weighted goodput, with drop
//! causes (queue overflow vs black hole) separately accounted.
//!
//! The table is a wrapper over `scenarios/e21_congested_recovery.toml`;
//! the run itself lives in `lsrp_scenario::cells::live_hijack_cell`.

use lsrp_analysis::{Table, TrafficSummary, WorkloadKind, WorkloadSpec};
use lsrp_scenario::cells::{live_hijack_cell, LiveHijackSpec};
use lsrp_scenario::schema::{ScenarioBody, SweepValue};
use lsrp_scenario::{run_scenario, ExecOptions};
use lsrp_sim::{CongAlgKind, CongestionConfig};

use crate::scaling::load_scenario;

/// One congested-recovery run on a `w`x`w` grid: settle, start hotspot
/// Go-Back-N flows over finite-rate links and bounded drop-tail queues,
/// stream 30 s cleanly, then have a contiguous region of `p` nodes near
/// the destination hijack the prefix while the flows keep retransmitting
/// until every transfer completes.
///
/// # Panics
///
/// Panics if the run fails to drain, leaves incorrect routes, or breaks
/// packet conservation.
pub fn congested_recovery_run(w: u32, p: usize, seed: u64) -> TrafficSummary {
    live_hijack_cell(&LiveHijackSpec {
        width: w,
        p,
        seed,
        workload: WorkloadSpec {
            kind: WorkloadKind::Hotspot,
            flows: 64,
            ..WorkloadSpec::default()
        },
        duration: 240.0,
        prefault: 30.0,
        window: 10.0,
        // Rate 400 weight/s serializes an aggregate segment (weight 125)
        // in ~0.3 s; capacity 1500 holds 12 of them — a hotspot crossing
        // one egress port saturates it.
        congestion: Some(CongestionConfig::limited(400.0, 1_500)),
        transport: Some(CongAlgKind::Aimd {
            initial: 4,
            max: 64,
        }),
    })
    .summary
}

/// E21 table: goodput, queue pressure and flow completion times as the
/// perturbation grows, at fixed network size and fixed offered load.
pub fn e21_congested_recovery(w: u32, sizes: &[usize]) -> Table {
    let mut s = load_scenario(include_str!(
        "../../../scenarios/e21_congested_recovery.toml"
    ));
    if let ScenarioBody::Hijack(h) = &mut s.body {
        h.width = w;
        #[allow(clippy::cast_possible_wrap)]
        h.sweep.set_axis(
            "p",
            sizes.iter().map(|&p| SweepValue::Int(p as i64)).collect(),
        );
    }
    run_scenario(
        &s,
        ExecOptions::sharded(std::thread::available_parallelism().map_or(1, |n| n.get())),
    )
    .expect("e21 scenario runs")
    .into_table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_recovers_after_convergence() {
        // The ISSUE acceptance gate: a hotspot workload saturates a
        // bounded queue during a size-p perturbation, and Go-Back-N
        // recovers >= 90% weighted goodput once the control plane
        // converges (here: all of it, since no endpoint dies).
        let s = congested_recovery_run(8, 4, 3);
        assert!(s.counts.injected > 0);
        assert!(
            s.goodput_fraction() >= 0.9,
            "goodput must recover: {}",
            s.goodput_fraction()
        );
        assert_eq!(s.flows_aborted, 0, "no endpoint died");
        assert!(s.flows_completed > 0);
        assert!(s.mean_fct > 0.0);
        assert!(
            s.counts.black_holed > 0,
            "the hijack must have eaten segments"
        );
        assert!(
            s.congestion.flow_retransmit_weight > 0,
            "recovery must go through retransmission"
        );
    }

    #[test]
    fn congestion_is_real_in_the_hotspot() {
        // The bounded queue must actually bind: positive peak occupancy
        // near capacity or queue drops under the hotspot load.
        let s = congested_recovery_run(8, 1, 7);
        assert!(s.congestion.peak_port_occupancy > 0);
        assert!(
            s.congestion.peak_port_occupancy <= 1_500,
            "queue bound invariant"
        );
    }

    #[test]
    fn scenario_e21_is_byte_identical_to_the_legacy_loop() {
        let (w, sizes) = (8u32, [1usize]);
        let mut t = Table::new(
            format!(
                "E21 — congestion lane: Go-Back-N goodput while LSRP repair waves race hotspot congestion (grid {w}x{w}, finite-rate links, bounded drop-tail queues, AIMD flows, size-p prefix-hijack)"
            ),
            &[
                "perturbation p",
                "goodput fraction",
                "queue drops",
                "blackholed",
                "peak queue depth",
                "retransmitted",
                "flow timeouts",
                "mean FCT",
                "max FCT",
            ],
        );
        for &p in &sizes {
            let s = congested_recovery_run(w, p, 11);
            t.row(&[
                p.to_string(),
                format!("{:.4}", s.goodput_fraction()),
                s.counts.queue_dropped.to_string(),
                s.counts.black_holed.to_string(),
                s.congestion.peak_port_occupancy.to_string(),
                s.congestion.flow_retransmit_weight.to_string(),
                s.congestion.flow_timeouts.to_string(),
                format!("{:.1}", s.mean_fct),
                format!("{:.1}", s.max_fct),
            ]);
        }
        assert_eq!(t.to_string(), e21_congested_recovery(w, &sizes).to_string());
    }
}
