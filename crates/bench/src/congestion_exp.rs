//! E21 (congestion lane): LSRP repair waves racing hotspot congestion.
//!
//! E20 measures live availability with fire-and-forget probes on
//! unlimited links; here the data plane is congestion-realistic — links
//! serialize at a finite rate, egress queues are bounded drop-tail, and
//! the workload is stateful Go-Back-N flows under AIMD. A size-`p`
//! prefix-hijack black hole lands mid-transfer, so the repair wave and
//! the hotspot's queue pressure compete for the same links: every
//! black-holed segment is a retransmission that deepens the very queues
//! the recovery traffic crosses. The claim under test is that local
//! stabilization keeps the collision survivable — after convergence the
//! transport layer recovers at least 90% weighted goodput, with drop
//! causes (queue overflow vs black hole) separately accounted.

use lsrp_analysis::Table;
use lsrp_analysis::{
    AvailabilityMonitor, TrafficSummary, WorkloadDriver, WorkloadKind, WorkloadSpec,
};
use lsrp_core::{LsrpSimulation, LsrpSimulationExt};
use lsrp_faults::corruption::contiguous_region;
use lsrp_graph::{generators, Distance, NodeId};
use lsrp_sim::{CongAlgKind, CongestionConfig, EngineConfig, SinkKind};

use crate::HORIZON;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// One congested-recovery run on a `w`x`w` grid: settle, start hotspot
/// Go-Back-N flows over finite-rate links and bounded drop-tail queues,
/// stream 30 s cleanly, then have a contiguous region of `p` nodes near
/// the destination hijack the prefix while the flows keep retransmitting
/// until every transfer completes.
///
/// # Panics
///
/// Panics if the run fails to drain, leaves incorrect routes, or breaks
/// packet conservation.
pub fn congested_recovery_run(w: u32, p: usize, seed: u64) -> TrafficSummary {
    let graph = generators::grid(w, w, 1);
    let dest = v(0);
    let mut sim = LsrpSimulation::builder(graph.clone(), dest)
        .engine_config(
            EngineConfig::default()
                .with_seed(seed)
                .with_sink(SinkKind::CountsOnly)
                // Rate 400 weight/s serializes an aggregate segment
                // (weight 125) in ~0.3 s; capacity 1500 holds 12 of them
                // — a hotspot crossing one egress port saturates it.
                .with_congestion(CongestionConfig::limited(400.0, 1_500)),
        )
        .build();
    sim.run_to_quiescence(HORIZON);
    let t0 = sim.now().seconds();

    let spec = WorkloadSpec {
        kind: WorkloadKind::Hotspot,
        flows: 64,
        ..WorkloadSpec::default()
    };
    let mut workload = WorkloadDriver::new(&spec, &graph, &[dest], t0, 240.0, seed).with_transport(
        CongAlgKind::Aimd {
            initial: 4,
            max: 64,
        },
    );
    let mut avail = AvailabilityMonitor::new(10.0);
    avail.arm(&mut sim);

    // Clean pre-fault windows: flows ramp and the hotspot queues fill.
    workload.ensure_scheduled(sim.engine_mut(), t0 + 30.0);
    sim.run_until(t0 + 30.0);
    avail.observe(&mut sim);

    // The black hole: a size-`p` region claims to be the destination and
    // its neighborhood has already learned the bogus advertisement. The
    // topology is untouched, so flows can always recover by retransmission
    // once containment completes.
    let region = contiguous_region(&graph, v(w + 1), p, dest);
    assert_eq!(region.len(), p, "grid must fit a size-{p} region");
    for &node in &region {
        sim.inject_route(node, Distance::ZERO, node);
        let neighbors: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
        for k in neighbors {
            sim.poison_mirror(k, node, Distance::ZERO);
        }
    }

    // Drive in slices until the control plane, the packet lane and every
    // Go-Back-N flow drain (`run_to_quiescence` would settle-skip past
    // queued data-plane events).
    workload.ensure_scheduled(sim.engine_mut(), f64::INFINITY);
    loop {
        let drained = !sim.engine().any_enabled_non_maintenance()
            && sim.engine().inflight_messages() == 0
            && sim.engine().packets_in_flight() == 0
            && sim.engine().flows_active() == 0;
        if drained {
            break;
        }
        let next = sim
            .engine()
            .next_event_time()
            .expect("undrained planes imply pending events");
        sim.run_until(next.seconds() + 50.0);
        avail.observe(&mut sim);
    }
    avail.observe(&mut sim);
    assert!(sim.routes_correct(), "LSRP must recover from the hijack");
    let counts = sim.stats().traffic;
    assert_eq!(
        counts.completed(),
        counts.injected,
        "packet conservation must hold at drain"
    );
    assert_eq!(sim.engine().packets_in_flight_weight(), 0);
    avail.finish(counts, sim.stats().congestion)
}

/// E21 table: goodput, queue pressure and flow completion times as the
/// perturbation grows, at fixed network size and fixed offered load.
pub fn e21_congested_recovery(w: u32, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        format!(
            "E21 — congestion lane: Go-Back-N goodput while LSRP repair waves race hotspot congestion (grid {w}x{w}, finite-rate links, bounded drop-tail queues, AIMD flows, size-p prefix-hijack)"
        ),
        &[
            "perturbation p",
            "goodput fraction",
            "queue drops",
            "blackholed",
            "peak queue depth",
            "retransmitted",
            "flow timeouts",
            "mean FCT",
            "max FCT",
        ],
    );
    for &p in sizes {
        let s = congested_recovery_run(w, p, 11);
        t.row(&[
            p.to_string(),
            format!("{:.4}", s.goodput_fraction()),
            s.counts.queue_dropped.to_string(),
            s.counts.black_holed.to_string(),
            s.congestion.peak_port_occupancy.to_string(),
            s.congestion.flow_retransmit_weight.to_string(),
            s.congestion.flow_timeouts.to_string(),
            format!("{:.1}", s.mean_fct),
            format!("{:.1}", s.max_fct),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_recovers_after_convergence() {
        // The ISSUE acceptance gate: a hotspot workload saturates a
        // bounded queue during a size-p perturbation, and Go-Back-N
        // recovers >= 90% weighted goodput once the control plane
        // converges (here: all of it, since no endpoint dies).
        let s = congested_recovery_run(8, 4, 3);
        assert!(s.counts.injected > 0);
        assert!(
            s.goodput_fraction() >= 0.9,
            "goodput must recover: {}",
            s.goodput_fraction()
        );
        assert_eq!(s.flows_aborted, 0, "no endpoint died");
        assert!(s.flows_completed > 0);
        assert!(s.mean_fct > 0.0);
        assert!(
            s.counts.black_holed > 0,
            "the hijack must have eaten segments"
        );
        assert!(
            s.congestion.flow_retransmit_weight > 0,
            "recovery must go through retransmission"
        );
    }

    #[test]
    fn congestion_is_real_in_the_hotspot() {
        // The bounded queue must actually bind: positive peak occupancy
        // near capacity or queue drops under the hotspot load.
        let s = congested_recovery_run(8, 1, 7);
        assert!(s.congestion.peak_port_occupancy > 0);
        assert!(
            s.congestion.peak_port_occupancy <= 1_500,
            "queue bound invariant"
        );
    }
}
