//! The bench crate's [`BuiltinRunner`]: resolves `kind = "builtin"`
//! scenario ids to the hand-coded experiments (figure regenerations,
//! space-time timelines and sweeps whose fault choreography is not
//! expressible in the recovery/hijack schema) and renders the exact
//! text block the `experiments` binary prints for that id.

use std::fmt::Write as _;

use lsrp_scenario::{BuiltinRunner, ParamValue};

use crate::{figures, loops_exp, multi_exp, overhead, selfstab, waves};

/// Runs builtin experiment ids E1–E19 with scenario `[params]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct BenchRunner;

fn get<'a>(params: &'a [(String, ParamValue)], key: &str) -> Option<&'a ParamValue> {
    params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn int<T: TryFrom<i64>>(v: &ParamValue, key: &str) -> Result<T, String> {
    match v {
        ParamValue::Int(i) => {
            T::try_from(*i).map_err(|_| format!("[params] {key} = {i} is out of range"))
        }
        _ => Err(format!("[params] {key} must be an integer")),
    }
}

fn float(v: &ParamValue, key: &str) -> Result<f64, String> {
    match v {
        ParamValue::Float(x) => Ok(*x),
        #[allow(clippy::cast_precision_loss)]
        ParamValue::Int(i) => Ok(*i as f64),
        _ => Err(format!("[params] {key} must be a number")),
    }
}

fn take_int<T: TryFrom<i64>>(
    params: &[(String, ParamValue)],
    key: &str,
    default: T,
) -> Result<T, String> {
    get(params, key).map_or(Ok(default), |v| int(v, key))
}

fn take_int_list<T>(
    params: &[(String, ParamValue)],
    key: &str,
    default: &[T],
) -> Result<Vec<T>, String>
where
    T: TryFrom<i64> + Copy,
{
    match get(params, key) {
        None => Ok(default.to_vec()),
        Some(ParamValue::List(xs)) => xs.iter().map(|v| int(v, key)).collect(),
        Some(_) => Err(format!("[params] {key} must be a list of integers")),
    }
}

fn take_float_list(
    params: &[(String, ParamValue)],
    key: &str,
    default: &[f64],
) -> Result<Vec<f64>, String> {
    match get(params, key) {
        None => Ok(default.to_vec()),
        Some(ParamValue::List(xs)) => xs.iter().map(|v| float(v, key)).collect(),
        Some(_) => Err(format!("[params] {key} must be a list of numbers")),
    }
}

impl BuiltinRunner for BenchRunner {
    fn run(&self, id: &str, params: &[(String, ParamValue)]) -> Result<String, String> {
        let p = params;
        let out = match id {
            "e1" => {
                let (table, timelines) = figures::e1_e2_fig2_vs_fig5();
                let mut out = format!("{table}\n");
                for (title, tl) in timelines {
                    let _ = write!(out, "**{title}**\n\n```\n{tl}```\n\n");
                }
                let _ = writeln!(out, "{}", figures::e4b_dependent_sets());
                out
            }
            "e3" => {
                let (table, tl) = figures::e3_fig6();
                format!("{table}\n**LSRP timeline (d.v11 := 2)**\n\n```\n{tl}```\n\n")
            }
            "e4" => format!("{}\n", figures::e4_fig7()),
            "e5" => {
                let sizes: Vec<u32> = take_int_list(p, "sizes", &[16, 32, 64])?;
                let runs: u64 = take_int(p, "runs", 10)?;
                format!("{}\n", selfstab::e5_selfstab(&sizes, runs))
            }
            "e8" => {
                let width: u32 = take_int(p, "width", 14)?;
                let runs: u64 = take_int(p, "runs", 20)?;
                format!("{}\n", loops_exp::e8_loop_freedom(width, runs))
            }
            "e9" => {
                let loops: Vec<u32> = take_int_list(p, "loops", &[4, 8, 16, 32, 64])?;
                format!("{}\n", loops_exp::e9_loop_breakage(&loops))
            }
            "e11" => {
                let widths: Vec<u32> = take_int_list(p, "widths", &[8, 16, 24])?;
                let sizes: Vec<usize> = take_int_list(p, "sizes", &[2])?;
                format!("{}\n", overhead::e11_overhead(&widths, &sizes))
            }
            "e12" => {
                let ratios = take_float_list(p, "ratios", &[1.2, 1.5, 2.125, 4.0, 8.0])?;
                format!("{}\n", waves::e12_wave_ratio(&ratios))
            }
            "e15" => {
                let width: u32 = take_int(p, "width", 14)?;
                let runs: u64 = take_int(p, "runs", 30)?;
                format!("{}\n", loops_exp::e15_c2_ablation(width, runs))
            }
            "e17" => {
                let sizes: Vec<usize> = take_int_list(p, "sizes", &[1, 2, 4, 8, 16])?;
                format!("{}\n", waves::e17_containment_depth(&sizes))
            }
            "e19" => {
                let width: u32 = take_int(p, "width", 8)?;
                let trees: Vec<usize> = take_int_list(p, "trees", &[1, 4, 16, 64])?;
                format!("{}\n", multi_exp::e19_full_table(width, &trees))
            }
            other => {
                return Err(format!(
                    "unknown builtin experiment id '{other}' (the bench runner covers e1, e3, e4, e5, e7, e8, e9, e11, e12, e15, e17, e19)"
                ))
            }
        };
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_an_error() {
        let err = BenchRunner.run("e99", &[]).unwrap_err();
        assert!(err.contains("e99"), "{err}");
    }

    #[test]
    fn e4_matches_the_direct_call() {
        let text = BenchRunner.run("e4", &[]).unwrap();
        assert_eq!(text, format!("{}\n", figures::e4_fig7()));
    }

    #[test]
    fn params_override_defaults() {
        let params = vec![(
            "sizes".to_string(),
            ParamValue::List(vec![ParamValue::Int(1), ParamValue::Int(2)]),
        )];
        let text = BenchRunner.run("e17", &params).unwrap();
        assert_eq!(text, format!("{}\n", waves::e17_containment_depth(&[1, 2])));
    }
}
