//! E1–E4: the paper's worked figures as measured scenarios.

use std::collections::BTreeSet;

use lsrp_analysis::{measure_recovery, table::fmt_f64, timeline, RoutingSimulation, Table};
use lsrp_core::LsrpSimulationExt;
use lsrp_faults::FaultPlan;
use lsrp_graph::concepts::{Perturbation, TopologyChange};
use lsrp_graph::topologies::{
    fig1_route_table, fig7_dense, fig7_route_table, fig7_sparse, paper_fig1, v, FIG1_DESTINATION,
    FIG7_CUT, FIG7_DESTINATION,
};
use lsrp_graph::{Distance, NodeId};

use crate::build::{build, Protocol, ALL_PROTOCOLS};
use crate::HORIZON;

/// The Figure 2 / Figure 5 fault: `d.v9 := 1` with `v7`, `v8` having
/// learned the corrupted value.
fn corrupt_v9(sim: &mut dyn RoutingSimulation) {
    sim.corrupt_distance(v(9), Distance::Finite(1));
    sim.poison_mirror(v(7), v(9), Distance::Finite(1));
    sim.poison_mirror(v(8), v(9), Distance::Finite(1));
}

fn fig1_recovery(protocol: Protocol) -> (lsrp_analysis::RecoveryMetrics, String) {
    let mut sim = build(
        protocol,
        paper_fig1(),
        FIG1_DESTINATION,
        Some(fig1_route_table()),
        7,
    );
    let perturbed = BTreeSet::from([v(9)]);
    #[allow(clippy::redundant_closure)]
    let m = measure_recovery(sim.as_mut(), &perturbed, HORIZON, |s| corrupt_v9(s));
    let tl = timeline::render_timeline(sim.trace());
    (m, tl)
}

/// E1 + E2 (Figures 2 and 5): the same single-node corruption under DBF
/// (global propagation) and LSRP (ideal containment), plus DUAL.
pub fn e1_e2_fig2_vs_fig5() -> (Table, Vec<(String, String)>) {
    let mut t = Table::new(
        "E1/E2 — Figure 2 vs Figure 5: d.v9 := 1 on the Figure-1 network (perturbation size 1)",
        &[
            "protocol",
            "stabilization time",
            "contaminated nodes",
            "range",
            "actions",
            "messages",
            "routes correct",
        ],
    );
    let mut timelines = Vec::new();
    for p in ALL_PROTOCOLS {
        let (m, tl) = fig1_recovery(p);
        let contaminated = m
            .contaminated
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        t.row(&[
            m.protocol.to_string(),
            fmt_f64(m.stabilization_time),
            if contaminated.is_empty() {
                "(none)".to_string()
            } else {
                contaminated
            },
            m.contamination_range.to_string(),
            m.actions.to_string(),
            m.messages.to_string(),
            m.routes_correct.to_string(),
        ]);
        timelines.push((format!("{} timeline (d.v9 := 1)", m.protocol), tl));
    }
    (t, timelines)
}

/// E3 (Figure 6): the mistaken containment wave chased down by the
/// super-containment wave after `d.v11 := 2`.
pub fn e3_fig6() -> (Table, String) {
    let mut sim = build(
        Protocol::Lsrp,
        paper_fig1(),
        FIG1_DESTINATION,
        Some(fig1_route_table()),
        7,
    );
    let perturbed = BTreeSet::from([v(11)]);
    let m = measure_recovery(sim.as_mut(), &perturbed, HORIZON, |s| {
        s.corrupt_distance(v(11), Distance::Finite(2));
        s.poison_mirror(v(13), v(11), Distance::Finite(2));
    });
    let mut t = Table::new(
        "E3 — Figure 6: d.v11 := 2, mistaken containment at v13 super-contained",
        &["metric", "value", "paper"],
    );
    t.row(&[
        "acting nodes".to_string(),
        format!(
            "{} + perturbed v11",
            m.contaminated
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        ),
        "v13, v9 (+ v11)".to_string(),
    ]);
    t.row(&[
        "range of contamination".to_string(),
        m.contamination_range.to_string(),
        "2 hops".to_string(),
    ]);
    t.row(&[
        "stabilization time".to_string(),
        fmt_f64(m.stabilization_time),
        "2hd_C + 3u + 2hd_SC = 21".to_string(),
    ]);
    t.row(&[
        "settle time".to_string(),
        fmt_f64(m.settle_time),
        "2hd_C + 4u + 2hd_SC = 22".to_string(),
    ]);
    t.row(&[
        "routes correct".to_string(),
        m.routes_correct.to_string(),
        "yes".to_string(),
    ]);
    (t, timeline::render_timeline(sim.trace()))
}

/// E4 (Figure 7 / Proposition 1): higher edge density reduces perturbation
/// size and range of contamination.
pub fn e4_fig7() -> Table {
    let mut t = Table::new(
        "E4 — Figure 7 / Proposition 1: sparse vs dense (one extra edge)",
        &[
            "variant",
            "fail-stop of c: perturbation size",
            "corrupt d.c := true+1: contamination range",
            "stabilization time",
        ],
    );
    for (label, graph) in [("sparse", fig7_sparse()), ("dense (+1 edge)", fig7_dense())] {
        // Perturbation size of the fail-stop, per Definition 1.
        let plan = FaultPlan::new().with(lsrp_faults::Fault::FailNode(FIG7_CUT));
        let p = plan
            .perturbation(&graph, FIG7_DESTINATION, &fig7_route_table())
            .expect("valid fail-stop");

        // Contamination of the corrupted-large scenario under LSRP. The
        // paper says the sparse range "can be 3": that worst case needs
        // the mistaken containment wave to out-run the repair long enough,
        // i.e. a larger hd_S/hd_C ratio than the worked-example timing
        // (with hd_S = 17 the super-containment catches it at depth 2).
        let slow_repair = {
            let base = crate::build::paper_timing();
            base.with_hd_s(4.0 * base.hd_c)
        };
        let mut sim: Box<dyn RoutingSimulation> = Box::new(
            lsrp_core::LsrpSimulation::builder(graph.clone(), FIG7_DESTINATION)
                .initial_state(lsrp_core::InitialState::Table(fig7_route_table()))
                .timing(slow_repair)
                .seed(11)
                .build(),
        );
        let perturbed = BTreeSet::from([FIG7_CUT]);
        let m = measure_recovery(sim.as_mut(), &perturbed, HORIZON, |s| {
            // True distance of c is 3; corrupt one larger, everyone learns.
            s.corrupt_distance(FIG7_CUT, Distance::Finite(4));
            let neighbors: Vec<NodeId> = s.graph().neighbors(FIG7_CUT).map(|(k, _)| k).collect();
            for k in neighbors {
                s.poison_mirror(k, FIG7_CUT, Distance::Finite(4));
            }
        });
        assert!(m.routes_correct, "fig7 {label} must recover");
        t.row(&[
            label.to_string(),
            p.size().to_string(),
            m.contamination_range.to_string(),
            fmt_f64(m.stabilization_time),
        ]);
    }
    t
}

/// The dependent-set examples of §III-A on the Figure-1 network (the
/// perturbation-size table).
pub fn e4b_dependent_sets() -> Table {
    let g = paper_fig1();
    let table = fig1_route_table();
    let mut t = Table::new(
        "§III-A — perturbation sizes on the Figure-1 network",
        &["fault", "perturbed set", "size", "paper"],
    );
    let show = |p: &Perturbation| {
        p.perturbed_nodes()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    };
    let cases: Vec<(&str, Perturbation, &str)> = vec![
        (
            "corrupt v9's state",
            Perturbation::corruption([v(9)]),
            "{v9}, size 1",
        ),
        (
            "fail-stop v9",
            {
                let mut after = g.clone();
                after.remove_node(v(9)).expect("v9 exists");
                Perturbation::topology(
                    &TopologyChange::new(g.clone(), after),
                    FIG1_DESTINATION,
                    &table,
                )
            },
            "{v7, v8, v10}, size 3",
        ),
        (
            "join edge (v2, v9)",
            {
                let mut after = g.clone();
                after.add_edge(v(2), v(9), 1).expect("edge is new");
                Perturbation::topology(&TopologyChange::new(g, after), FIG1_DESTINATION, &table)
            },
            "{v9, v7, v8, v6, v1, v10, v3}, size 7",
        ),
    ];
    for (name, p, paper) in cases {
        t.row(&[
            name.to_string(),
            show(&p),
            p.size().to_string(),
            paper.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_e2_shapes_hold() {
        let (t, timelines) = e1_e2_fig2_vs_fig5();
        assert_eq!(t.len(), ALL_PROTOCOLS.len());
        assert_eq!(timelines.len(), ALL_PROTOCOLS.len());
        let rendered = t.to_string();
        // LSRP contains ideally; DBF contaminates 6 nodes to range 2.
        assert!(rendered.contains("LSRP"));
        assert!(rendered.contains("(none)"));
    }

    #[test]
    fn e3_matches_paper_numbers() {
        let (t, tl) = e3_fig6();
        let s = t.to_string();
        assert!(s.contains("| 2 "), "range 2 expected: {s}");
        assert!(tl.contains("C1@8"));
        assert!(tl.contains("SC@21"));
    }

    #[test]
    fn e4_four_versus_three_and_three_versus_one() {
        let t = e4_fig7().to_string();
        assert!(t.contains("| 4 "), "sparse perturbation 4: {t}");
        assert!(
            t.contains("| 3 "),
            "dense perturbation 3 / sparse range 3: {t}"
        );
    }

    #[test]
    fn dependent_set_table_matches_paper() {
        let t = e4b_dependent_sets().to_string();
        assert!(t.contains("v7 v8 v10"));
        assert!(t.contains("size 7"));
    }
}
