//! E8 (Theorem 3) and E9 (Theorem 4 / Corollary 3): loop freedom during
//! stabilization and constant-time breakage of corrupted-in loops.

use lsrp_analysis::loops::inject_and_measure;
use lsrp_analysis::{measure_loop_breakage, table::fmt_f64, RoutingSimulation, Table};
use lsrp_core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp_graph::{generators, Distance, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::build::{build, Protocol, ALL_PROTOCOLS};
use crate::HORIZON;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// One E8 run: random distance/ghost corruption of a legitimate state on a
/// random graph, stepped event-by-event while watching for routing loops.
/// Returns (loop episodes, longest episode seconds).
pub fn loop_watch_run(protocol: Protocol, n: u32, seed: u64) -> (u32, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::connected_erdos_renyi(n, 0.1, 3, &mut rng);
    let dest = v(0);
    let mut sim: Box<dyn RoutingSimulation> = match protocol {
        Protocol::Lsrp => {
            // Strict loop freedom configuration (DESIGN.md §5).
            let timing = TimingConfig::paper_example(1.0).with_strict_loop_freedom(1.0, 1.0);
            Box::new(
                LsrpSimulation::builder(graph.clone(), dest)
                    .timing(timing)
                    .initial_state(InitialState::Legitimate)
                    .seed(seed)
                    .build(),
            )
        }
        _ => build(protocol, graph.clone(), dest, None, seed),
    };
    // Corrupt half the nodes' distances; poison neighborhood mirrors.
    let max_d = u64::from(n) * 2;
    let nodes: Vec<NodeId> = graph.nodes().filter(|&x| x != dest).collect();
    for &node in &nodes {
        if rng.gen_bool(0.5) {
            let d = if rng.gen_bool(0.1) {
                Distance::Infinite
            } else {
                Distance::Finite(rng.gen_range(0..max_d))
            };
            sim.corrupt_distance(node, d);
            if d.is_infinite() {
                // Keep the protocol's d = ∞ ⟹ p = self invariant: a
                // dangling parent on a routeless node is parent
                // corruption, which E15 covers separately.
                sim.inject_route(node, d, node);
            }
            let neighbors: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
            for k in neighbors {
                sim.poison_mirror(k, node, d);
            }
        }
    }
    let b = measure_loop_breakage(sim.as_mut(), HORIZON);
    assert!(
        b.converged,
        "{protocol:?} n={n} seed={seed} did not converge"
    );
    (b.episodes, b.longest_episode)
}

/// E8 table: loop episodes during stabilization across many random
/// corruptions.
pub fn e8_loop_freedom(n: u32, runs: u64) -> Table {
    let mut t = Table::new(
        "E8 — Theorem 3: routing-loop episodes while recovering from distance corruption",
        &[
            "protocol",
            "runs",
            "runs with any loop",
            "total episodes",
            "longest episode",
        ],
    );
    for protocol in ALL_PROTOCOLS {
        let mut with_loop = 0u64;
        let mut episodes = 0u64;
        let mut longest: f64 = 0.0;
        for s in 0..runs {
            let (e, l) = loop_watch_run(protocol, n, 300 + s);
            if e > 0 {
                with_loop += 1;
            }
            episodes += u64::from(e);
            longest = longest.max(l);
        }
        t.row(&[
            format!("{protocol:?}"),
            runs.to_string(),
            with_loop.to_string(),
            episodes.to_string(),
            fmt_f64(longest),
        ]);
    }
    t
}

/// One E9 run: inject a loop of length `loop_len` on a lollipop topology
/// and measure how long it survives.
///
/// The injected distances start at 1 — *attractive* values, the hard case:
/// plain distance-vector must count up past the true route (whose length
/// grows with `L`) before the loop dissolves, and DUAL must walk a
/// diffusing computation around it; LSRP breaks it by containment in
/// constant time.
pub fn loop_breakage_run(protocol: Protocol, loop_len: u32, seed: u64) -> f64 {
    let graph = generators::lollipop(2, loop_len, 1);
    let mut ring = generators::lollipop_ring(2, loop_len);
    // Rotate so the assignment's seam — the one node whose value is
    // locally inconsistent, holding the minimal (= feasible-distance)
    // value — lands on the attachment node. Its fd of 1 blocks the escape
    // through the tail under DUAL's feasibility check, forcing the
    // diffusing computation to walk the whole ring.
    ring.rotate_left(1);
    let mut sim = build(protocol, graph, v(0), None, seed);
    let b = inject_and_measure(sim.as_mut(), &ring, 1, HORIZON);
    assert!(
        b.loop_injected,
        "{protocol:?} L={loop_len}: no loop injected"
    );
    b.broken_after.unwrap_or(f64::INFINITY)
}

/// E9 table: loop breakage time vs loop length.
pub fn e9_loop_breakage(lengths: &[u32]) -> Table {
    let mut t = Table::new(
        "E9 — Theorem 4 / Corollary 3: time to break a corrupted-in loop of length L",
        &["protocol", "L", "breakage time", "O(hd_S + d) bound"],
    );
    for protocol in ALL_PROTOCOLS {
        for &l in lengths {
            let time = loop_breakage_run(protocol, l, 77);
            let bound = if protocol == Protocol::Lsrp {
                fmt_f64(17.0 + 1.0)
            } else {
                "-".to_string()
            };
            t.row(&[format!("{protocol:?}"), l.to_string(), fmt_f64(time), bound]);
        }
    }
    t
}

/// One adversarial-corruption run for the `hd_c2` ablation: random
/// distances *and parent pointers* corrupted across half the nodes
/// (loop-free initially, consistent mirrors), stepped with per-event loop
/// checks. Returns (episodes, longest episode).
pub fn adversarial_run(n: u32, seed: u64, strict: bool) -> (u32, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generators::connected_erdos_renyi(n, 0.1, 3, &mut rng);
    let dest = v(0);
    let mut table = lsrp_graph::RouteTable::legitimate(&graph, dest);
    for node in graph.nodes() {
        if rng.gen_bool(0.5) {
            let neighbors: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
            let p = neighbors[rng.gen_range(0..neighbors.len())];
            let d = if rng.gen_bool(0.1) {
                Distance::Infinite
            } else {
                Distance::Finite(rng.gen_range(0..2 * u64::from(n)))
            };
            table.insert(node, lsrp_graph::RouteEntry::new(d, p));
        }
    }
    for cycle in table.find_routing_loops(dest) {
        let fix = *cycle.iter().next().unwrap();
        let d = table.entry(fix).unwrap().distance;
        table.insert(fix, lsrp_graph::RouteEntry::new(d, fix));
    }
    let timing = if strict {
        TimingConfig::paper_example(1.0).with_strict_loop_freedom(1.0, 1.0)
    } else {
        TimingConfig::paper_example(1.0) // hd_c2 = 0, paper-literal
    };
    let mut sim = LsrpSimulation::builder(graph, dest)
        .initial_state(InitialState::Table(table))
        .timing(timing)
        .seed(seed)
        .build();
    let b = measure_loop_breakage(&mut sim as &mut dyn RoutingSimulation, HORIZON);
    assert!(b.converged, "seed {seed} strict={strict} did not converge");
    (b.episodes, b.longest_episode)
}

/// E15 (ablation, DESIGN.md §5): loop incidence under adversarial
/// parent-pointer corruption with the paper-literal zero `C2` hold versus
/// the strict-loop-freedom hold `hd_c2 > rho * d_max`.
pub fn e15_c2_ablation(n: u32, runs: u64) -> Table {
    let mut t = Table::new(
        "E15 — ablation: C2 hold (hd_c2) vs transient loops under adversarial parent corruption",
        &[
            "configuration",
            "runs",
            "runs with any loop",
            "total episodes",
            "longest episode",
        ],
    );
    for (label, strict) in [
        ("paper-literal (hd_c2 = 0)", false),
        ("strict (hd_c2 = 1.25)", true),
    ] {
        let mut with_loop = 0u64;
        let mut episodes = 0u64;
        let mut longest: f64 = 0.0;
        for s in 0..runs {
            let (e, l) = adversarial_run(n, 40_000 + s, strict);
            if e > 0 {
                with_loop += 1;
            }
            episodes += u64::from(e);
            longest = longest.max(l);
        }
        t.row(&[
            label.to_string(),
            runs.to_string(),
            with_loop.to_string(),
            episodes.to_string(),
            fmt_f64(longest),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsrp_has_no_loop_episodes() {
        for s in 0..3 {
            let (episodes, _) = loop_watch_run(Protocol::Lsrp, 12, 500 + s);
            assert_eq!(episodes, 0, "seed {s}");
        }
    }

    #[test]
    fn lsrp_breakage_is_constant_dual_grows() {
        let l_small = loop_breakage_run(Protocol::Lsrp, 4, 1);
        let l_large = loop_breakage_run(Protocol::Lsrp, 16, 1);
        assert!(
            l_small <= 18.001 && l_large <= 18.001,
            "{l_small} {l_large}"
        );
        // The paper's claim targets the loop-free DV protocols: DUAL's
        // diffusing computation walks the loop, so breakage grows with L.
        let d_small = loop_breakage_run(Protocol::Dual, 4, 1);
        let d_large = loop_breakage_run(Protocol::Dual, 16, 1);
        assert!(
            d_large > d_small * 1.5,
            "DUAL breakage should grow with L: {d_small} -> {d_large}"
        );
    }
}
