//! E13 (extension of §III-B's availability claim): forwarding-plane
//! availability during recovery, and E14: robustness of the containment
//! shape under the full asynchronous model (jittered delays, drifting
//! clocks).

use lsrp_analysis::forwarding::measure_availability;
use lsrp_analysis::{measure_recovery, table::fmt_f64, RoutingSimulation, Table};
use lsrp_baselines::{
    BaselineSimulation, DbfConfig, DbfSimulation, DualConfig, DualSimulation, PvConfig,
    PvSimulation,
};
use lsrp_core::{LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp_faults::corruption::contiguous_region;
use lsrp_graph::{generators, Distance, NodeId};
use lsrp_sim::{ClockConfig, EngineConfig, LinkConfig};

use crate::build::{build, Protocol, ALL_PROTOCOLS};
use crate::HORIZON;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// One availability run: a *prefix-hijack black hole* — a region of `p`
/// nodes near the destination claims `(d, p) := (0, self)`, i.e. "I am the
/// destination", dropping all transit traffic — with the neighborhood
/// having learned the bogus advertisement. Forwarding availability is
/// sampled every simulated second until recovery completes.
pub fn availability_run(
    protocol: Protocol,
    w: u32,
    p: usize,
    seed: u64,
) -> lsrp_analysis::AvailabilityTrace {
    let graph = generators::grid(w, w, 1);
    let dest = v(0);
    let region = contiguous_region(&graph, v(w + 1), p, dest);
    let mut sim = build(protocol, graph.clone(), dest, None, seed);
    sim.reset_trace();
    for &node in &region {
        sim.inject_route(node, Distance::ZERO, node);
        let ns: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
        for k in ns {
            sim.poison_mirror(k, node, Distance::ZERO);
        }
    }
    let trace = measure_availability(sim.as_mut(), HORIZON, 1.0);
    assert!(sim.routes_correct(), "{protocol:?} did not recover");
    trace
}

/// E13 table: availability statistics during recovery.
pub fn e13_availability(w: u32, p: usize) -> Table {
    let mut t = Table::new(
        format!(
            "E13 — forwarding availability while recovering from a size-{p} prefix-hijack black hole (grid {w}x{w})"
        ),
        &[
            "protocol",
            "min availability",
            "degraded seconds",
            "availability-seconds lost",
        ],
    );
    for protocol in ALL_PROTOCOLS {
        let a = availability_run(protocol, w, p, 3);
        t.row(&[
            format!("{protocol:?}"),
            format!("{:.3}", a.min),
            fmt_f64(a.degraded_time),
            format!("{:.1}", a.lost),
        ]);
    }
    t
}

/// One E14 run: the E6 scaling cell under jittered link delays and
/// adversarial (alternating) clock drift, with hold times re-derived for
/// the harsher model via [`TimingConfig::for_network`].
pub fn robustness_run(
    protocol: Protocol,
    w: u32,
    p: usize,
    seed: u64,
) -> lsrp_analysis::RecoveryMetrics {
    let rho = 1.5;
    let link = LinkConfig::jittered(0.5, 1.5);
    let engine = EngineConfig::default()
        .with_seed(seed)
        .with_link(link)
        .with_clocks(ClockConfig::Alternating { rho });
    let timing = TimingConfig::for_network(rho, link.delay_max);
    let graph = generators::grid(w, w, 1);
    let dest = v(0);
    let mut sim: Box<dyn RoutingSimulation> = match protocol {
        Protocol::Lsrp => Box::new(
            LsrpSimulation::builder(graph.clone(), dest)
                .timing(timing)
                .engine_config(engine)
                .build(),
        ),
        Protocol::Dbf => Box::new(DbfSimulation::new(
            graph.clone(),
            dest,
            None,
            DbfConfig {
                hold: timing.hd_s,
                ..DbfConfig::default()
            },
            engine,
        )),
        Protocol::Dual => Box::new(DualSimulation::new(
            graph.clone(),
            dest,
            None,
            DualConfig {
                hold: timing.hd_s,
                ..DualConfig::default()
            },
            engine,
        )),
        Protocol::Pv => Box::new(PvSimulation::new(
            graph.clone(),
            dest,
            None,
            PvConfig {
                hold: timing.hd_s,
                ..PvConfig::default()
            },
            engine,
        )),
    };
    let region = contiguous_region(&graph, v(w + 1), p, dest);
    measure_recovery(sim.as_mut(), &region, HORIZON, |s| {
        for &node in &region {
            s.corrupt_distance(node, Distance::ZERO);
            let ns: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
            for k in ns {
                s.poison_mirror(k, node, Distance::ZERO);
            }
        }
    })
}

/// E14 table: containment under the full asynchronous model.
pub fn e14_robustness(w: u32, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        format!(
            "E14 — containment under jittered delays (d ∈ [0.5, 1.5]) and clock drift (rho = 1.5), grid {w}x{w}"
        ),
        &[
            "protocol",
            "perturbation p",
            "stabilization time",
            "contamination range",
            "contaminated nodes",
            "routes correct",
        ],
    );
    for protocol in ALL_PROTOCOLS {
        for &p in sizes {
            let m = robustness_run(protocol, w, p, 21);
            t.row(&[
                m.protocol.to_string(),
                p.to_string(),
                fmt_f64(m.stabilization_time),
                m.contamination_range.to_string(),
                m.contaminated.len().to_string(),
                m.routes_correct.to_string(),
            ]);
        }
    }
    t
}

/// One E18 run: recovery from a size-`p` black hole under lossy links —
/// an ablation of the paper's reliable-channel assumption. LSRP needs the
/// periodic `SYN` refresh to tolerate loss (a lost broadcast is
/// re-advertised within one period).
pub fn lossy_run(loss: f64, w: u32, p: usize, seed: u64) -> lsrp_analysis::RecoveryMetrics {
    let engine = EngineConfig::default()
        .with_seed(seed)
        .with_link(LinkConfig::constant(1.0).with_loss(loss));
    let timing = TimingConfig::paper_example(1.0).with_syn_period(5.0);
    let graph = generators::grid(w, w, 1);
    let dest = v(0);
    let mut sim = LsrpSimulation::builder(graph.clone(), dest)
        .timing(timing)
        .engine_config(engine)
        .build();
    let region = contiguous_region(&graph, v(w + 1), p, dest);
    measure_recovery(
        &mut sim as &mut dyn RoutingSimulation,
        &region,
        HORIZON,
        |s| {
            for &node in &region {
                s.corrupt_distance(node, Distance::ZERO);
                let ns: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
                for k in ns {
                    s.poison_mirror(k, node, Distance::ZERO);
                }
            }
        },
    )
}

/// E18 table: LSRP recovery under message loss.
pub fn e18_message_loss(rates: &[f64]) -> Table {
    let mut t = Table::new(
        "E18 — ablation of the reliable-link assumption: LSRP + SYN(5) under message loss (grid 10x10, p = 2)",
        &[
            "loss rate",
            "stabilization time",
            "contamination range",
            "protocol actions",
            "routes correct",
        ],
    );
    for &loss in rates {
        let m = lossy_run(loss, 10, 2, 5);
        t.row(&[
            format!("{:.0}%", loss * 100.0),
            fmt_f64(m.stabilization_time),
            m.contamination_range.to_string(),
            m.actions.to_string(),
            m.routes_correct.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsrp_stays_nearly_fully_available() {
        let lsrp = availability_run(Protocol::Lsrp, 10, 2, 1);
        let dbf = availability_run(Protocol::Dbf, 10, 2, 1);
        assert!(
            lsrp.min >= dbf.min,
            "LSRP min {} vs DBF min {}",
            lsrp.min,
            dbf.min
        );
        assert!(lsrp.degraded_time < dbf.degraded_time);
        assert_eq!(lsrp.samples.last().unwrap().1, 1.0);
        assert_eq!(dbf.samples.last().unwrap().1, 1.0);
    }

    #[test]
    fn lsrp_recovers_under_ten_percent_loss() {
        let m = lossy_run(0.10, 8, 2, 9);
        assert!(m.quiescent && m.routes_correct, "{m:?}");
    }

    #[test]
    fn containment_survives_drift_and_jitter() {
        let m = robustness_run(Protocol::Lsrp, 10, 2, 5);
        assert!(m.quiescent && m.routes_correct);
        assert!(
            m.contaminated.len() <= 10,
            "containment lost under drift: {:?}",
            m.contaminated
        );
    }
}
