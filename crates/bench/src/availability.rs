//! E13 (extension of §III-B's availability claim): forwarding-plane
//! availability during recovery, E14: robustness of the containment
//! shape under the full asynchronous model (jittered delays, drifting
//! clocks), and E18: the reliable-link ablation.
//!
//! The tables are wrappers over the checked-in scenario files
//! (`scenarios/e13_availability.toml`, `e14_robustness.toml`,
//! `e18_message_loss.toml`); the cell functions delegate to
//! `lsrp_scenario::cells` so `lsrp run` on the same files is
//! byte-identical.

use lsrp_analysis::Table;
use lsrp_scenario::cells::{
    recovery_cell, snapshot_hijack_cell, EngineModel, RecoveryCellSpec, RegionFault,
};
use lsrp_scenario::schema::{ScenarioBody, SweepValue};
use lsrp_scenario::{run_scenario, ExecOptions};

use crate::build::Protocol;
use crate::scaling::load_scenario;

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One availability run: a *prefix-hijack black hole* — a region of `p`
/// nodes near the destination claims `(d, p) := (0, self)`, i.e. "I am the
/// destination", dropping all transit traffic — with the neighborhood
/// having learned the bogus advertisement. Forwarding availability is
/// sampled every simulated second until recovery completes.
pub fn availability_run(
    protocol: Protocol,
    w: u32,
    p: usize,
    seed: u64,
) -> lsrp_analysis::AvailabilityTrace {
    snapshot_hijack_cell(protocol, w, p, seed, 1.0)
}

/// E13 table: availability statistics during recovery.
pub fn e13_availability(w: u32, p: usize) -> Table {
    let mut s = load_scenario(include_str!("../../../scenarios/e13_availability.toml"));
    if let ScenarioBody::Hijack(h) = &mut s.body {
        h.width = w;
        h.p = Some(p);
    }
    run_scenario(&s, ExecOptions::sharded(default_jobs()))
        .expect("e13 scenario runs")
        .into_table()
}

/// One E14 run: the E6 scaling cell under jittered link delays and
/// adversarial (alternating) clock drift, with hold times re-derived for
/// the harsher model via `TimingConfig::for_network`.
pub fn robustness_run(
    protocol: Protocol,
    w: u32,
    p: usize,
    seed: u64,
) -> lsrp_analysis::RecoveryMetrics {
    recovery_cell(&RecoveryCellSpec {
        protocol,
        width: w,
        p,
        seed,
        fault: RegionFault::Blackhole,
        model: EngineModel::Harsh {
            jitter: (0.5, 1.5),
            rho: 1.5,
        },
    })
}

/// E14 table: containment under the full asynchronous model.
pub fn e14_robustness(w: u32, sizes: &[usize]) -> Table {
    let mut s = load_scenario(include_str!("../../../scenarios/e14_robustness.toml"));
    if let ScenarioBody::Recovery(r) = &mut s.body {
        r.width = Some(w);
        #[allow(clippy::cast_possible_wrap)]
        r.sweep.set_axis(
            "p",
            sizes.iter().map(|&p| SweepValue::Int(p as i64)).collect(),
        );
    }
    run_scenario(&s, ExecOptions::sharded(default_jobs()))
        .expect("e14 scenario runs")
        .into_table()
}

/// One E18 run: recovery from a size-`p` black hole under lossy links —
/// an ablation of the paper's reliable-channel assumption. LSRP needs the
/// periodic `SYN` refresh to tolerate loss (a lost broadcast is
/// re-advertised within one period).
pub fn lossy_run(loss: f64, w: u32, p: usize, seed: u64) -> lsrp_analysis::RecoveryMetrics {
    recovery_cell(&RecoveryCellSpec {
        protocol: Protocol::Lsrp,
        width: w,
        p,
        seed,
        fault: RegionFault::Blackhole,
        model: EngineModel::Lossy {
            loss,
            syn_period: 5.0,
        },
    })
}

/// E18 table: LSRP recovery under message loss.
pub fn e18_message_loss(rates: &[f64]) -> Table {
    let mut s = load_scenario(include_str!("../../../scenarios/e18_message_loss.toml"));
    if let ScenarioBody::Recovery(r) = &mut s.body {
        r.sweep.set_axis(
            "loss",
            rates.iter().map(|&x| SweepValue::Float(x)).collect(),
        );
    }
    run_scenario(&s, ExecOptions::sharded(default_jobs()))
        .expect("e18 scenario runs")
        .into_table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsrp_stays_nearly_fully_available() {
        let lsrp = availability_run(Protocol::Lsrp, 10, 2, 1);
        let dbf = availability_run(Protocol::Dbf, 10, 2, 1);
        assert!(
            lsrp.min >= dbf.min,
            "LSRP min {} vs DBF min {}",
            lsrp.min,
            dbf.min
        );
        assert!(lsrp.degraded_time < dbf.degraded_time);
        assert_eq!(lsrp.samples.last().unwrap().1, 1.0);
        assert_eq!(dbf.samples.last().unwrap().1, 1.0);
    }

    #[test]
    fn lsrp_recovers_under_ten_percent_loss() {
        let m = lossy_run(0.10, 8, 2, 9);
        assert!(m.quiescent && m.routes_correct, "{m:?}");
    }

    #[test]
    fn containment_survives_drift_and_jitter() {
        let m = robustness_run(Protocol::Lsrp, 10, 2, 5);
        assert!(m.quiescent && m.routes_correct);
        assert!(
            m.contaminated.len() <= 10,
            "containment lost under drift: {:?}",
            m.contaminated
        );
    }

    #[test]
    fn scenario_e13_is_byte_identical_to_the_legacy_loop() {
        use crate::build::ALL_PROTOCOLS;
        use lsrp_analysis::table::fmt_f64;
        let (w, p) = (10u32, 2usize);
        let mut t = Table::new(
            format!(
                "E13 — forwarding availability while recovering from a size-{p} prefix-hijack black hole (grid {w}x{w})"
            ),
            &[
                "protocol",
                "min availability",
                "degraded seconds",
                "availability-seconds lost",
            ],
        );
        for protocol in ALL_PROTOCOLS {
            let a = availability_run(protocol, w, p, 3);
            t.row(&[
                format!("{protocol:?}"),
                format!("{:.3}", a.min),
                fmt_f64(a.degraded_time),
                format!("{:.1}", a.lost),
            ]);
        }
        assert_eq!(t.to_string(), e13_availability(w, p).to_string());
    }
}
