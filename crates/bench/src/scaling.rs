//! E6 (Theorem 2 / Lemma 1): stabilization time and contamination range
//! scale with the perturbation size, not the network size — and E10
//! (Corollary 4 / Theorem 5): recurring faults stay contained.
//!
//! The sweep tables are thin wrappers over the checked-in scenario
//! files (`scenarios/e6_scaling.toml` and friends): the wrapper loads
//! the scenario, narrows its sweep axes to the caller's arguments and
//! runs it through the campaign compiler — so `lsrp run` on the same
//! file produces byte-identical output.

use lsrp_analysis::{RecoveryMetrics, Table};
use lsrp_scenario::cells::{recovery_cell, EngineModel, RecoveryCellSpec, RegionFault};
use lsrp_scenario::schema::{Scenario, ScenarioBody, SweepValue};
use lsrp_scenario::{load_str, run_scenario, DestinationsSpec, ExecOptions};

pub use lsrp_scenario::cells::apply_plan_generic;

use crate::build::Protocol;

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub(crate) fn load_scenario(src: &str) -> Scenario {
    load_str(src).expect("checked-in scenario file parses")
}

/// Runs one (protocol, grid width, perturbation size) cell: a contiguous
/// region near the destination corner is corrupted small (worst case) with
/// poisoned neighborhood mirrors.
pub fn scaling_cell(protocol: Protocol, width: u32, p: usize, seed: u64) -> RecoveryMetrics {
    recovery_cell(&RecoveryCellSpec {
        protocol,
        width,
        p,
        seed,
        fault: RegionFault::CorruptPlan,
        model: EngineModel::Ideal,
    })
}

/// E6 headline table: sweep perturbation size at fixed network size, and
/// network size at fixed perturbation size.
///
/// Every `(protocol, width, p)` cell is a pure function of its inputs, so
/// the sweep fans out over worker threads and merges back in cell order —
/// the table is byte-identical to the serial sweep.
pub fn e6_scaling(widths: &[u32], sizes: &[usize]) -> Table {
    let mut s = load_scenario(include_str!("../../../scenarios/e6_scaling.toml"));
    if let ScenarioBody::Recovery(r) = &mut s.body {
        r.sweep.set_axis(
            "width",
            widths
                .iter()
                .map(|&w| SweepValue::Int(i64::from(w)))
                .collect(),
        );
        #[allow(clippy::cast_possible_wrap)]
        r.sweep.set_axis(
            "p",
            sizes.iter().map(|&p| SweepValue::Int(p as i64)).collect(),
        );
    }
    run_scenario(&s, ExecOptions::sharded(default_jobs()))
        .expect("e6 scenario runs")
        .into_table()
}

/// E6 on the dense multi-destination plane: the perturbation-size sweep
/// with every node running one LSRP instance per destination over the
/// batched wire. `dests` of `None` means all-pairs (one tree per node).
///
/// Cells are pure functions of their inputs and fan out over `jobs`
/// worker threads; results merge back in cell order, so the table is
/// byte-identical for every `jobs` value.
pub fn e6_scaling_multi(
    widths: &[u32],
    sizes: &[usize],
    dests: Option<usize>,
    jobs: usize,
) -> Table {
    let mut s = load_scenario(include_str!("../../../scenarios/e6_multi.toml"));
    if let ScenarioBody::Recovery(r) = &mut s.body {
        r.destinations = match dests {
            None => Some(DestinationsSpec::AllPairs),
            Some(n) => Some(DestinationsSpec::Count(
                u32::try_from(n).expect("destination count fits u32"),
            )),
        };
        r.sweep.set_axis(
            "width",
            widths
                .iter()
                .map(|&w| SweepValue::Int(i64::from(w)))
                .collect(),
        );
        #[allow(clippy::cast_possible_wrap)]
        r.sweep.set_axis(
            "p",
            sizes.iter().map(|&p| SweepValue::Int(p as i64)).collect(),
        );
    }
    run_scenario(&s, ExecOptions::sharded(jobs))
        .expect("e6 multi scenario runs")
        .into_table()
}

/// E16 — route stability (§I, §IV-B): next-hop flaps at *healthy* nodes
/// during recovery. The paper singles out route flapping as "a severe
/// kind of routing instability" that fault propagation causes; LSRP's
/// containment keeps healthy nodes' routes pinned.
pub fn e16_route_stability(width: u32, sizes: &[usize]) -> Table {
    let mut s = load_scenario(include_str!("../../../scenarios/e16_route_stability.toml"));
    if let ScenarioBody::Recovery(r) = &mut s.body {
        r.width = Some(width);
        #[allow(clippy::cast_possible_wrap)]
        r.sweep.set_axis(
            "p",
            sizes.iter().map(|&p| SweepValue::Int(p as i64)).collect(),
        );
    }
    run_scenario(&s, ExecOptions::sharded(default_jobs()))
        .expect("e16 scenario runs")
        .into_table()
}

/// E10 — Corollary 4 / Theorem 5: a fault recurring with a sufficiently
/// large interval stays locally contained; contamination is measured over
/// the *whole* multi-occurrence run. A thin wrapper over
/// `scenarios/e10_continuous.toml` with its period axis narrowed.
pub fn e10_continuous(intervals: &[f64]) -> Table {
    let mut s = load_scenario(include_str!("../../../scenarios/e10_continuous.toml"));
    if let ScenarioBody::Recovery(r) = &mut s.body {
        r.sweep.set_axis(
            "period",
            intervals.iter().map(|&x| SweepValue::Float(x)).collect(),
        );
    }
    run_scenario(&s, ExecOptions::sharded(default_jobs()))
        .expect("e10 scenario runs")
        .into_table()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ALL_PROTOCOLS;
    use lsrp_analysis::{measure_recovery, table::fmt_f64};
    use lsrp_faults::corruption::contiguous_region;
    use lsrp_graph::{generators, Distance, NodeId};

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sharded_e6_sweep_is_reproducible() {
        // The sweep fans out over worker threads; the rendered table must
        // not depend on scheduling.
        let a = e6_scaling(&[6], &[1]).to_string();
        let b = e6_scaling(&[6], &[1]).to_string();
        assert_eq!(a, b);
        assert!(a.contains("LSRP"));
    }

    #[test]
    fn scenario_e6_is_byte_identical_to_the_legacy_loop() {
        // The hand-coded serial loop the scenario file replaced, inlined
        // verbatim: titles, headers, nesting order and formats.
        let widths = [6u32];
        let sizes = [1usize, 2];
        let mut t = Table::new(
            "E6 — Theorem 2: stabilization scales with perturbation size, not network size",
            &[
                "protocol",
                "n (grid)",
                "perturbation p",
                "stabilization time",
                "contamination range",
                "contaminated nodes",
                "messages",
            ],
        );
        for &protocol in &ALL_PROTOCOLS {
            for &w in &widths {
                for &p in &sizes {
                    let m = scaling_cell(protocol, w, p, 42 + u64::from(w));
                    assert!(m.quiescent && m.routes_correct, "{protocol:?} w={w} p={p}");
                    t.row(&[
                        m.protocol.to_string(),
                        format!("{}", w * w),
                        p.to_string(),
                        fmt_f64(m.stabilization_time),
                        m.contamination_range.to_string(),
                        m.contaminated.len().to_string(),
                        m.messages.to_string(),
                    ]);
                }
            }
        }
        assert_eq!(t.to_string(), e6_scaling(&widths, &sizes).to_string());
    }

    #[test]
    fn sharded_multi_e6_sweep_is_byte_identical_to_serial() {
        let serial = e6_scaling_multi(&[4], &[1, 2], Some(3), 1).to_string();
        for jobs in [2, 5] {
            let sharded = e6_scaling_multi(&[4], &[1, 2], Some(3), jobs).to_string();
            assert_eq!(serial, sharded, "jobs={jobs}");
        }
        assert!(serial.contains("destinations 3"), "{serial}");
    }

    #[test]
    fn multi_e6_all_pairs_runs_one_tree_per_node() {
        let t = e6_scaling_multi(&[3], &[1], None, 2).to_string();
        assert!(t.contains("all-pairs"), "{t}");
        // 3x3 grid, all-pairs: 9 destination trees.
        assert!(t.contains("| 9"), "{t}");
    }

    #[test]
    fn lsrp_containment_is_local_and_dbf_is_not() {
        // Deterministic worst case: both region nodes black-hole to 0 with
        // poisoned neighborhood (the random corruption draws of
        // `scaling_cell` can land on mild large/∞ values).
        let cell = |protocol| {
            let graph = generators::grid(10, 10, 1);
            let dest = v(0);
            let region = contiguous_region(&graph, v(11), 2, dest);
            let mut sim = crate::build::build(protocol, graph.clone(), dest, None, 1);
            measure_recovery(sim.as_mut(), &region, crate::HORIZON, |s| {
                for &node in &region {
                    s.corrupt_distance(node, Distance::ZERO);
                    let ns: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
                    for k in ns {
                        s.poison_mirror(k, node, Distance::ZERO);
                    }
                }
            })
        };
        let lsrp = cell(Protocol::Lsrp);
        let dbf = cell(Protocol::Dbf);
        assert!(lsrp.routes_correct && dbf.routes_correct);
        assert!(
            lsrp.contaminated.len() * 4 < dbf.contaminated.len(),
            "LSRP {} vs DBF {} contaminated",
            lsrp.contaminated.len(),
            dbf.contaminated.len()
        );
        assert!(lsrp.contamination_range < dbf.contamination_range);
    }

    #[test]
    fn lsrp_time_is_independent_of_network_size() {
        let small = scaling_cell(Protocol::Lsrp, 8, 2, 2);
        let large = scaling_cell(Protocol::Lsrp, 16, 2, 2);
        assert!(
            large.stabilization_time <= small.stabilization_time * 2.0 + 30.0,
            "LSRP should not scale with n: {} -> {}",
            small.stabilization_time,
            large.stabilization_time
        );
    }

    #[test]
    fn recurring_faults_stay_contained() {
        let t = e10_continuous(&[120.0]);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("true"));
    }
}
