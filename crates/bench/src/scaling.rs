//! E6 (Theorem 2 / Lemma 1): stabilization time and contamination range
//! scale with the perturbation size, not the network size — and E10
//! (Corollary 4 / Theorem 5): recurring faults stay contained.

use std::collections::BTreeSet;

use lsrp_analysis::{
    measure_recovery, run_sharded, table::fmt_f64, RecoveryMetrics, RoutingSimulation, Table,
};
use lsrp_core::{LsrpSimulation, LsrpSimulationExt};
use lsrp_faults::corruption::contiguous_region;
use lsrp_faults::{CorruptionKind, Fault, FaultPlan, RecurringFault};
use lsrp_graph::{generators, Distance, NodeId};
use lsrp_multi::{MultiLsrpSimulation, MultiLsrpSimulationExt};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::build::{build, Protocol, ALL_PROTOCOLS};
use crate::HORIZON;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Runs one (protocol, grid width, perturbation size) cell: a contiguous
/// region near the destination corner is corrupted small (worst case) with
/// poisoned neighborhood mirrors.
pub fn scaling_cell(protocol: Protocol, width: u32, p: usize, seed: u64) -> RecoveryMetrics {
    let graph = generators::grid(width, width, 1);
    let dest = v(0);
    // Seed the region at (1, 1): one hop into the grid, so most of the
    // network is "downstream" — the worst case for fault propagation.
    let seed_node = v(width + 1);
    let region = contiguous_region(&graph, seed_node, p, dest);
    assert_eq!(region.len(), p, "grid too small for p = {p}");
    let sp = lsrp_graph::shortest_path::ShortestPaths::dijkstra(&graph, dest);
    let mut sim = build(protocol, graph.clone(), dest, None, seed);
    let table = sim.route_table();
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = lsrp_faults::corruption::corrupt_region_plan(&graph, &region, &sp, &table, &mut rng);
    measure_recovery(sim.as_mut(), &region, HORIZON, |s| {
        apply_plan_generic(s, &plan);
    })
}

/// Applies the protocol-agnostic subset of a fault plan through the
/// [`RoutingSimulation`] interface.
pub fn apply_plan_generic(sim: &mut dyn RoutingSimulation, plan: &FaultPlan) {
    for f in &plan.faults {
        match f {
            Fault::Corrupt { node, kind } => match *kind {
                CorruptionKind::Distance(d) => sim.corrupt_distance(*node, d),
                CorruptionKind::Parent(p) => {
                    let d = sim
                        .route_table()
                        .entry(*node)
                        .map_or(Distance::Infinite, |e| e.distance);
                    sim.inject_route(*node, d, p);
                }
                CorruptionKind::MirrorOf { about, mirror } => {
                    sim.poison_mirror(*node, about, mirror.d);
                }
                CorruptionKind::Ghost(_) | CorruptionKind::Timestamp(_) => {
                    // LSRP-specific variables; no-ops for the baselines and
                    // unused by the generic experiments.
                }
            },
            Fault::FailNode(n) => sim.fail_node(*n).expect("node exists"),
            Fault::FailEdge(a, b) => sim.fail_edge(*a, *b).expect("edge exists"),
            Fault::JoinEdge(a, b, w) => sim.join_edge(*a, *b, *w).expect("edge is new"),
            Fault::SetWeight(a, b, w) => sim.set_weight(*a, *b, *w).expect("edge exists"),
            Fault::JoinNode { node, edges } => {
                // Best-effort: a rejoin can race earlier faults in the same
                // plan (a listed neighbor may itself have failed), so an
                // invalid join is skipped rather than aborting the plan.
                let _ = sim.join_node(*node, edges);
            }
        }
    }
}

/// E6 headline table: sweep perturbation size at fixed network size, and
/// network size at fixed perturbation size.
///
/// Every `(protocol, width, p)` cell is a pure function of its inputs, so
/// the sweep fans out over [`run_sharded`] worker threads and merges back
/// in cell order — the table is byte-identical to the serial sweep.
pub fn e6_scaling(widths: &[u32], sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E6 — Theorem 2: stabilization scales with perturbation size, not network size",
        &[
            "protocol",
            "n (grid)",
            "perturbation p",
            "stabilization time",
            "contamination range",
            "contaminated nodes",
            "messages",
        ],
    );
    let mut cells = Vec::new();
    for &protocol in &ALL_PROTOCOLS {
        for &w in widths {
            for &p in sizes {
                cells.push((protocol, w, p));
            }
        }
    }
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let results = {
        let cells = cells.clone();
        run_sharded(jobs, cells.len(), move |i| {
            let (protocol, w, p) = cells[i];
            scaling_cell(protocol, w, p, 42 + u64::from(w))
        })
    };
    for ((protocol, w, p), m) in cells.into_iter().zip(results) {
        assert!(m.quiescent && m.routes_correct, "{protocol:?} w={w} p={p}");
        t.row(&[
            m.protocol.to_string(),
            format!("{}", w * w),
            p.to_string(),
            fmt_f64(m.stabilization_time),
            m.contamination_range.to_string(),
            m.contaminated.len().to_string(),
            m.messages.to_string(),
        ]);
    }
    t
}

/// One multi-destination scaling cell on the dense plane: a contiguous
/// region of `p` nodes near the corner has *every* instance table
/// hijacked, and the run is judged on all `dests` trees at once.
///
/// Returns (stabilization time, messages delivered, adverts delivered,
/// acting nodes).
fn multi_scaling_cell(width: u32, p: usize, dests: usize, seed: u64) -> (f64, u64, u64, usize) {
    let graph = generators::grid(width, width, 1);
    let destinations: Vec<NodeId> = graph.nodes().take(dests).collect();
    let region = contiguous_region(&graph, v(width + 1), p, v(0));
    assert_eq!(region.len(), p, "grid too small for p = {p}");
    let mut sim = MultiLsrpSimulation::builder(graph, destinations)
        .seed(seed)
        .build();
    sim.engine_mut().reset_trace();
    let t0 = sim.now();
    for &node in &region {
        sim.corrupt_all_instances(node, |_| (Distance::ZERO, node));
    }
    let report = sim.run_to_quiescence(HORIZON);
    assert!(report.quiescent && sim.all_routes_correct());
    let trace = sim.engine().trace();
    let stab = trace
        .last_var_change_since(t0)
        .map_or(0.0, |t| t.seconds() - t0.seconds());
    let acting = trace.acted_nodes_since(t0).len();
    let stats = sim.engine().stats();
    (
        stab,
        stats.messages_delivered,
        stats.adverts_delivered,
        acting,
    )
}

/// E6 on the dense multi-destination plane: the perturbation-size sweep
/// with every node running one LSRP instance per destination over the
/// batched wire. `dests` of `None` means all-pairs (one tree per node).
///
/// Cells are pure functions of their inputs and fan out over `jobs`
/// worker threads via [`run_sharded`]; results merge back in cell order,
/// so the table is byte-identical for every `jobs` value.
pub fn e6_scaling_multi(
    widths: &[u32],
    sizes: &[usize],
    dests: Option<usize>,
    jobs: usize,
) -> Table {
    let label = dests.map_or_else(|| "all-pairs".to_string(), |n| n.to_string());
    let mut t = Table::new(
        format!("E6 (multi) — perturbation-size sweep, dense plane, destinations {label}"),
        &[
            "n (grid)",
            "destination trees",
            "perturbation p",
            "stabilization time",
            "messages delivered",
            "adverts delivered",
            "acting nodes",
        ],
    );
    let mut cells = Vec::new();
    for &w in widths {
        let trees = dests.unwrap_or((w * w) as usize).min((w * w) as usize);
        for &p in sizes {
            cells.push((w, p, trees));
        }
    }
    let results = {
        let cells = cells.clone();
        run_sharded(jobs, cells.len(), move |i| {
            let (w, p, trees) = cells[i];
            multi_scaling_cell(w, p, trees, 42 + u64::from(w))
        })
    };
    for ((w, p, trees), (stab, messages, adverts, acting)) in cells.into_iter().zip(results) {
        t.row(&[
            format!("{}", w * w),
            trees.to_string(),
            p.to_string(),
            fmt_f64(stab),
            messages.to_string(),
            adverts.to_string(),
            acting.to_string(),
        ]);
    }
    t
}

/// E16 — route stability (§I, §IV-B): next-hop flaps at *healthy* nodes
/// during recovery. The paper singles out route flapping as "a severe
/// kind of routing instability" that fault propagation causes; LSRP's
/// containment keeps healthy nodes' routes pinned.
pub fn e16_route_stability(width: u32, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        format!("E16 — route flaps at healthy nodes during recovery (grid {width}x{width})"),
        &[
            "protocol",
            "perturbation p",
            "healthy-node route flaps",
            "contaminated nodes",
        ],
    );
    for &protocol in &ALL_PROTOCOLS {
        for &p in sizes {
            let m = scaling_cell(protocol, width, p, 31);
            assert!(m.quiescent && m.routes_correct);
            t.row(&[
                m.protocol.to_string(),
                p.to_string(),
                m.healthy_route_flaps.to_string(),
                m.contaminated.len().to_string(),
            ]);
        }
    }
    t
}

/// E10 — Corollary 4 / Theorem 5: a fault recurring with a sufficiently
/// large interval stays locally contained; contamination is measured over
/// the *whole* multi-occurrence run.
pub fn e10_continuous(intervals: &[f64]) -> Table {
    let mut t = Table::new(
        "E10 — Corollary 4: recurring corruption (grid 12x12, p = 2, 5 occurrences)",
        &[
            "interval",
            "contamination range",
            "contaminated nodes",
            "routes correct at end",
        ],
    );
    for &interval in intervals {
        let graph = generators::grid(12, 12, 1);
        let dest = v(0);
        let region = contiguous_region(&graph, v(13), 2, dest);
        let mut sim = LsrpSimulation::builder(graph.clone(), dest)
            .timing(crate::build::paper_timing())
            .build();
        let plan: FaultPlan = region
            .iter()
            .map(|&node| Fault::Corrupt {
                node,
                kind: CorruptionKind::Distance(Distance::ZERO),
            })
            .collect();
        let recurring = RecurringFault::new(plan, interval, 5);
        sim.engine_mut().reset_trace();
        let t0 = sim.now();
        let report = recurring
            .drive_lsrp(&mut sim, HORIZON)
            .expect("plan applies");
        let acted = sim.engine().trace().acted_nodes_since(t0);
        let contaminated: BTreeSet<NodeId> = acted.difference(&region).copied().collect();
        let range =
            lsrp_graph::contamination::range_of_contamination(sim.graph(), &region, &contaminated);
        assert!(report.quiescent);
        t.row(&[
            fmt_f64(interval),
            range.to_string(),
            contaminated.len().to_string(),
            sim.routes_correct().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_e6_sweep_is_reproducible() {
        // The sweep fans out over worker threads; the rendered table must
        // not depend on scheduling.
        let a = e6_scaling(&[6], &[1]).to_string();
        let b = e6_scaling(&[6], &[1]).to_string();
        assert_eq!(a, b);
        assert!(a.contains("LSRP"));
    }

    #[test]
    fn sharded_multi_e6_sweep_is_byte_identical_to_serial() {
        let serial = e6_scaling_multi(&[4], &[1, 2], Some(3), 1).to_string();
        for jobs in [2, 5] {
            let sharded = e6_scaling_multi(&[4], &[1, 2], Some(3), jobs).to_string();
            assert_eq!(serial, sharded, "jobs={jobs}");
        }
        assert!(serial.contains("destinations 3"), "{serial}");
    }

    #[test]
    fn multi_e6_all_pairs_runs_one_tree_per_node() {
        let t = e6_scaling_multi(&[3], &[1], None, 2).to_string();
        assert!(t.contains("all-pairs"), "{t}");
        // 3x3 grid, all-pairs: 9 destination trees.
        assert!(t.contains("| 9"), "{t}");
    }

    #[test]
    fn lsrp_containment_is_local_and_dbf_is_not() {
        // Deterministic worst case: both region nodes black-hole to 0 with
        // poisoned neighborhood (the random corruption draws of
        // `scaling_cell` can land on mild large/∞ values).
        let cell = |protocol| {
            let graph = generators::grid(10, 10, 1);
            let dest = v(0);
            let region = contiguous_region(&graph, v(11), 2, dest);
            let mut sim = crate::build::build(protocol, graph.clone(), dest, None, 1);
            measure_recovery(sim.as_mut(), &region, crate::HORIZON, |s| {
                for &node in &region {
                    s.corrupt_distance(node, Distance::ZERO);
                    let ns: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
                    for k in ns {
                        s.poison_mirror(k, node, Distance::ZERO);
                    }
                }
            })
        };
        let lsrp = cell(Protocol::Lsrp);
        let dbf = cell(Protocol::Dbf);
        assert!(lsrp.routes_correct && dbf.routes_correct);
        assert!(
            lsrp.contaminated.len() * 4 < dbf.contaminated.len(),
            "LSRP {} vs DBF {} contaminated",
            lsrp.contaminated.len(),
            dbf.contaminated.len()
        );
        assert!(lsrp.contamination_range < dbf.contamination_range);
    }

    #[test]
    fn lsrp_time_is_independent_of_network_size() {
        let small = scaling_cell(Protocol::Lsrp, 8, 2, 2);
        let large = scaling_cell(Protocol::Lsrp, 16, 2, 2);
        assert!(
            large.stabilization_time <= small.stabilization_time * 2.0 + 30.0,
            "LSRP should not scale with n: {} -> {}",
            small.stabilization_time,
            large.stabilization_time
        );
    }

    #[test]
    fn recurring_faults_stay_contained() {
        let t = e10_continuous(&[120.0]);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("true"));
    }
}
