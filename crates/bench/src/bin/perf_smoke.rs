//! CI perf-smoke: run the fixed-seed engine throughput scenarios, write
//! `BENCH_engine.json` at the repository root, and fail if events/sec
//! falls below a deliberately generous floor.
//!
//! Floors are per-scenario (see [`events_per_sec_floor`]) and sit far
//! below the throughput measured on an unremarkable development
//! container, so they only trip on order-of-magnitude regressions (an
//! accidental O(n) scan on the hot path, a deep clone per broadcast
//! fan-out copy), never on machine noise.

use std::path::Path;

use lsrp_bench::engine_perf::{events_per_sec_floor, measure_all, to_json};

fn main() {
    let results = measure_all();
    let doc = to_json(&results);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    std::fs::write(&path, &doc).expect("write BENCH_engine.json");
    print!("{doc}");
    let mut failed = false;
    for r in &results {
        let floor = events_per_sec_floor(r.scenario);
        let ok = r.events_per_sec >= floor;
        eprintln!(
            "perf-smoke {}: {:.0} events/sec (floor {floor:.0}), \
             peak queue {} — {}",
            r.scenario,
            r.events_per_sec,
            r.peak_queue_depth,
            if ok { "ok" } else { "BELOW FLOOR" },
        );
        failed |= !ok;
    }
    let find = |name: &str| results.iter().find(|r| r.scenario == name);
    if let (Some(null), Some(traced)) = (find("trace_overhead_null"), find("trace_overhead")) {
        // The streaming sink's budget: at most 15% events/sec overhead
        // against the NullSink baseline on the identical workload.
        let overhead = 1.0 - traced.events_per_sec / null.events_per_sec;
        let ok = traced.events_per_sec >= null.events_per_sec * 0.85;
        eprintln!(
            "perf-smoke trace_overhead ratio: {:.1}% sink overhead vs NullSink \
             (budget 15%) — {}",
            overhead * 100.0,
            if ok { "ok" } else { "OVER BUDGET" },
        );
        failed |= !ok;
    }
    if failed {
        eprintln!("perf-smoke: engine throughput regressed past the generous floor");
        std::process::exit(1);
    }
}
