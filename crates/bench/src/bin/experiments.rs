//! Regenerates every figure and analytical claim of the paper and prints
//! them as markdown (the source of EXPERIMENTS.md).
//!
//! Usage: `experiments [e1|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|all]...`
//! (default: all). `e6 --destinations N|all-pairs` runs the E6 sweep on
//! the dense multi-destination plane instead of the single-tree one.

use std::env;

use lsrp_bench::{
    availability, congestion_exp, figures, loops_exp, multi_exp, overhead, regions_exp, scaling,
    selfstab, traffic_exp, waves,
};

fn want(args: &[String], id: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == id || a == "all")
}

/// Parses a trailing `--destinations N|all-pairs` flag (for the E6 multi
/// sweep) out of `args`, returning `Some(None)` for all-pairs and
/// `Some(Some(n))` for a count. Exits with a message on a bad value.
fn take_destinations(args: &mut Vec<String>) -> Option<Option<usize>> {
    let i = args.iter().position(|a| a == "--destinations")?;
    args.remove(i);
    let value = if i < args.len() {
        args.remove(i)
    } else {
        eprintln!("--destinations wants a value: N or all-pairs");
        std::process::exit(2);
    };
    match value.as_str() {
        "all-pairs" | "all" => Some(None),
        n => match n.parse::<usize>() {
            Ok(n) if n >= 1 => Some(Some(n)),
            _ => {
                eprintln!("invalid destination count: {n} (want N or all-pairs)");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let destinations = take_destinations(&mut args);
    let args = args;

    println!("# LSRP reproduction — experiment outputs\n");
    println!("All times are simulated seconds under the paper-example timing");
    println!("(`u = 1`, `hd_SC = 1`, `hd_C = 8`, `hd_S = 17`; DBF/DUAL update");
    println!("hold 17). See DESIGN.md §4 for the experiment index.\n");

    if want(&args, "e1") || want(&args, "e2") {
        let (table, timelines) = figures::e1_e2_fig2_vs_fig5();
        println!("{table}");
        for (title, tl) in timelines {
            println!("**{title}**\n\n```\n{tl}```\n");
        }
        println!("{}", figures::e4b_dependent_sets());
    }
    if want(&args, "e3") {
        let (table, tl) = figures::e3_fig6();
        println!("{table}");
        println!("**LSRP timeline (d.v11 := 2)**\n\n```\n{tl}```\n");
    }
    if want(&args, "e4") {
        println!("{}", figures::e4_fig7());
    }
    if want(&args, "e5") {
        println!("{}", selfstab::e5_selfstab(&[16, 32, 64], 10));
    }
    if want(&args, "e6") {
        if let Some(dests) = destinations {
            let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
            println!(
                "{}",
                scaling::e6_scaling_multi(&[8, 12], &[1, 2, 4], dests, jobs)
            );
        } else {
            println!("{}", scaling::e6_scaling(&[8, 16, 24], &[1, 2, 4, 8, 16]));
        }
    }
    if want(&args, "e7") {
        println!("{}", regions_exp::e7_regions(64, 4));
    }
    if want(&args, "e8") {
        println!("{}", loops_exp::e8_loop_freedom(14, 20));
    }
    if want(&args, "e9") {
        println!("{}", loops_exp::e9_loop_breakage(&[4, 8, 16, 32, 64]));
    }
    if want(&args, "e10") {
        println!("{}", scaling::e10_continuous(&[40.0, 120.0, 400.0]));
    }
    if want(&args, "e11") {
        println!("{}", overhead::e11_overhead(&[8, 16, 24], &[2]));
    }
    if want(&args, "e12") {
        println!("{}", waves::e12_wave_ratio(&[1.2, 1.5, 2.125, 4.0, 8.0]));
    }
    if want(&args, "e13") {
        println!("{}", availability::e13_availability(16, 4));
    }
    if want(&args, "e14") {
        println!("{}", availability::e14_robustness(12, &[2, 8]));
    }
    if want(&args, "e15") {
        println!("{}", loops_exp::e15_c2_ablation(14, 30));
    }
    if want(&args, "e16") {
        println!("{}", scaling::e16_route_stability(12, &[1, 4]));
    }
    if want(&args, "e17") {
        println!("{}", waves::e17_containment_depth(&[1, 2, 4, 8, 16]));
    }
    if want(&args, "e18") {
        println!(
            "{}",
            availability::e18_message_loss(&[0.0, 0.01, 0.05, 0.10, 0.20])
        );
    }
    if want(&args, "e19") {
        println!("{}", multi_exp::e19_full_table(8, &[1, 4, 16, 64]));
    }
    if want(&args, "e20") {
        println!("{}", traffic_exp::e20_live_availability(12, &[1, 2, 4, 8]));
    }
    if want(&args, "e21") {
        println!(
            "{}",
            congestion_exp::e21_congested_recovery(8, &[1, 2, 4, 8])
        );
    }
}
