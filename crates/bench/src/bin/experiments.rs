//! Regenerates every figure and analytical claim of the paper and prints
//! them as markdown (the source of EXPERIMENTS.md).
//!
//! Usage: `experiments [e1|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|all]...`
//! (default: all). `e6 --destinations N|all-pairs` runs the E6 sweep on
//! the dense multi-destination plane instead of the single-tree one.
//!
//! Every experiment is driven through its checked-in scenario file in
//! `scenarios/` — this binary is a dispatcher over the same campaign
//! compiler `lsrp run` uses, so `lsrp run scenarios/e6_scaling.toml`
//! prints the E6 block byte-identically.

use std::env;

use lsrp_bench::scenario_runner::BenchRunner;
use lsrp_scenario::schema::ScenarioBody;
use lsrp_scenario::{
    load_str, run_scenario_with, DestinationsSpec, ExecOptions, Scenario, ScenarioResult,
};

/// (answering ids, scenario file) in EXPERIMENTS.md order.
const EXPERIMENTS: &[(&[&str], &str)] = &[
    (
        &["e1", "e2"],
        include_str!("../../../../scenarios/e1_e2_fig2_vs_fig5.toml"),
    ),
    (&["e3"], include_str!("../../../../scenarios/e3_fig6.toml")),
    (&["e4"], include_str!("../../../../scenarios/e4_fig7.toml")),
    (
        &["e5"],
        include_str!("../../../../scenarios/e5_selfstab.toml"),
    ),
    (
        &["e6"],
        include_str!("../../../../scenarios/e6_scaling.toml"),
    ),
    (
        &["e7"],
        include_str!("../../../../scenarios/e7_regions.toml"),
    ),
    (
        &["e8"],
        include_str!("../../../../scenarios/e8_loop_freedom.toml"),
    ),
    (
        &["e9"],
        include_str!("../../../../scenarios/e9_loop_breakage.toml"),
    ),
    (
        &["e10"],
        include_str!("../../../../scenarios/e10_continuous.toml"),
    ),
    (
        &["e11"],
        include_str!("../../../../scenarios/e11_overhead.toml"),
    ),
    (
        &["e12"],
        include_str!("../../../../scenarios/e12_wave_ratio.toml"),
    ),
    (
        &["e13"],
        include_str!("../../../../scenarios/e13_availability.toml"),
    ),
    (
        &["e14"],
        include_str!("../../../../scenarios/e14_robustness.toml"),
    ),
    (
        &["e15"],
        include_str!("../../../../scenarios/e15_c2_ablation.toml"),
    ),
    (
        &["e16"],
        include_str!("../../../../scenarios/e16_route_stability.toml"),
    ),
    (
        &["e17"],
        include_str!("../../../../scenarios/e17_containment_depth.toml"),
    ),
    (
        &["e18"],
        include_str!("../../../../scenarios/e18_message_loss.toml"),
    ),
    (
        &["e19"],
        include_str!("../../../../scenarios/e19_full_table.toml"),
    ),
    (
        &["e20"],
        include_str!("../../../../scenarios/e20_live_availability.toml"),
    ),
    (
        &["e21"],
        include_str!("../../../../scenarios/e21_congested_recovery.toml"),
    ),
];

const E6_MULTI: &str = include_str!("../../../../scenarios/e6_multi.toml");

fn want(args: &[String], id: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == id || a == "all")
}

/// Parses a trailing `--destinations N|all-pairs` flag (for the E6 multi
/// sweep) out of `args`, returning `Some(None)` for all-pairs and
/// `Some(Some(n))` for a count. Exits with a message on a bad value.
fn take_destinations(args: &mut Vec<String>) -> Option<Option<usize>> {
    let i = args.iter().position(|a| a == "--destinations")?;
    args.remove(i);
    let value = if i < args.len() {
        args.remove(i)
    } else {
        eprintln!("--destinations wants a value: N or all-pairs");
        std::process::exit(2);
    };
    match value.as_str() {
        "all-pairs" | "all" => Some(None),
        n => match n.parse::<usize>() {
            Ok(n) if n >= 1 => Some(Some(n)),
            _ => {
                eprintln!("invalid destination count: {n} (want N or all-pairs)");
                std::process::exit(2);
            }
        },
    }
}

/// Runs one scenario and prints its report; returns the number of failed
/// expectations.
fn run_one(s: &Scenario, jobs: usize) -> usize {
    match run_scenario_with(s, ExecOptions::sharded(jobs), Some(&BenchRunner)) {
        Ok(outcome) => {
            match &outcome.result {
                ScenarioResult::Table(t) => println!("{t}"),
                ScenarioResult::Text(text) => print!("{text}"),
            }
            for f in &outcome.failures {
                eprintln!("{}: {f}", s.name);
            }
            outcome.failures.len()
        }
        Err(e) => {
            eprintln!("{}: {e}", s.name);
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let destinations = take_destinations(&mut args);
    let args = args;
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("# LSRP reproduction — experiment outputs\n");
    println!("All times are simulated seconds under the paper-example timing");
    println!("(`u = 1`, `hd_SC = 1`, `hd_C = 8`, `hd_S = 17`; DBF/DUAL update");
    println!("hold 17). See DESIGN.md §4 for the experiment index.\n");

    let mut failed = 0;
    for (ids, src) in EXPERIMENTS {
        if !ids.iter().any(|id| want(&args, id)) {
            continue;
        }
        if ids[0] == "e6" {
            if let Some(dests) = destinations {
                let mut s = load_str(E6_MULTI).expect("checked-in scenario parses");
                if let ScenarioBody::Recovery(r) = &mut s.body {
                    r.destinations = Some(match dests {
                        None => DestinationsSpec::AllPairs,
                        Some(n) => DestinationsSpec::Count(
                            u32::try_from(n).expect("destination count fits u32"),
                        ),
                    });
                }
                failed += run_one(&s, jobs);
                continue;
            }
        }
        let s = load_str(src).expect("checked-in scenario parses");
        failed += run_one(&s, jobs);
    }
    if failed > 0 {
        eprintln!("{failed} expectation(s) failed");
        std::process::exit(1);
    }
}
