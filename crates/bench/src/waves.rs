//! E12 (§VI-B): the effect of the `hd_S / hd_C` ratio on containment
//! tightness.
//!
//! Larger ratios contain mistakenly initiated *stabilization* waves more
//! tightly (the containment wave catches up sooner); smaller ratios
//! contain mistakenly initiated *containment* waves more tightly (the
//! super-containment wave is released — by a stabilization-wave execution
//! — sooner relative to the containment wave's spread).

use std::collections::BTreeSet;

use lsrp_analysis::{measure_recovery, table::fmt_f64, Table};
use lsrp_core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp_graph::topologies::{fig1_route_table, paper_fig1, v, FIG1_DESTINATION};
use lsrp_graph::{generators, Distance, NodeId};

use crate::HORIZON;

/// Timing with `hd_S = ratio * hd_C` (paper example uses ~2.1).
fn timing_with_ratio(ratio: f64) -> TimingConfig {
    let base = TimingConfig::paper_example(1.0);
    base.with_hd_s(ratio * base.hd_c)
}

/// The Figure-6 scenario (mistaken containment wave) under a given
/// `hd_S/hd_C` ratio: returns (ghosted nodes, contamination range,
/// stabilization time).
pub fn mistaken_containment_run(ratio: f64) -> (usize, usize, f64) {
    let mut sim = LsrpSimulation::builder(paper_fig1(), FIG1_DESTINATION)
        .initial_state(InitialState::Table(fig1_route_table()))
        .timing(timing_with_ratio(ratio))
        .build();
    let perturbed = BTreeSet::from([v(11)]);
    sim.engine_mut().reset_trace();
    let t0 = sim.now();
    sim.corrupt_distance(v(11), Distance::Finite(2));
    sim.poison_mirror(v(13), v(11), Distance::Finite(2));
    let report = sim.run_to_quiescence(HORIZON);
    assert!(report.quiescent && sim.routes_correct());
    let ghosted: BTreeSet<NodeId> = sim
        .engine()
        .trace()
        .actions
        .iter()
        .filter(|r| r.name == "C1" && r.time >= t0)
        .map(|r| r.node)
        .collect();
    let acted = sim.engine().trace().acted_nodes_since(t0);
    let contaminated = lsrp_graph::contamination::contaminated_nodes(&perturbed, &acted);
    let range =
        lsrp_graph::contamination::range_of_contamination(sim.graph(), &perturbed, &contaminated);
    let stab = sim
        .engine()
        .trace()
        .last_var_change_since(t0)
        .map_or(0.0, |t| t - t0);
    (ghosted.len(), range, stab)
}

/// A mistaken *stabilization* wave under a given ratio: a region of three
/// consecutive path nodes is corrupted small (so repairing the region takes
/// several containment rounds, giving the stabilization wave a head start
/// proportional to `hd_C / hd_S`). Returns how far the corrupted values
/// propagated and the stabilization time.
pub fn mistaken_stabilization_run(ratio: f64) -> (usize, f64) {
    let graph = generators::path(24, 1);
    let dest = NodeId::new(0);
    let mut sim = LsrpSimulation::builder(graph, dest)
        .timing(timing_with_ratio(ratio))
        .build();
    let region: Vec<NodeId> = (2..5).map(NodeId::new).collect();
    let perturbed: BTreeSet<NodeId> = region.iter().copied().collect();
    let m = measure_recovery(&mut sim, &perturbed, HORIZON, |s: &mut LsrpSimulation| {
        for &node in &region {
            s.corrupt_distance(node, Distance::ZERO);
            let neighbors: Vec<NodeId> = s.graph().neighbors(node).map(|(k, _)| k).collect();
            for k in neighbors {
                s.poison_mirror(k, node, Distance::ZERO);
            }
        }
    });
    assert!(m.quiescent && m.routes_correct);
    (m.contamination_range, m.stabilization_time)
}

/// E12 table: sweep the ratio over both scenarios.
pub fn e12_wave_ratio(ratios: &[f64]) -> Table {
    let mut t = Table::new(
        "E12 — §VI-B: effect of the hd_S/hd_C ratio on containment tightness",
        &[
            "hd_S/hd_C",
            "mistaken S-wave: range",
            "mistaken S-wave: stab. time",
            "mistaken C-wave: ghosted nodes",
            "mistaken C-wave: range",
            "mistaken C-wave: stab. time",
        ],
    );
    for &r in ratios {
        let (s_range, s_time) = mistaken_stabilization_run(r);
        let (ghosted, c_range, c_time) = mistaken_containment_run(r);
        t.row(&[
            fmt_f64(r),
            s_range.to_string(),
            fmt_f64(s_time),
            ghosted.to_string(),
            c_range.to_string(),
            fmt_f64(c_time),
        ]);
    }
    t
}

/// E17 — the Lemma-1 proof quantity `d_cw`: how deep a mistakenly
/// initiated containment wave travels before the super-containment wave
/// catches it, as a function of the perturbation size.
///
/// Scenario (the appendix's Figure-8 setting on a path): a region of `p`
/// consecutive nodes is corrupted *large*, so the first healthy node below
/// the region sees no justification, declares itself a source, and a
/// containment wave spreads down the healthy path at one hop per
/// `~hd_C + u` while the stabilization wave repairs the region at one hop
/// per `~hd_S` — the wave is caught after `O(p · hd_S / hd_C)` hops.
pub fn containment_depth_run(p: usize) -> (usize, usize, f64) {
    let graph = generators::path(64, 1);
    let dest = NodeId::new(0);
    let mut sim = LsrpSimulation::builder(graph.clone(), dest)
        .timing(TimingConfig::paper_example(1.0))
        .build();
    // Corrupt nodes 2 .. 2+p to a huge value, neighborhood poisoned.
    for i in 0..p {
        let node = NodeId::new(2 + i as u32);
        let d = Distance::Finite(1_000);
        sim.corrupt_distance(node, d);
        let ns: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
        for k in ns {
            sim.poison_mirror(k, node, d);
        }
    }
    let episodes = lsrp_analysis::track_containment(
        &mut sim as &mut dyn lsrp_analysis::RoutingSimulation,
        HORIZON,
        1_000.0,
    );
    assert!(sim.routes_correct(), "p={p} did not recover");
    let s = lsrp_analysis::wave_stats(&episodes);
    (s.max_depth, s.max_members, s.max_duration)
}

/// E17 table: containment-tree depth vs perturbation size.
pub fn e17_containment_depth(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E17 — Lemma 1's d_cw: containment-wave travel before capture (path of 64, corrupted-large region)",
        &[
            "perturbation p",
            "max containment depth (d_cw)",
            "max tree size",
            "longest episode",
        ],
    );
    for &p in sizes {
        let (depth, members, duration) = containment_depth_run(p);
        t.row(&[
            p.to_string(),
            depth.to_string(),
            members.to_string(),
            fmt_f64(duration),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_depth_grows_with_p_but_stays_local() {
        let (d1, _, _) = containment_depth_run(2);
        let (d2, _, _) = containment_depth_run(8);
        assert!(d2 >= d1, "depth should not shrink with p: {d1} -> {d2}");
        assert!(d2 < 40, "wave must be caught well before the path ends");
    }

    #[test]
    fn paper_ratio_reproduces_fig6() {
        let (ghosted, range, _) = mistaken_containment_run(2.125); // 17/8
        assert_eq!(ghosted, 2, "v13 and v9 ghost");
        assert_eq!(range, 2);
    }

    #[test]
    fn larger_ratio_does_not_worsen_stabilization_containment() {
        let (r_small, _) = mistaken_stabilization_run(1.5);
        let (r_large, _) = mistaken_stabilization_run(4.0);
        assert!(r_large <= r_small.max(1), "{r_small} -> {r_large}");
    }
}
