//! E19 (extension): full-routing-table recovery with multi-destination
//! LSRP — work scales with the number of affected destination trees, and
//! every action stays at the victim.

use lsrp_analysis::{table::fmt_f64, Table};
use lsrp_graph::{generators, Distance, NodeId};
use lsrp_multi::{MultiLsrpSimulation, MultiLsrpSimulationExt};

use crate::HORIZON;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// One run: a grid with `dests` destination trees; the victim's entire
/// table is hijacked. Returns (actions, messages, stabilization time,
/// acting nodes).
pub fn full_table_run(w: u32, dests: usize, seed: u64) -> (u64, u64, f64, usize) {
    let graph = generators::grid(w, w, 1);
    let destinations: Vec<NodeId> = graph.nodes().take(dests).collect();
    let mut sim = MultiLsrpSimulation::builder(graph, destinations)
        .seed(seed)
        .build();
    let victim = v(w + 1);
    sim.engine_mut().reset_trace();
    let t0 = sim.now();
    sim.corrupt_all_instances(victim, |_| (Distance::ZERO, victim));
    let report = sim.run_to_quiescence(HORIZON);
    assert!(report.quiescent && sim.all_routes_correct());
    let trace = sim.engine().trace();
    let stab = trace
        .last_var_change_since(t0)
        .map_or(0.0, |t| t.seconds() - t0.seconds());
    let acting = trace.acted_nodes_since(t0).len();
    (trace.total_actions(), trace.messages_sent, stab, acting)
}

/// E19 table: sweep the number of destination trees.
pub fn e19_full_table(w: u32, dest_counts: &[usize]) -> Table {
    let mut t = Table::new(
        format!("E19 — multi-destination LSRP: hijack of one router's entire table (grid {w}x{w})"),
        &[
            "destination trees",
            "actions",
            "messages",
            "stabilization time",
            "acting nodes",
        ],
    );
    for &d in dest_counts {
        let (actions, messages, stab, acting) = full_table_run(w, d, 3);
        t.row(&[
            d.to_string(),
            actions.to_string(),
            messages.to_string(),
            fmt_f64(stab),
            acting.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_scales_with_trees_but_stays_at_the_victim() {
        let (a4, _, _, n4) = full_table_run(6, 4, 1);
        let (a16, _, _, n16) = full_table_run(6, 16, 1);
        assert!(
            a16 > a4 * 2,
            "actions should grow with trees: {a4} -> {a16}"
        );
        assert_eq!(n4, 1, "only the victim acts");
        assert_eq!(n16, 1, "only the victim acts");
    }
}
