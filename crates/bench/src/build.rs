//! Shared builders: the three protocols over one topology with matched
//! timing (LSRP's `hd_S` equals the baselines' update hold — all three
//! model the same MRAI-style advertisement interval — with unit link
//! delay and ideal clocks unless stated otherwise).

use lsrp_analysis::RoutingSimulation;
use lsrp_baselines::{
    BaselineSimulation, DbfConfig, DbfSimulation, DualConfig, DualSimulation, PvConfig,
    PvSimulation,
};
use lsrp_core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp_graph::{Graph, NodeId, RouteTable};
use lsrp_sim::EngineConfig;

/// The protocols under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The paper's contribution.
    Lsrp,
    /// Distributed Bellman-Ford.
    Dbf,
    /// DUAL-lite.
    Dual,
    /// Path-vector (BGP-lite).
    Pv,
}

/// All compared protocols, in presentation order.
pub const ALL_PROTOCOLS: [Protocol; 4] =
    [Protocol::Lsrp, Protocol::Dbf, Protocol::Dual, Protocol::Pv];

/// The paper-example wave timing (`u = 1`): `hd_SC = 1, hd_C = 8,
/// hd_S = 17`.
pub fn paper_timing() -> TimingConfig {
    TimingConfig::paper_example(1.0)
}

/// Builds one protocol over `graph` from a legitimate state (the given
/// chosen tree, or the canonical one).
pub fn build(
    protocol: Protocol,
    graph: Graph,
    destination: NodeId,
    table: Option<RouteTable>,
    seed: u64,
) -> Box<dyn RoutingSimulation> {
    let engine = EngineConfig::default().with_seed(seed);
    match protocol {
        Protocol::Lsrp => {
            let initial = match table {
                Some(t) => InitialState::Table(t),
                None => InitialState::Legitimate,
            };
            Box::new(
                LsrpSimulation::builder(graph, destination)
                    .timing(paper_timing())
                    .initial_state(initial)
                    .engine_config(engine)
                    .build(),
            )
        }
        Protocol::Dbf => Box::new(DbfSimulation::new(
            graph,
            destination,
            table,
            DbfConfig::default(),
            engine,
        )),
        Protocol::Dual => {
            // DUAL never counts to infinity, so a high bound is safe — and
            // needed so long injected loops (E9, L = 64) are not clamped
            // away; the SIA timeout is raised to keep the diffusing
            // computation's linear walk visible.
            let config = DualConfig {
                infinity: 4096,
                active_timeout: 20_000.0,
                ..DualConfig::default()
            };
            Box::new(DualSimulation::new(
                graph,
                destination,
                table,
                config,
                engine,
            ))
        }
        Protocol::Pv => Box::new(PvSimulation::new(
            graph,
            destination,
            table,
            PvConfig::default(),
            engine,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_graph::generators;

    #[test]
    fn builders_produce_matching_steady_states() {
        for p in ALL_PROTOCOLS {
            let mut sim = build(p, generators::grid(3, 3, 1), NodeId::new(0), None, 1);
            let report = sim.run_to_quiescence(1_000.0);
            assert!(report.quiescent);
            assert_eq!(sim.trace().total_actions(), 0);
            assert!(sim.routes_correct());
        }
    }
}
