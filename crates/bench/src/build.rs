//! Shared builders: the three protocols over one topology with matched
//! timing (LSRP's `hd_S` equals the baselines' update hold — all three
//! model the same MRAI-style advertisement interval — with unit link
//! delay and ideal clocks unless stated otherwise).
//!
//! The builders themselves live in `lsrp_scenario::cells` so scenario
//! files and the bench crate drive byte-identical experiment cells;
//! this module re-exports them under the bench crate's historical
//! paths.

pub use lsrp_scenario::cells::{build, build_held, paper_timing, Protocol, ALL_PROTOCOLS};

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_graph::{generators, NodeId};

    #[test]
    fn builders_produce_matching_steady_states() {
        for p in ALL_PROTOCOLS {
            let mut sim = build(p, generators::grid(3, 3, 1), NodeId::new(0), None, 1);
            let report = sim.run_to_quiescence(1_000.0);
            assert!(report.quiescent);
            assert_eq!(sim.trace().total_actions(), 0);
            assert!(sim.routes_correct());
        }
    }
}
