//! E5 (Theorem 1): self-stabilization from fully arbitrary states.

use lsrp_analysis::{table::fmt_f64, Table};
use lsrp_core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp_graph::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::HORIZON;

/// One self-stabilization run: arbitrary state over a random connected
/// graph; returns the stabilization time (time of the last protocol-
/// variable change).
pub fn selfstab_run(n: u32, graph_seed: u64, state_seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(graph_seed);
    let graph = generators::connected_erdos_renyi(n, 0.08, 3, &mut rng);
    let dest = NodeId::new(graph_seed as u32 % n);
    let timing = TimingConfig::paper_example(1.0).with_syn_period(5.0);
    let mut sim = LsrpSimulation::builder(graph, dest)
        .timing(timing)
        .initial_state(InitialState::Arbitrary { seed: state_seed })
        .seed(state_seed)
        .build();
    let report = sim.run_to_quiescence(HORIZON);
    assert!(report.quiescent, "n={n} seed={state_seed} did not settle");
    assert!(sim.routes_correct(), "n={n} seed={state_seed} wrong routes");
    sim.engine()
        .trace()
        .last_var_change_since(lsrp_sim::SimTime::ZERO)
        .map_or(0.0, lsrp_sim::SimTime::seconds)
}

/// E5 table: convergence statistics from arbitrary states.
pub fn e5_selfstab(ns: &[u32], runs_per_n: u64) -> Table {
    let mut t = Table::new(
        "E5 — Theorem 1: self-stabilization from arbitrary states (SYN period 5)",
        &[
            "n",
            "runs",
            "converged",
            "mean stab. time",
            "max stab. time",
        ],
    );
    for &n in ns {
        let times: Vec<f64> = (0..runs_per_n)
            .map(|s| selfstab_run(n, 1_000 + s, 9_000 + s))
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let max = times.iter().copied().fold(0.0, f64::max);
        t.row(&[
            n.to_string(),
            runs_per_n.to_string(),
            format!("{}/{}", times.len(), runs_per_n),
            fmt_f64(mean),
            fmt_f64(max),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_networks_converge() {
        let t = e5_selfstab(&[8], 3);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("3/3"));
    }
}
