//! E7 (Lemmas 2–3, Corollaries 1–2): multiple perturbed regions stabilize
//! independently when far apart; adjoining regions degrade toward the sum
//! of their sizes.

use std::collections::BTreeSet;

use lsrp_analysis::{measure_recovery, table::fmt_f64, RecoveryMetrics, Table};
use lsrp_faults::corruption::{contiguous_region, corrupt_region_plan};
use lsrp_graph::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::build::{build, Protocol};
use crate::scaling::apply_plan_generic;
use crate::HORIZON;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Corrupts `k` regions of `size` nodes each on a long ring, with region
/// seeds `separation` hops apart, and measures the recovery.
pub fn multi_region_run(
    ring_len: u32,
    region_size: usize,
    seeds: &[u32],
    seed: u64,
) -> RecoveryMetrics {
    let graph = generators::ring(ring_len, 1);
    let dest = v(0);
    let mut perturbed: BTreeSet<NodeId> = BTreeSet::new();
    let sp = lsrp_graph::shortest_path::ShortestPaths::dijkstra(&graph, dest);
    let mut sim = build(Protocol::Lsrp, graph.clone(), dest, None, seed);
    let table = sim.route_table();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut plans = Vec::new();
    for &s in seeds {
        let region = contiguous_region(&graph, v(s), region_size, dest);
        plans.push(corrupt_region_plan(&graph, &region, &sp, &table, &mut rng));
        perturbed.extend(region);
    }
    measure_recovery(sim.as_mut(), &perturbed, HORIZON, |s| {
        for plan in &plans {
            apply_plan_generic(s, plan);
        }
    })
}

/// E7 table: one region vs two far regions vs two adjoining regions.
pub fn e7_regions(ring_len: u32, region_size: usize) -> Table {
    let far_a = ring_len / 4;
    let far_b = 3 * ring_len / 4;
    let adj_b = far_a + region_size as u32;
    let mut t = Table::new(
        "E7 — Lemmas 2/3: concurrent stabilization of multiple perturbed regions (LSRP, ring)",
        &[
            "scenario",
            "total perturbed",
            "stabilization time",
            "contamination range",
        ],
    );
    let cases: Vec<(String, Vec<u32>)> = vec![
        (format!("one region of {region_size}"), vec![far_a]),
        (
            format!(
                "two far regions of {region_size} (half-distance ~{})",
                ring_len / 4
            ),
            vec![far_a, far_b],
        ),
        (
            format!("two adjoining regions of {region_size}"),
            vec![far_a, adj_b],
        ),
    ];
    for (label, seeds) in cases {
        let m = multi_region_run(ring_len, region_size, &seeds, 5);
        assert!(m.quiescent && m.routes_correct, "{label}");
        t.row(&[
            label,
            m.perturbation_size.to_string(),
            fmt_f64(m.stabilization_time),
            m.contamination_range.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn far_regions_stabilize_like_one() {
        let one = multi_region_run(48, 3, &[12], 3);
        let two_far = multi_region_run(48, 3, &[12, 36], 3);
        assert!(one.routes_correct && two_far.routes_correct);
        // Independence: two far regions take about as long as one (within
        // a small factor), not twice as long.
        assert!(
            two_far.stabilization_time <= one.stabilization_time * 1.8 + 20.0,
            "one: {}, two far: {}",
            one.stabilization_time,
            two_far.stabilization_time
        );
    }

    #[test]
    fn table_renders_three_scenarios() {
        let t = e7_regions(48, 3);
        assert_eq!(t.len(), 3);
    }
}
