//! Experiment scenarios regenerating every figure and analytical claim of
//! the paper.
//!
//! Each `eN_*` function runs one experiment from DESIGN.md §4 and returns
//! markdown [`Table`]s (plus rendered timelines where the paper draws
//! space-time diagrams). The `experiments` binary prints them all — its
//! output is the source of EXPERIMENTS.md — and the Criterion benches in
//! `benches/` time representative instances of the same scenarios.
//!
//! [`Table`]: lsrp_analysis::Table

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod build;
pub mod congestion_exp;
pub mod engine_perf;
pub mod figures;
pub mod loops_exp;
pub mod multi_exp;
pub mod overhead;
pub mod regions_exp;
pub mod scaling;
pub mod scenario_runner;
pub mod selfstab;
pub mod traffic_exp;
pub mod waves;

/// The simulated-time horizon used by every experiment run.
pub const HORIZON: f64 = 5_000_000.0;
