//! E11 (§VI-B): control overhead is a function of the perturbation size,
//! not the system size.

use lsrp_analysis::{table::fmt_f64, Table};

use crate::build::ALL_PROTOCOLS;
use crate::scaling::scaling_cell;

/// E11 table: messages per recovery, sweeping network size at fixed
/// perturbation size and vice versa.
pub fn e11_overhead(widths: &[u32], sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E11 — §VI-B: control messages per recovery",
        &[
            "protocol",
            "n (grid)",
            "perturbation p",
            "messages",
            "actions",
            "time",
        ],
    );
    for protocol in ALL_PROTOCOLS {
        for &w in widths {
            for &p in sizes {
                let m = scaling_cell(protocol, w, p, 99);
                t.row(&[
                    m.protocol.to_string(),
                    format!("{}", w * w),
                    p.to_string(),
                    m.messages.to_string(),
                    m.actions.to_string(),
                    fmt_f64(m.stabilization_time),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Protocol;

    #[test]
    fn lsrp_overhead_is_local_dbf_global() {
        let lsrp_small = scaling_cell(Protocol::Lsrp, 8, 2, 7);
        let lsrp_large = scaling_cell(Protocol::Lsrp, 16, 2, 7);
        let dbf_small = scaling_cell(Protocol::Dbf, 8, 2, 7);
        let dbf_large = scaling_cell(Protocol::Dbf, 16, 2, 7);
        // LSRP messages stay roughly flat with n; DBF's grow superlinearly.
        assert!(
            lsrp_large.messages < lsrp_small.messages * 4,
            "LSRP: {} -> {}",
            lsrp_small.messages,
            lsrp_large.messages
        );
        assert!(
            dbf_large.messages > dbf_small.messages * 2,
            "DBF: {} -> {}",
            dbf_small.messages,
            dbf_large.messages
        );
    }
}
