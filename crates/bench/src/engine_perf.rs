//! Raw engine throughput: events/sec and queue pressure of the simulator
//! substrate itself, independent of any paper claim.
//!
//! Two fixed-seed scenarios are measured — the benign cold start on the
//! paper's Fig. 1 topology and a 200-node grid — with a counters-only
//! [`SinkKind::CountsOnly`] sink so trace retention does not dominate the
//! measurement. [`EngineStats`](lsrp_sim::EngineStats) supplies the event totals and the peak
//! queue depth; wall-clock time comes from [`std::time::Instant`].
//!
//! The `perf_smoke` binary runs these scenarios, writes the results to
//! `BENCH_engine.json` at the repository root, and fails if throughput
//! drops below a deliberately generous floor — a regression tripwire, not
//! a precise benchmark (Criterion's `benches/engine.rs` covers timing).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lsrp_analysis::{
    measure_recovery, run_monitored, standard_monitors, WorkloadDriver, WorkloadKind, WorkloadSpec,
};
use lsrp_core::{InitialState, LsrpSimulation, LsrpSimulationExt};
use lsrp_faults::{FaultProcess, FaultSchedule};
use lsrp_graph::{generators, topologies, Distance, Graph, NodeId};
use lsrp_multi::{
    MultiLsrpSimulation, MultiLsrpSimulationExt, ReferenceMultiSimulation,
    ReferenceMultiSimulationExt,
};
use lsrp_sim::{CongAlgKind, CongestionConfig, EngineConfig, SinkKind};

/// The fixed seed every throughput scenario runs under.
pub const PERF_SEED: u64 = 42;

/// Throughput measured for one scenario.
#[derive(Debug, Clone)]
pub struct EnginePerf {
    /// Scenario name (`fig1_benign`, `grid200_benign`).
    pub scenario: &'static str,
    /// Total engine events processed across all iterations.
    pub events: u64,
    /// Messages delivered across all iterations.
    pub messages_delivered: u64,
    /// Protocol adverts delivered across all iterations (equals
    /// `messages_delivered` for single-destination scenarios; larger for
    /// the batched multi-destination plane, where one wire message
    /// carries many adverts).
    pub adverts_delivered: u64,
    /// High-water mark of the event queue over all iterations.
    pub peak_queue_depth: usize,
    /// Wall-clock seconds spent inside the event loop.
    pub elapsed_secs: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Delivered messages per wall-clock second.
    pub deliveries_per_sec: f64,
}

fn engine_config() -> EngineConfig {
    EngineConfig::default()
        .with_seed(PERF_SEED)
        .with_sink(SinkKind::CountsOnly)
}

/// The benign Fig. 1 cold start (14 nodes, fresh state to quiescence).
pub fn fig1_sim() -> LsrpSimulation {
    LsrpSimulation::builder(topologies::paper_fig1(), topologies::FIG1_DESTINATION)
        .initial_state(InitialState::Fresh)
        .engine_config(engine_config())
        .build()
}

/// The 200-node grid cold start (20x10, fresh state to quiescence).
pub fn grid200_sim() -> LsrpSimulation {
    LsrpSimulation::builder(generators::grid(20, 10, 1), NodeId::new(0))
        .initial_state(InitialState::Fresh)
        .engine_config(engine_config())
        .build()
}

/// A fully-monitored chaos run: the standard fault process on a 10x10
/// grid judged by [`standard_monitors`], timing only the monitored phase.
/// This is the observation-plane benchmark — it measures the engine *and*
/// the monitors' per-event work, the regime the incremental route view
/// exists for.
///
/// # Panics
///
/// Panics if the schedule-generation plumbing produces an empty run.
pub fn measure_chaos_monitored(iters: u32) -> EnginePerf {
    let graph = generators::grid(10, 10, 1);
    let dest = NodeId::new(0);
    let horizon = 100_000.0;
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0usize;
    let mut elapsed = Duration::ZERO;
    for i in 0..iters {
        let seed = PERF_SEED + u64::from(i);
        let mut sim = LsrpSimulation::builder(graph.clone(), dest)
            .initial_state(InitialState::Fresh)
            .engine_config(EngineConfig::default().with_seed(seed))
            .build();
        sim.run_to_quiescence(horizon);
        let t0 = sim.now().seconds();
        let raw = FaultProcess::standard().generate(&graph, dest, 600.0, seed);
        let mut schedule = FaultSchedule::new();
        for e in &raw.events {
            schedule.push(t0 + e.at, e.fault.clone());
        }
        let timing = *sim.timing();
        let mut monitors = standard_monitors(&timing, graph.node_count());
        let delivered_before = sim.stats().messages_delivered;
        let start = Instant::now();
        let report = run_monitored(&mut sim, &schedule, horizon, &mut monitors);
        elapsed += start.elapsed();
        assert!(report.events > 0, "chaos run must process events");
        events += report.events;
        delivered += sim.stats().messages_delivered - delivered_before;
        peak = peak.max(sim.stats().peak_queue_depth);
    }
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    EnginePerf {
        scenario: "chaos_monitored",
        events,
        messages_delivered: delivered,
        adverts_delivered: delivered,
        peak_queue_depth: peak,
        elapsed_secs: secs,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: delivered as f64 / secs,
    }
}

/// A [`measure_recovery`] sweep over corruption sites on a 12x12 grid,
/// timing only the measured recoveries (the flap-counting loop is the
/// historical O(events × N) hotspot).
///
/// # Panics
///
/// Panics if any recovery fails to settle.
pub fn measure_recovery_grid(iters: u32) -> EnginePerf {
    let victims = [5u32, 40, 77, 143];
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0usize;
    let mut elapsed = Duration::ZERO;
    for _ in 0..iters {
        for &victim in &victims {
            let mut sim = LsrpSimulation::builder(generators::grid(12, 12, 1), NodeId::new(0))
                .initial_state(InitialState::Legitimate)
                .engine_config(EngineConfig::default().with_seed(PERF_SEED))
                .build();
            let before = sim.stats();
            let perturbed = BTreeSet::from([NodeId::new(victim)]);
            let start = Instant::now();
            let m = measure_recovery(&mut sim, &perturbed, 100_000.0, |s| {
                s.corrupt_distance(NodeId::new(victim), Distance::ZERO);
            });
            elapsed += start.elapsed();
            assert!(m.quiescent, "recovery from v{victim} must settle");
            let stats = sim.stats();
            events += stats.total_events() - before.total_events();
            delivered += stats.messages_delivered - before.messages_delivered;
            peak = peak.max(stats.peak_queue_depth);
        }
    }
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    EnginePerf {
        scenario: "measure_recovery_grid",
        events,
        messages_delivered: delivered,
        adverts_delivered: delivered,
        peak_queue_depth: peak,
        elapsed_secs: secs,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: delivered as f64 / secs,
    }
}

/// Runs `build()` to quiescence `iters` times, timing only the event loop,
/// and aggregates events, deliveries and queue pressure.
///
/// # Panics
///
/// Panics if any iteration fails to reach quiescence.
pub fn measure(
    scenario: &'static str,
    iters: u32,
    build: impl Fn() -> LsrpSimulation,
) -> EnginePerf {
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0usize;
    let mut elapsed = Duration::ZERO;
    for _ in 0..iters {
        let mut sim = build();
        let start = Instant::now();
        let report = sim.run_to_quiescence(1_000_000.0);
        elapsed += start.elapsed();
        assert!(report.quiescent, "{scenario} must settle");
        let stats = sim.stats();
        events += stats.total_events();
        delivered += stats.messages_delivered;
        peak = peak.max(stats.peak_queue_depth);
    }
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    EnginePerf {
        scenario,
        events,
        messages_delivered: delivered,
        adverts_delivered: delivered,
        peak_queue_depth: peak,
        elapsed_secs: secs,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: delivered as f64 / secs,
    }
}

/// The live data plane under recovery: an aggregated Poisson workload
/// (64 flows at 25 pkt/s each over 5 s sampling lanes, ~480k represented
/// packets per iteration) forwards on a 10x10 grid while a mid-run
/// zero-distance corruption recovers. Times workload scheduling plus the
/// event loop; packets hop on the same queue as protocol messages.
///
/// # Panics
///
/// Panics if the run fails to drain both planes.
pub fn measure_traffic_grid(iters: u32) -> EnginePerf {
    let graph = generators::grid(10, 10, 1);
    let dest = NodeId::new(0);
    let victim = NodeId::new(55);
    let duration = 300.0;
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0usize;
    let mut elapsed = Duration::ZERO;
    for i in 0..iters {
        let seed = PERF_SEED + u64::from(i);
        let mut sim = LsrpSimulation::builder(graph.clone(), dest)
            .initial_state(InitialState::Legitimate)
            .engine_config(
                EngineConfig::default()
                    .with_seed(seed)
                    .with_sink(SinkKind::CountsOnly),
            )
            .build();
        sim.run_to_quiescence(100_000.0);
        let t0 = sim.now().seconds();
        let spec = WorkloadSpec::default();
        let mut workload = WorkloadDriver::new(&spec, &graph, &[dest], t0, duration, seed);
        let before = sim.stats();
        let start = Instant::now();
        workload.ensure_scheduled(sim.engine_mut(), t0 + duration / 2.0);
        sim.run_until(t0 + duration / 2.0);
        sim.corrupt_distance(victim, Distance::ZERO);
        workload.ensure_scheduled(sim.engine_mut(), f64::INFINITY);
        // `run_to_quiescence` would settle-skip past queued packet
        // events, so drive in slices until both planes drain.
        loop {
            let drained = !sim.engine().any_enabled_non_maintenance()
                && sim.engine().inflight_messages() == 0
                && sim.engine().packets_in_flight() == 0;
            if drained {
                break;
            }
            let next = sim
                .engine()
                .next_event_time()
                .expect("undrained planes imply pending events");
            sim.run_until(next.seconds() + 50.0);
        }
        elapsed += start.elapsed();
        let counts = sim.stats().traffic;
        assert!(counts.injected > 0, "workload must inject");
        assert_eq!(
            counts.completed(),
            counts.injected,
            "every packet must complete"
        );
        let stats = sim.stats();
        events += stats.total_events() - before.total_events();
        delivered += stats.messages_delivered - before.messages_delivered;
        peak = peak.max(stats.peak_queue_depth);
    }
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    EnginePerf {
        scenario: "traffic_grid",
        events,
        messages_delivered: delivered,
        adverts_delivered: delivered,
        peak_queue_depth: peak,
        elapsed_secs: secs,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: delivered as f64 / secs,
    }
}

/// The congestion lane under recovery: the same 10x10 grid and mid-run
/// corruption as [`measure_traffic_grid`], but with finite-rate links,
/// bounded drop-tail port queues and the workload promoted to Go-Back-N
/// flows under AIMD — so the measured regime includes serialization
/// events, queue drops and retransmission timers, the congestion lane's
/// own event classes.
///
/// # Panics
///
/// Panics if the run fails to drain both planes or loses packets from
/// the conservation ledger.
pub fn measure_traffic_congested(iters: u32) -> EnginePerf {
    let graph = generators::grid(10, 10, 1);
    let dest = NodeId::new(0);
    let victim = NodeId::new(55);
    let duration = 300.0;
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0usize;
    let mut elapsed = Duration::ZERO;
    for i in 0..iters {
        let seed = PERF_SEED + u64::from(i);
        let mut sim = LsrpSimulation::builder(graph.clone(), dest)
            .initial_state(InitialState::Legitimate)
            .engine_config(
                EngineConfig::default()
                    .with_seed(seed)
                    .with_sink(SinkKind::CountsOnly)
                    .with_congestion(CongestionConfig::limited(400.0, 2_000)),
            )
            .build();
        sim.run_to_quiescence(100_000.0);
        let t0 = sim.now().seconds();
        let spec = WorkloadSpec {
            kind: WorkloadKind::Hotspot,
            ..WorkloadSpec::default()
        };
        let mut workload = WorkloadDriver::new(&spec, &graph, &[dest], t0, duration, seed)
            .with_transport(CongAlgKind::Aimd {
                initial: 4,
                max: 64,
            });
        let before = sim.stats();
        let start = Instant::now();
        workload.ensure_scheduled(sim.engine_mut(), t0 + duration / 2.0);
        sim.run_until(t0 + duration / 2.0);
        sim.corrupt_distance(victim, Distance::ZERO);
        workload.ensure_scheduled(sim.engine_mut(), f64::INFINITY);
        loop {
            let drained = !sim.engine().any_enabled_non_maintenance()
                && sim.engine().inflight_messages() == 0
                && sim.engine().packets_in_flight() == 0
                && sim.engine().flows_active() == 0;
            if drained {
                break;
            }
            let next = sim
                .engine()
                .next_event_time()
                .expect("undrained planes imply pending events");
            sim.run_until(next.seconds() + 50.0);
        }
        elapsed += start.elapsed();
        let counts = sim.stats().traffic;
        assert!(counts.injected > 0, "workload must inject");
        assert_eq!(
            counts.completed(),
            counts.injected,
            "every packet must complete"
        );
        let stats = sim.stats();
        events += stats.total_events() - before.total_events();
        delivered += stats.messages_delivered - before.messages_delivered;
        peak = peak.max(stats.peak_queue_depth);
    }
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    EnginePerf {
        scenario: "traffic_congested",
        events,
        messages_delivered: delivered,
        adverts_delivered: delivered,
        peak_queue_depth: peak,
        elapsed_secs: secs,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: delivered as f64 / secs,
    }
}

/// The scenario-compiled congested recovery (the E21 shape): parses the
/// checked-in `scenarios/e21_congested_recovery.toml`, expands its sweep
/// through the campaign compiler's lowering, and times the first (p = 1)
/// cell — finite-rate links, bounded drop-tail queues, AIMD Go-Back-N
/// hotspot flows racing a prefix-hijack repair wave. This keeps the
/// declarative path itself on the perf-smoke tripwire: a regression in
/// scenario lowering or in the congested live data plane both trip the
/// floor.
///
/// # Panics
///
/// Panics if the checked-in scenario fails to parse or lower, or if a
/// cell breaks packet conservation.
pub fn measure_traffic_scenario(iters: u32) -> EnginePerf {
    let s = lsrp_scenario::load_str(include_str!(
        "../../../scenarios/e21_congested_recovery.toml"
    ))
    .expect("checked-in scenario file parses");
    let lsrp_scenario::ScenarioBody::Hijack(h) = &s.body else {
        panic!("e21 is a hijack scenario");
    };
    let specs = lsrp_scenario::exec::live_hijack_specs(h).expect("e21 lowers to live cells");
    let spec = specs.first().expect("e21 sweep is non-empty");
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut peak = 0usize;
    let mut elapsed = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        let out = lsrp_scenario::cells::live_hijack_cell(spec);
        elapsed += start.elapsed();
        assert!(out.summary.counts.injected > 0, "workload must inject");
        events += out.events;
        delivered += out.messages_delivered;
        peak = peak.max(out.peak_queue_depth);
    }
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    EnginePerf {
        scenario: "traffic_scenario",
        events,
        messages_delivered: delivered,
        adverts_delivered: delivered,
        peak_queue_depth: peak,
        elapsed_secs: secs,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: delivered as f64 / secs,
    }
}

/// The internet-scale Clos cold start: a `fat_tree(76)` big-switch fabric
/// (116,964 nodes, 329,232 edges, diameter 6) from fresh state to
/// quiescence. This is the calendar-wheel scheduler's home regime — the
/// cold-start burst puts hundreds of thousands of timers in flight, where
/// a binary heap pays O(log n) per event and the wheel stays O(1).
pub fn scale_bigswitch_sim() -> LsrpSimulation {
    LsrpSimulation::builder(generators::fat_tree(76), NodeId::new(0))
        .initial_state(InitialState::Fresh)
        .engine_config(engine_config())
        .build()
}

/// The internet-scale random-graph cold start: a 100,000-node Waxman
/// graph (locality-truncated, patched connected) from fresh state to
/// quiescence. Unlike the Clos fabric this has irregular degree and a
/// large diameter, so the wave of synchronization rounds is long and the
/// event queue's working set keeps shifting buckets.
pub fn scale_waxman_100k_sim() -> LsrpSimulation {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(PERF_SEED);
    let graph = generators::waxman(100_000, 0.001, 1.0, &mut rng);
    LsrpSimulation::builder(graph, NodeId::new(0))
        .initial_state(InitialState::Fresh)
        .engine_config(engine_config())
        .build()
}

/// Worker count for the region-parallel scale scenarios: one per
/// hardware thread, floored at 1 (the determinism guarantee makes the
/// count invisible in every output except wall-clock).
fn par_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// [`scale_bigswitch_sim`] under the region-parallel executor
/// (DESIGN.md §15): 8 regions, one worker per hardware thread. Even on
/// a single core this beats the sequential run — eight region-local
/// calendar wheels each hold an eighth of the ~325k in-flight timers,
/// so bucket scans touch a far smaller working set per event.
pub fn scale_bigswitch_par_sim() -> LsrpSimulation {
    LsrpSimulation::builder(generators::fat_tree(76), NodeId::new(0))
        .initial_state(InitialState::Fresh)
        .engine_config(engine_config().with_regions(8).with_jobs(par_jobs()))
        .build()
}

/// [`scale_waxman_100k_sim`] under the region-parallel executor —
/// the irregular-degree counterpart of [`scale_bigswitch_par_sim`].
pub fn scale_waxman_100k_par_sim() -> LsrpSimulation {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(PERF_SEED);
    let graph = generators::waxman(100_000, 0.001, 1.0, &mut rng);
    LsrpSimulation::builder(graph, NodeId::new(0))
        .initial_state(InitialState::Fresh)
        .engine_config(engine_config().with_regions(8).with_jobs(par_jobs()))
        .build()
}

/// The all-pairs grid scenario's fixed inputs: a 6x6 unit grid with every
/// node a destination (1296 protocol instances) and a full-table
/// corruption at a central node.
fn allpairs_parts() -> (Graph, Vec<NodeId>, NodeId) {
    let graph = generators::grid(6, 6, 1);
    let dests: Vec<NodeId> = graph.nodes().collect();
    (graph, dests, NodeId::new(14))
}

/// The all-pairs grid scenario on the dense plane: legitimate start,
/// corrupt every instance at the victim, run to quiescence.
pub fn allpairs_grid_sim() -> MultiLsrpSimulation {
    let (graph, dests, victim) = allpairs_parts();
    let mut sim = MultiLsrpSimulation::builder(graph, dests)
        .engine_config(engine_config())
        .build();
    sim.corrupt_all_instances(victim, |d| (Distance::Finite(1), d));
    sim
}

/// The same scenario on the pre-dense reference plane (per-destination
/// wire messages, full guard scans) — the baseline the batching and
/// dirty-scheduling wins are quoted against.
pub fn allpairs_grid_reference_sim() -> ReferenceMultiSimulation {
    let (graph, dests, victim) = allpairs_parts();
    let mut sim = ReferenceMultiSimulation::reference(graph, dests, engine_config());
    sim.corrupt_all_instances(victim, |d| (Distance::Finite(1), d));
    sim
}

fn measure_allpairs<S>(
    scenario: &'static str,
    iters: u32,
    build: impl Fn() -> lsrp_sim::SimHarness<S>,
) -> EnginePerf
where
    S: lsrp_sim::HarnessProtocol,
{
    let mut events = 0u64;
    let mut delivered = 0u64;
    let mut adverts = 0u64;
    let mut peak = 0usize;
    let mut elapsed = Duration::ZERO;
    for _ in 0..iters {
        let mut sim = build();
        let start = Instant::now();
        let report = sim.run_to_quiescence(1_000_000.0);
        elapsed += start.elapsed();
        assert!(report.quiescent, "{scenario} must settle");
        let stats = sim.stats();
        events += stats.total_events();
        delivered += stats.messages_delivered;
        adverts += stats.adverts_delivered;
        peak = peak.max(stats.peak_queue_depth);
    }
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    EnginePerf {
        scenario,
        events,
        messages_delivered: delivered,
        adverts_delivered: adverts,
        peak_queue_depth: peak,
        elapsed_secs: secs,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: delivered as f64 / secs,
    }
}

/// The dense multi-destination plane under full-table corruption on the
/// all-pairs grid (batched adverts, dirty-instance scans).
pub fn measure_allpairs_grid(iters: u32) -> EnginePerf {
    measure_allpairs("allpairs_grid", iters, allpairs_grid_sim)
}

/// The pre-dense baseline of the same scenario (one wire message per
/// advert, O(destinations) scans).
pub fn measure_allpairs_grid_reference(iters: u32) -> EnginePerf {
    measure_allpairs("allpairs_grid_ref", iters, allpairs_grid_reference_sim)
}

/// Scratch file the `trace_overhead` scenario streams into (recreated —
/// truncated — by every traced iteration).
fn trace_scratch_path() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("lsrp-perf-smoke");
    std::fs::create_dir_all(&dir).ok();
    dir.join(format!("trace-overhead-{}.jsonl", std::process::id()))
}

/// The trace-overhead workload: a 1000-node grid cold start, the
/// frame-heaviest regime (every action writes `act` + `wave` + `rt`
/// frames). Baseline flavor: a plain [`SinkKind::Null`] sink.
pub fn trace_overhead_null_sim() -> LsrpSimulation {
    LsrpSimulation::builder(generators::grid(40, 25, 1), NodeId::new(0))
        .initial_state(InitialState::Fresh)
        .engine_config(
            EngineConfig::default()
                .with_seed(PERF_SEED)
                .with_sink(SinkKind::Null),
        )
        .build()
}

/// The same workload as [`trace_overhead_null_sim`] with the streaming
/// sink writing full JSONL over the null inner sink — the pair isolates
/// the per-event cost of trace export. `perf_smoke` holds the traced
/// flavor to the absolute floor *and* to ≤15% overhead relative to the
/// null baseline.
pub fn trace_overhead_sim() -> LsrpSimulation {
    let factory = lsrp_trace::streaming_factory(
        lsrp_trace::TraceConfig::new(trace_scratch_path()),
        SinkKind::Null,
    )
    .expect("scratch trace file opens");
    LsrpSimulation::builder(generators::grid(40, 25, 1), NodeId::new(0))
        .initial_state(InitialState::Fresh)
        .engine_config(
            EngineConfig::default()
                .with_seed(PERF_SEED)
                .with_sink(SinkKind::Null)
                .with_sink_factory(factory),
        )
        .build()
}

/// Interleaved paired measurement of the trace-overhead flavors. The
/// two flavors alternate iteration by iteration (so clock drift and
/// neighbor load hit both equally) and each flavor's elapsed time is
/// its *minimum* iteration time scaled to the iteration count — noise
/// only ever adds time, so the minimum is the robust throughput
/// estimate and the traced/null ratio stays stable on busy CI runners.
///
/// # Panics
///
/// Panics if an iteration fails to settle.
pub fn measure_trace_overhead(iters: u32) -> (EnginePerf, EnginePerf) {
    let one = |build: &dyn Fn() -> LsrpSimulation| {
        let mut sim = build();
        let start = Instant::now();
        let report = sim.run_to_quiescence(1_000_000.0);
        let dt = start.elapsed();
        assert!(report.quiescent, "trace-overhead run must settle");
        (dt, sim.stats())
    };
    let acc = |scenario: &'static str, runs: &[(Duration, lsrp_sim::EngineStats)]| {
        let events: u64 = runs.iter().map(|(_, s)| s.total_events()).sum();
        let delivered: u64 = runs.iter().map(|(_, s)| s.messages_delivered).sum();
        let peak = runs
            .iter()
            .map(|(_, s)| s.peak_queue_depth)
            .max()
            .unwrap_or(0);
        let min = runs.iter().map(|(d, _)| *d).min().unwrap_or(Duration::ZERO);
        let secs = (min.as_secs_f64() * f64::from(runs.len() as u32)).max(f64::MIN_POSITIVE);
        EnginePerf {
            scenario,
            events,
            messages_delivered: delivered,
            adverts_delivered: delivered,
            peak_queue_depth: peak,
            elapsed_secs: secs,
            events_per_sec: events as f64 / secs,
            deliveries_per_sec: delivered as f64 / secs,
        }
    };
    let mut null_runs = Vec::new();
    let mut traced_runs = Vec::new();
    for _ in 0..iters {
        null_runs.push(one(&trace_overhead_null_sim));
        traced_runs.push(one(&trace_overhead_sim));
    }
    (
        acc("trace_overhead_null", &null_runs),
        acc("trace_overhead", &traced_runs),
    )
}

/// The cheap scenarios — each sized for a sub-second release-mode run
/// (the unit tests exercise this list in debug mode, so the 100k-node
/// scale scenarios live only in [`measure_all`]).
fn measure_core() -> Vec<EnginePerf> {
    let (trace_null, trace_streaming) = measure_trace_overhead(20);
    vec![
        measure("fig1_benign", 20, fig1_sim),
        measure("grid200_benign", 3, grid200_sim),
        measure_chaos_monitored(4),
        measure_recovery_grid(6),
        measure_traffic_grid(3),
        measure_traffic_congested(2),
        measure_traffic_scenario(2),
        measure_allpairs_grid(3),
        measure_allpairs_grid_reference(1),
        trace_null,
        trace_streaming,
    ]
}

/// Runs every throughput scenario with iteration counts sized for a
/// smoke run: the sub-second core list plus the two internet-scale
/// cold starts (single-iteration; a few seconds each in release mode).
pub fn measure_all() -> Vec<EnginePerf> {
    let mut results = measure_core();
    results.push(measure("scale_bigswitch", 1, scale_bigswitch_sim));
    results.push(measure("scale_bigswitch_par", 1, scale_bigswitch_par_sim));
    results.push(measure("scale_waxman_100k", 1, scale_waxman_100k_sim));
    results.push(measure(
        "scale_waxman_100k_par",
        1,
        scale_waxman_100k_par_sim,
    ));
    results
}

/// The events/sec floor a scenario must clear in the perf smoke —
/// deliberately generous (an order of magnitude under the measured
/// throughput on an unremarkable container) so only real regressions
/// trip it, never machine noise.
///
/// `scale_bigswitch` gets its own floor: the 116k-node Clos cold start
/// holds ~325k events in the queue at once and its per-event cost is
/// dominated by engine bookkeeping over that working set (the wheel and
/// the heap oracle measure within 3% of each other there), so its
/// absolute events/sec sits far below the small-topology scenarios.
#[must_use]
pub fn events_per_sec_floor(scenario: &str) -> f64 {
    match scenario {
        "scale_bigswitch" | "scale_bigswitch_par" => 5_000.0,
        _ => 20_000.0,
    }
}

/// Renders the measurements as the `BENCH_engine.json` document.
#[must_use]
pub fn to_json(results: &[EnginePerf]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"engine\",");
    let _ = writeln!(out, "  \"seed\": {PERF_SEED},");
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"events\": {}, \"messages_delivered\": {}, \
             \"adverts_delivered\": {}, \
             \"peak_queue_depth\": {}, \"elapsed_secs\": {:.6}, \
             \"events_per_sec\": {:.1}, \"deliveries_per_sec\": {:.1}, \
             \"events_per_sec_floor\": {:.1}",
            r.scenario,
            r.events,
            r.messages_delivered,
            r.adverts_delivered,
            r.peak_queue_depth,
            r.elapsed_secs,
            r.events_per_sec,
            r.deliveries_per_sec,
            events_per_sec_floor(r.scenario),
        );
        out.push_str(if i + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_settle_and_count_events() {
        let r = measure("fig1_benign", 2, fig1_sim);
        assert!(r.events > 0);
        assert!(r.messages_delivered > 0);
        assert!(r.peak_queue_depth > 0);
        assert!(r.events_per_sec > 0.0);
    }

    #[test]
    fn event_totals_are_seed_deterministic() {
        let a = measure("grid200_benign", 1, grid200_sim);
        let b = measure("grid200_benign", 1, grid200_sim);
        assert_eq!(a.events, b.events);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.peak_queue_depth, b.peak_queue_depth);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let doc = to_json(&measure_core());
        assert!(doc.starts_with("{\n"));
        assert!(doc.ends_with("}\n"));
        assert!(doc.contains("\"fig1_benign\""));
        assert!(doc.contains("\"grid200_benign\""));
        assert!(doc.contains("\"traffic_grid\""));
        assert!(doc.contains("\"traffic_congested\""));
        assert!(doc.contains("\"traffic_scenario\""));
        assert!(doc.contains("\"allpairs_grid\""));
        assert!(doc.contains("\"allpairs_grid_ref\""));
        assert!(doc.contains("\"peak_queue_depth\""));
        assert!(doc.contains("\"adverts_delivered\""));
        assert!(doc.contains("\"events_per_sec_floor\": 20000.0"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn batching_beats_the_per_destination_baseline() {
        let dense = measure_allpairs_grid(1);
        let baseline = measure_allpairs_grid_reference(1);
        // Identical protocol work on both planes: one advert per wire
        // message on the baseline, many per message on the dense plane.
        assert_eq!(
            baseline.adverts_delivered, baseline.messages_delivered,
            "baseline carries one advert per message"
        );
        assert!(
            dense.messages_delivered < baseline.messages_delivered,
            "batching must reduce delivered messages ({} vs {})",
            dense.messages_delivered,
            baseline.messages_delivered
        );
        assert!(dense.adverts_delivered > dense.messages_delivered);
    }
}
