//! E20 (§III-B, live data plane): availability measured with *in-flight
//! packets* while LSRP recovers from a prefix-hijack black hole.
//!
//! E13 samples snapshot forwarding availability from frozen route tables;
//! this experiment forwards a live aggregated workload on the engine's
//! own queue while the control plane stabilizes, so delivery fractions,
//! drop fates and path stretch come from packets that actually raced the
//! recovery waves. The paper's claim is that contamination stays confined
//! to the vicinity of a size-`p` perturbation, so availability degrades
//! with `p` — not with network size — and returns to 1 once containment
//! completes.
//!
//! The table is a wrapper over `scenarios/e20_live_availability.toml`;
//! the run itself lives in `lsrp_scenario::cells::live_hijack_cell`.

use lsrp_analysis::{Table, TrafficSummary, WorkloadSpec};
use lsrp_scenario::cells::{live_hijack_cell, LiveHijackSpec};
use lsrp_scenario::schema::{ScenarioBody, SweepValue};
use lsrp_scenario::{run_scenario, ExecOptions};

use crate::scaling::load_scenario;

/// One live-availability run on a `w`x`w` grid: settle, stream 30 s of
/// clean traffic, then have a contiguous region of `p` nodes near the
/// destination hijack the prefix (`(d, p) := (0, self)`, neighbors
/// poisoned) while the workload keeps flowing until both planes drain.
///
/// # Panics
///
/// Panics if the run fails to drain or leaves incorrect routes.
pub fn live_availability_run(w: u32, p: usize, seed: u64) -> TrafficSummary {
    live_hijack_cell(&LiveHijackSpec {
        width: w,
        p,
        seed,
        workload: WorkloadSpec {
            flows: 128,
            ..WorkloadSpec::default()
        },
        duration: 240.0,
        prefault: 30.0,
        window: 10.0,
        congestion: None,
        transport: None,
    })
    .summary
}

/// E20 table: live availability during recovery as the perturbation
/// grows, at fixed network size.
pub fn e20_live_availability(w: u32, sizes: &[usize]) -> Table {
    let mut s = load_scenario(include_str!(
        "../../../scenarios/e20_live_availability.toml"
    ));
    if let ScenarioBody::Hijack(h) = &mut s.body {
        h.width = w;
        #[allow(clippy::cast_possible_wrap)]
        h.sweep.set_axis(
            "p",
            sizes.iter().map(|&p| SweepValue::Int(p as i64)).collect(),
        );
    }
    run_scenario(
        &s,
        ExecOptions::sharded(std::thread::available_parallelism().map_or(1, |n| n.get())),
    )
    .expect("e20 scenario runs")
    .into_table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_dents_scale_with_perturbation_size() {
        let small = live_availability_run(8, 1, 3);
        let large = live_availability_run(8, 6, 3);
        assert!(small.counts.injected > 0);
        assert!(
            small.delivered_fraction() >= large.delivered_fraction(),
            "a bigger hijack must not deliver more: {} vs {}",
            small.delivered_fraction(),
            large.delivered_fraction()
        );
        // Contained recovery: most traffic keeps flowing even while the
        // network heals (the §III-B claim this experiment reproduces).
        assert!(
            small.delivered_fraction() > 0.9,
            "p=1 dent must be small: {}",
            small.delivered_fraction()
        );
        assert_eq!(small.min_routable_fraction, 1.0, "no topology change");
    }

    #[test]
    fn scenario_e20_is_byte_identical_to_the_legacy_loop() {
        let (w, sizes) = (8u32, [1usize]);
        let mut t = Table::new(
            format!(
                "E20 — §III-B live: in-flight packet availability while recovering from a size-p prefix-hijack black hole (grid {w}x{w}, aggregated Poisson workload)"
            ),
            &[
                "perturbation p",
                "delivered fraction",
                "min window availability",
                "packets lost",
                "mean stretch",
                "max stretch",
            ],
        );
        for &p in &sizes {
            let s = live_availability_run(w, p, 11);
            let lost = s.counts.injected - s.counts.delivered;
            t.row(&[
                p.to_string(),
                format!("{:.4}", s.delivered_fraction()),
                format!("{:.4}", s.min_window_availability),
                lost.to_string(),
                format!("{:.3}", s.mean_stretch),
                format!("{:.3}", s.max_stretch),
            ]);
        }
        assert_eq!(t.to_string(), e20_live_availability(w, &sizes).to_string());
    }
}
