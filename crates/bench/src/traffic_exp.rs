//! E20 (§III-B, live data plane): availability measured with *in-flight
//! packets* while LSRP recovers from a prefix-hijack black hole.
//!
//! E13 samples snapshot forwarding availability from frozen route tables;
//! this experiment forwards a live aggregated workload on the engine's
//! own queue while the control plane stabilizes, so delivery fractions,
//! drop fates and path stretch come from packets that actually raced the
//! recovery waves. The paper's claim is that contamination stays confined
//! to the vicinity of a size-`p` perturbation, so availability degrades
//! with `p` — not with network size — and returns to 1 once containment
//! completes.

use lsrp_analysis::Table;
use lsrp_analysis::{AvailabilityMonitor, TrafficSummary, WorkloadDriver, WorkloadSpec};
use lsrp_core::{LsrpSimulation, LsrpSimulationExt};
use lsrp_faults::corruption::contiguous_region;
use lsrp_graph::{generators, Distance, NodeId};
use lsrp_sim::{EngineConfig, SinkKind};

use crate::HORIZON;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// One live-availability run on a `w`x`w` grid: settle, stream 30 s of
/// clean traffic, then have a contiguous region of `p` nodes near the
/// destination hijack the prefix (`(d, p) := (0, self)`, neighbors
/// poisoned) while the workload keeps flowing until both planes drain.
///
/// # Panics
///
/// Panics if the run fails to drain or leaves incorrect routes.
pub fn live_availability_run(w: u32, p: usize, seed: u64) -> TrafficSummary {
    let graph = generators::grid(w, w, 1);
    let dest = v(0);
    let mut sim = LsrpSimulation::builder(graph.clone(), dest)
        .engine_config(
            EngineConfig::default()
                .with_seed(seed)
                .with_sink(SinkKind::CountsOnly),
        )
        .build();
    sim.run_to_quiescence(HORIZON);
    let t0 = sim.now().seconds();

    let spec = WorkloadSpec {
        flows: 128,
        ..WorkloadSpec::default()
    };
    let mut workload = WorkloadDriver::new(&spec, &graph, &[dest], t0, 240.0, seed);
    let mut avail = AvailabilityMonitor::new(10.0);
    avail.arm(&mut sim);

    // Clean pre-fault windows: the availability baseline the fault dents.
    workload.ensure_scheduled(sim.engine_mut(), t0 + 30.0);
    sim.run_until(t0 + 30.0);
    avail.observe(&mut sim);

    // The black hole: a size-`p` region claims to be the destination and
    // its neighborhood has already learned the bogus advertisement. The
    // topology is untouched, so the monitor's stretch truth stays valid.
    let region = contiguous_region(&graph, v(w + 1), p, dest);
    assert_eq!(region.len(), p, "grid must fit a size-{p} region");
    for &node in &region {
        sim.inject_route(node, Distance::ZERO, node);
        let neighbors: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
        for k in neighbors {
            sim.poison_mirror(k, node, Distance::ZERO);
        }
    }

    // Keep traffic flowing through the recovery until both planes drain.
    // `run_to_quiescence` would settle-skip past queued packet events, so
    // advance in slices.
    workload.ensure_scheduled(sim.engine_mut(), f64::INFINITY);
    loop {
        let drained = !sim.engine().any_enabled_non_maintenance()
            && sim.engine().inflight_messages() == 0
            && sim.engine().packets_in_flight() == 0;
        if drained {
            break;
        }
        let next = sim
            .engine()
            .next_event_time()
            .expect("undrained planes imply pending events");
        sim.run_until(next.seconds() + 50.0);
        avail.observe(&mut sim);
    }
    avail.observe(&mut sim);
    assert!(sim.routes_correct(), "LSRP must recover from the hijack");
    avail.finish(sim.stats().traffic, sim.stats().congestion)
}

/// E20 table: live availability during recovery as the perturbation
/// grows, at fixed network size.
pub fn e20_live_availability(w: u32, sizes: &[usize]) -> Table {
    let mut t = Table::new(
        format!(
            "E20 — §III-B live: in-flight packet availability while recovering from a size-p prefix-hijack black hole (grid {w}x{w}, aggregated Poisson workload)"
        ),
        &[
            "perturbation p",
            "delivered fraction",
            "min window availability",
            "packets lost",
            "mean stretch",
            "max stretch",
        ],
    );
    for &p in sizes {
        let s = live_availability_run(w, p, 11);
        let lost = s.counts.injected - s.counts.delivered;
        t.row(&[
            p.to_string(),
            format!("{:.4}", s.delivered_fraction()),
            format!("{:.4}", s.min_window_availability),
            lost.to_string(),
            format!("{:.3}", s.mean_stretch),
            format!("{:.3}", s.max_stretch),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_dents_scale_with_perturbation_size() {
        let small = live_availability_run(8, 1, 3);
        let large = live_availability_run(8, 6, 3);
        assert!(small.counts.injected > 0);
        assert!(
            small.delivered_fraction() >= large.delivered_fraction(),
            "a bigger hijack must not deliver more: {} vs {}",
            small.delivered_fraction(),
            large.delivered_fraction()
        );
        // Contained recovery: most traffic keeps flowing even while the
        // network heals (the §III-B claim this experiment reproduces).
        assert!(
            small.delivered_fraction() > 0.9,
            "p=1 dent must be small: {}",
            small.delivered_fraction()
        );
        assert_eq!(small.min_routable_fraction, 1.0, "no topology change");
    }
}
