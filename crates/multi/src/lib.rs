//! Multi-destination LSRP: a full routing table, locally stabilizing per
//! destination.
//!
//! The paper presents LSRP for a single destination (§IV-A) and notes that
//! a routing protocol runs one such computation per destination. This
//! crate provides that composition: a [`MultiLsrpNode`] multiplexes one
//! independent [`lsrp_core::LsrpNode`] instance per destination over the
//! shared links (each message carries its destination tag), so a network
//! maintains an entire shortest-path routing table with all of LSRP's
//! guarantees holding *per destination*:
//!
//! * a perturbation of size `p` affecting one destination's tree is
//!   contained within `O(p)` hops of that tree's perturbed region;
//! * a corrupted node perturbs each destination's instance independently —
//!   recovery of different trees proceeds concurrently;
//! * loop freedom and constant-time loop breakage hold tree by tree.
//!
//! # Example
//!
//! ```
//! use lsrp_graph::{generators, NodeId};
//! use lsrp_multi::{MultiLsrpSimulation, MultiLsrpSimulationExt};
//!
//! let graph = generators::grid(3, 3, 1);
//! let destinations: Vec<NodeId> = graph.nodes().collect();
//! let mut sim = MultiLsrpSimulation::builder(graph, destinations).build();
//! let report = sim.run_to_quiescence(10_000.0);
//! assert!(report.quiescent);
//! assert!(sim.all_routes_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dest;
pub mod node;
pub mod reference;
pub mod simulation;

pub use crate::dest::{DestId, DestTable};
pub use crate::node::{dest_of_tag, instance_tag, MultiLsrpNode, MultiMsg, FLUSH};
pub use crate::reference::{
    ReferenceMultiNode, ReferenceMultiSimulation, ReferenceMultiSimulationExt,
};
pub use crate::simulation::{
    MultiLsrpSimulation, MultiLsrpSimulationBuilder, MultiLsrpSimulationExt, MultiMeta,
};
