//! Destination interning: the shared [`DestTable`] maps between graph
//! [`NodeId`]s and contiguous [`DestId`] indices.
//!
//! Every node of a multi-destination simulation shares one `Arc<DestTable>`
//! built at construction time, so per-destination state can live in dense
//! `Vec`s indexed by `DestId` (no per-event `BTreeMap` walks) and wire
//! messages can tag adverts with a 4-byte index instead of a node id that
//! each receiver would have to re-resolve.

use std::fmt;
use std::sync::Arc;

use lsrp_graph::NodeId;

/// Index of one destination in the shared [`DestTable`]: contiguous in
/// `0..table.len()`, ordered like the destinations' node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DestId(u32);

impl DestId {
    /// The dense index (usable directly as a `Vec` index).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> Self {
        DestId(u32::try_from(i).expect("destination count fits in u32"))
    }
}

impl fmt::Display for DestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// The interned destination set of one simulation: sorted by node id,
/// deduplicated, and shared (via [`Arc`]) by every node.
///
/// Sorting is load-bearing twice over: `DestId` order equals node-id order
/// (so dense iteration reproduces the destination order the pre-dense
/// plane's `BTreeMap` iterated in), and the id↔index map is a binary
/// search over one contiguous slice instead of a tree walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestTable {
    dests: Vec<NodeId>,
}

impl DestTable {
    /// Interns `dests` (sorted + deduplicated) into a shared table.
    pub fn new(dests: impl IntoIterator<Item = NodeId>) -> Arc<Self> {
        let mut dests: Vec<NodeId> = dests.into_iter().collect();
        dests.sort_unstable();
        dests.dedup();
        Arc::new(DestTable { dests })
    }

    /// Number of interned destinations.
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// The node id of one interned destination.
    pub fn node_of(&self, id: DestId) -> NodeId {
        self.dests[id.index()]
    }

    /// The dense id of a destination node, if it is interned.
    pub fn id_of(&self, node: NodeId) -> Option<DestId> {
        self.dests.binary_search(&node).ok().map(DestId::from_index)
    }

    /// The *primary* destination: the lowest interned node id. The
    /// single-destination facade of the multi plane reports this
    /// destination's routes.
    pub fn primary(&self) -> Option<NodeId> {
        self.dests.first().copied()
    }

    /// Iterates `(dense id, node id)` pairs in `DestId` order.
    pub fn iter(&self) -> impl Iterator<Item = (DestId, NodeId)> + '_ {
        self.dests
            .iter()
            .enumerate()
            .map(|(i, &n)| (DestId::from_index(i), n))
    }

    /// The interned node ids, ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.dests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn interning_sorts_and_dedups() {
        let t = DestTable::new([v(5), v(1), v(5), v(3)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.nodes(), &[v(1), v(3), v(5)]);
        assert_eq!(t.primary(), Some(v(1)));
    }

    #[test]
    fn id_of_inverts_node_of() {
        let t = DestTable::new([v(10), v(2), v(7)]);
        for (id, node) in t.iter() {
            assert_eq!(t.id_of(node), Some(id));
            assert_eq!(t.node_of(id), node);
        }
        assert_eq!(t.id_of(v(3)), None);
    }

    #[test]
    fn empty_table() {
        let t = DestTable::new([]);
        assert!(t.is_empty());
        assert_eq!(t.primary(), None);
    }
}
