//! The per-node multiplexer: one LSRP instance per destination.

use std::collections::BTreeMap;

use lsrp_core::{LsrpMsg, LsrpNode, LsrpState, TimingConfig};
use lsrp_graph::{NodeId, RouteEntry, Weight};
use lsrp_sim::{ActionId, Effects, EnabledSet, ProtocolNode};

/// A message of one destination's instance, tagged with that destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiMsg {
    /// Which destination's routing computation this belongs to.
    pub dest: NodeId,
    /// The inner LSRP payload.
    pub msg: LsrpMsg,
}

/// One node running an independent LSRP instance per destination.
///
/// Action ids are the inner ids retagged with
/// [`ActionId::for_instance`]`(dest.raw() + 1)` (instance 0 is reserved
/// for single-instance protocols), so each instance's guards track their
/// continuous enablement independently in the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLsrpNode {
    id: NodeId,
    instances: BTreeMap<NodeId, LsrpNode>,
}

fn instance_tag(dest: NodeId) -> u32 {
    dest.raw() + 1
}

fn dest_of_tag(instance: u32) -> NodeId {
    NodeId::new(instance - 1)
}

impl MultiLsrpNode {
    /// Creates a node with one instance per destination, each from its own
    /// initial state.
    pub fn new(
        id: NodeId,
        timing: TimingConfig,
        states: impl IntoIterator<Item = (NodeId, LsrpState)>,
    ) -> Self {
        let instances = states
            .into_iter()
            .map(|(dest, state)| {
                assert_eq!(state.id, id, "instance state must belong to this node");
                assert_eq!(state.dest, dest, "instance keyed by its destination");
                (dest, LsrpNode::new(state, timing))
            })
            .collect();
        MultiLsrpNode { id, instances }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The destinations this node routes toward.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.instances.keys().copied()
    }

    /// The instance for one destination.
    pub fn instance(&self, dest: NodeId) -> Option<&LsrpNode> {
        self.instances.get(&dest)
    }

    /// Mutable instance access (state-corruption surface).
    pub fn instance_mut(&mut self, dest: NodeId) -> Option<&mut LsrpNode> {
        self.instances.get_mut(&dest)
    }

    /// The route entry toward `dest`.
    pub fn route_entry_for(&self, dest: NodeId) -> Option<RouteEntry> {
        self.instances.get(&dest).map(LsrpNode::route_entry)
    }
}

impl ProtocolNode for MultiLsrpNode {
    type Msg = MultiMsg;

    fn enabled_actions(&self, now_local: f64) -> EnabledSet {
        let mut out = EnabledSet::none();
        self.enabled_actions_into(now_local, &mut out);
        out
    }

    fn enabled_actions_into(&self, now_local: f64, out: &mut EnabledSet) {
        // One inner buffer reused across all instances.
        let mut inner = EnabledSet::none();
        for (&dest, node) in &self.instances {
            inner.clear();
            node.enabled_actions_into(now_local, &mut inner);
            let tag = instance_tag(dest);
            for &(id, hold) in &inner.actions {
                let tagged = id.for_instance(tag);
                match inner.fingerprint_of(id) {
                    Some(fp) => {
                        out.enable_with_fingerprint(tagged, hold, fp);
                    }
                    None => {
                        out.enable(tagged, hold);
                    }
                }
            }
            if let Some(w) = inner.wakeup_local {
                out.wake_at(w);
            }
        }
    }

    fn execute(&mut self, action: ActionId, now_local: f64, fx: &mut Effects<MultiMsg>) {
        let dest = dest_of_tag(action.instance);
        let node = self
            .instances
            .get_mut(&dest)
            .expect("engine only fires actions we reported");
        let mut inner_fx = Effects::detached();
        node.execute(action.for_instance(0), now_local, &mut inner_fx);
        inner_fx.merge_into(fx, |msg| MultiMsg { dest, msg });
    }

    fn on_receive(
        &mut self,
        from: NodeId,
        msg: &MultiMsg,
        now_local: f64,
        fx: &mut Effects<MultiMsg>,
    ) {
        let Some(node) = self.instances.get_mut(&msg.dest) else {
            return; // unknown destination (e.g. mismatched configuration)
        };
        let dest = msg.dest;
        let mut inner_fx = Effects::detached();
        node.on_receive(from, &msg.msg, now_local, &mut inner_fx);
        inner_fx.merge_into(fx, |m| MultiMsg { dest, msg: m });
    }

    fn on_neighbors_changed(
        &mut self,
        neighbors: &BTreeMap<NodeId, Weight>,
        now_local: f64,
        fx: &mut Effects<MultiMsg>,
    ) {
        for (&dest, node) in &mut self.instances {
            let mut inner_fx = Effects::detached();
            node.on_neighbors_changed(neighbors, now_local, &mut inner_fx);
            inner_fx.merge_into(fx, |m| MultiMsg { dest, msg: m });
        }
    }

    fn route_entry(&self) -> RouteEntry {
        // The single-entry view is only meaningful for single-destination
        // protocols; report the first instance's entry (the facade exposes
        // per-destination tables instead).
        self.instances
            .values()
            .next()
            .map_or_else(|| RouteEntry::no_route(self.id), LsrpNode::route_entry)
    }

    fn in_containment(&self) -> bool {
        self.instances.values().any(|n| n.state().ghost)
    }

    fn action_name(action: ActionId) -> &'static str {
        LsrpNode::action_name(action.for_instance(0))
    }

    fn is_maintenance(action: ActionId) -> bool {
        LsrpNode::is_maintenance(action.for_instance(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_core::actions;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn two_instance_node() -> MultiLsrpNode {
        let neighbors = BTreeMap::from([(v(1), 1)]);
        let timing = TimingConfig::paper_example(1.0);
        MultiLsrpNode::new(
            v(0),
            timing,
            [
                (v(0), LsrpState::fresh(v(0), v(0), neighbors.clone())),
                (v(1), LsrpState::fresh(v(0), v(1), neighbors)),
            ],
        )
    }

    #[test]
    fn instances_are_tagged_independently() {
        let mut node = two_instance_node();
        // Make the v1-instance want an S2 adoption: v1 offers 0 + 1.
        node.instance_mut(v(1)).unwrap().state_mut().absorb(
            v(1),
            &LsrpMsg {
                d: lsrp_graph::Distance::ZERO,
                p: v(1),
                ghost: false,
            },
        );
        let set = node.enabled_actions(0.0);
        assert_eq!(set.actions.len(), 1);
        let (id, _) = set.actions[0];
        assert_eq!(id.kind, actions::S2);
        assert_eq!(id.instance, instance_tag(v(1)));
        assert_eq!(id.param, Some(v(1)));
    }

    #[test]
    fn execute_routes_to_the_right_instance() {
        let mut node = two_instance_node();
        node.instance_mut(v(1)).unwrap().state_mut().absorb(
            v(1),
            &LsrpMsg {
                d: lsrp_graph::Distance::ZERO,
                p: v(1),
                ghost: false,
            },
        );
        let action = ActionId::with_param(actions::S2, v(1)).for_instance(instance_tag(v(1)));
        let mut fx = lsrp_sim::test_support::effects();
        node.execute(action, 0.0, &mut fx);
        assert!(fx.var_changed());
        assert_eq!(
            node.route_entry_for(v(1)).unwrap().distance,
            lsrp_graph::Distance::Finite(1)
        );
        // The v0-instance is untouched.
        assert_eq!(
            node.route_entry_for(v(0)).unwrap().distance,
            lsrp_graph::Distance::ZERO
        );
    }

    #[test]
    fn receive_is_demultiplexed_by_destination() {
        let mut node = two_instance_node();
        let mut fx = lsrp_sim::test_support::effects();
        node.on_receive(
            v(1),
            &MultiMsg {
                dest: v(1),
                msg: LsrpMsg {
                    d: lsrp_graph::Distance::ZERO,
                    p: v(1),
                    ghost: false,
                },
            },
            0.0,
            &mut fx,
        );
        assert!(fx.mirror_changed());
        assert_eq!(
            node.instance(v(1)).unwrap().state().mirror(v(1)).d,
            lsrp_graph::Distance::ZERO
        );
        assert_eq!(
            node.instance(v(0)).unwrap().state().mirror(v(1)).d,
            lsrp_graph::Distance::Infinite,
            "the other instance's mirrors are untouched"
        );
    }
}
