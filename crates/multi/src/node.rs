//! The per-node multiplexer: one LSRP instance per destination, dense.
//!
//! Three mechanisms keep per-event cost independent of the destination
//! count (DESIGN.md §10):
//!
//! * **Dense instances** — destinations are interned into a shared
//!   [`DestTable`] and the per-destination [`LsrpNode`]s live in a `Vec`
//!   indexed by [`DestId`], so demultiplexing is an array index instead of
//!   a `BTreeMap` walk.
//! * **Batched adverts** — instance broadcasts are staged in a per-node
//!   outbox ([`SendBatch`], latest advert wins per destination) and
//!   flushed by a zero-hold maintenance `FLUSH` action as *one* wire
//!   message per neighbor, so one engine delivery amortizes across every
//!   destination that changed at the same instant.
//! * **Dirty-instance scheduling** — each instance's enabled set is cached
//!   and recomputed only when the instance was touched (receive, execute,
//!   neighbor change, corruption) or its clock wakeup came due (tracked in
//!   a lazy min-heap), so guard re-evaluation visits O(dirty) instances
//!   instead of O(destinations).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use lsrp_core::{LsrpMsg, LsrpNode, LsrpState, TimingConfig};
use lsrp_graph::{NodeId, RouteEntry, Weight};
use lsrp_sim::{ActionId, Effects, EnabledSet, ProtocolNode, SendBatch};

use crate::dest::{DestId, DestTable};

/// Action kind of the batch-flush action: a zero-hold *maintenance*
/// action (transport bookkeeping, not a protocol step — excluded from
/// contamination and stabilization accounting) enabled exactly while the
/// outbox holds staged adverts. Well clear of the LSRP kinds (0..=5).
pub const FLUSH: u8 = u8::MAX;

/// A batch of destination-tagged adverts flushed as one wire message.
///
/// One batch per (sender, neighbor) pair and instant: the sender stages at
/// most one advert per destination (latest-wins — equivalent to sending
/// every copy over the FIFO link, since receipt is last-writer-wins mirror
/// absorption) and broadcasts the whole batch in a single engine message.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiMsg {
    /// The batched `(destination, advert)` pairs, at most one per
    /// destination, in staging order.
    pub adverts: Vec<(DestId, LsrpMsg)>,
}

/// The engine instance tag of a destination's LSRP instance.
///
/// Tag 0 is reserved for single-instance protocols (and the multi plane's
/// own `FLUSH` action), so destination `d` maps to `d.raw() + 1`.
///
/// # Panics
///
/// Panics for `NodeId::new(u32::MAX)`, whose tag would overflow `u32`.
pub fn instance_tag(dest: NodeId) -> u32 {
    dest.raw().checked_add(1).unwrap_or_else(|| {
        panic!("destination {dest} has no instance tag: NodeId(u32::MAX) + 1 overflows the u32 instance space")
    })
}

/// Inverse of [`instance_tag`].
///
/// # Panics
///
/// Panics for tag 0 (reserved for single-instance protocols).
pub fn dest_of_tag(instance: u32) -> NodeId {
    assert_ne!(
        instance, 0,
        "instance tag 0 is reserved for single-instance protocols, not a destination"
    );
    NodeId::new(instance - 1)
}

/// `f64` wakeup readings with a total order, for the wakeup min-heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Wake(f64);

impl Eq for Wake {}

impl PartialOrd for Wake {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Wake {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Cached per-instance evaluation results.
#[derive(Debug, Clone, Default)]
struct InstCache {
    /// The instance's enabled set (untagged), valid while the instance
    /// stays clean.
    set: EnabledSet,
    /// The instance's ghost flag as last synced (backs the O(1)
    /// containment count).
    ghost: bool,
    /// The wakeup reading represented by this instance's live heap entry,
    /// if any (lazy-deletion bookkeeping).
    heap_wake: Option<f64>,
}

/// The dirty-instance scheduler (interior-mutable: guard evaluation takes
/// `&self`, but refreshing caches is exactly what it is for).
///
/// Invariants:
/// * `cache[i].set` equals `instances[i].enabled_actions(now)` whenever
///   `i` is clean and no wakeup of `i` is due — every mutation path marks
///   the instance dirty before the engine's next guard evaluation, and
///   guards are time-dependent only through `wakeup_local`.
/// * `active` holds exactly the indices with non-empty cached action sets,
///   sorted ascending, so emission order matches the destination order the
///   pre-dense plane produced.
/// * every instance whose cache requests a wakeup has a live heap entry at
///   or before that reading (`heap_wake` marks the live entry; stale
///   entries are discarded lazily on pop).
#[derive(Debug, Clone, Default)]
struct Sched {
    cache: Vec<InstCache>,
    /// Indices awaiting recompute; each flagged at most once.
    dirty: Vec<u32>,
    is_dirty: Vec<bool>,
    /// Sorted indices of instances with non-empty cached action sets.
    active: Vec<u32>,
    /// Lazy min-heap of `(wakeup_local, instance)` entries.
    wakeups: BinaryHeap<Reverse<(Wake, u32)>>,
    /// Wakeup arms staged by [`Sched::recompute`] during a dirty drain
    /// and flushed by [`Sched::flush_wakeup_arms`]. Drained in place and
    /// reused, so steady-state maintenance passes allocate nothing; a
    /// bulk drain (every instance dirty after a topology change) flushes
    /// as one O(n) heap rebuild instead of n O(log n) pushes.
    arm_scratch: Vec<(Wake, u32)>,
    /// Number of instances whose synced ghost flag is set.
    ghosts: usize,
    /// Instance guard evaluations performed (the O(dirty) observable:
    /// clean instances cost nothing).
    evals: u64,
}

impl Sched {
    fn init(n: usize) -> Self {
        Sched {
            cache: (0..n).map(|_| InstCache::default()).collect(),
            dirty: (0..n as u32).collect(),
            is_dirty: vec![true; n],
            active: Vec::new(),
            wakeups: BinaryHeap::new(),
            arm_scratch: Vec::new(),
            ghosts: 0,
            evals: 0,
        }
    }

    fn mark_dirty(&mut self, idx: usize) {
        if !self.is_dirty[idx] {
            self.is_dirty[idx] = true;
            self.dirty.push(idx as u32);
        }
    }

    fn mark_all_dirty(&mut self) {
        for idx in 0..self.cache.len() {
            self.mark_dirty(idx);
        }
    }

    /// Syncs the ghost flags of dirty instances (cheap: one bool read per
    /// dirty instance, no guard evaluation) so the containment count is
    /// exact without consuming dirtiness.
    fn sync_ghosts(&mut self, instances: &[LsrpNode]) {
        for &idx in &self.dirty {
            let c = &mut self.cache[idx as usize];
            let g = instances[idx as usize].in_containment();
            if g != c.ghost {
                c.ghost = g;
                self.ghosts = if g { self.ghosts + 1 } else { self.ghosts - 1 };
            }
        }
    }

    /// Re-evaluates one instance's guards into its cache and updates the
    /// active list, ghost count, and wakeup heap.
    fn recompute(&mut self, instances: &[LsrpNode], idx: usize, now_local: f64) {
        self.evals += 1;
        let c = &mut self.cache[idx];
        c.set.clear();
        instances[idx].enabled_actions_into(now_local, &mut c.set);
        let g = instances[idx].in_containment();
        if g != c.ghost {
            c.ghost = g;
            self.ghosts = if g { self.ghosts + 1 } else { self.ghosts - 1 };
        }
        let has_actions = !c.set.actions.is_empty();
        match (has_actions, self.active.binary_search(&(idx as u32))) {
            (true, Err(i)) => self.active.insert(i, idx as u32),
            (false, Ok(i)) => {
                self.active.remove(i);
            }
            _ => {}
        }
        let c = &mut self.cache[idx];
        if let Some(w) = c.set.wakeup_local {
            if c.heap_wake.is_none_or(|hw| w < hw) {
                c.heap_wake = Some(w);
                self.arm_scratch.push((Wake(w), idx as u32));
            }
        }
    }

    /// Moves the wakeup arms staged by [`Sched::recompute`] into the
    /// heap. A handful push individually; a bulk batch (at least the
    /// heap's own size — the mark-all-dirty maintenance passes) rebuilds
    /// the heap in one O(n) heapify, dropping stale lazy-deletion
    /// entries while at it. Pop order only depends on the live-entry
    /// values, so the flush strategy can never change behavior.
    fn flush_wakeup_arms(&mut self) {
        if self.arm_scratch.is_empty() {
            return;
        }
        if self.arm_scratch.len() > 16 && self.arm_scratch.len() >= self.wakeups.len() {
            let mut entries = std::mem::take(&mut self.wakeups).into_vec();
            entries
                .retain(|&Reverse((Wake(w), idx))| self.cache[idx as usize].heap_wake == Some(w));
            entries.extend(self.arm_scratch.drain(..).map(Reverse));
            self.wakeups = BinaryHeap::from(entries);
        } else {
            for e in self.arm_scratch.drain(..) {
                self.wakeups.push(Reverse(e));
            }
        }
    }

    /// Recomputes every instance whose wakeup came due, discarding stale
    /// heap entries, then returns the earliest future wakeup (if any).
    fn service_wakeups(&mut self, instances: &[LsrpNode], now_local: f64) -> Option<f64> {
        while let Some(&Reverse((Wake(w), idx))) = self.wakeups.peek() {
            let i = idx as usize;
            if self.cache[i].heap_wake != Some(w) {
                self.wakeups.pop(); // superseded by an earlier entry
                continue;
            }
            let live = self.cache[i].set.wakeup_local == Some(w);
            if live && w > now_local {
                return Some(w); // earliest future wakeup
            }
            self.wakeups.pop();
            self.cache[i].heap_wake = None;
            if live {
                // Due: the guard is a function of the clock, re-evaluate.
                self.recompute(instances, i, now_local);
                self.flush_wakeup_arms();
            } else if let Some(w2) = self.cache[i].set.wakeup_local {
                // The cached wakeup moved; re-arm the heap for it.
                self.cache[i].heap_wake = Some(w2);
                self.wakeups.push(Reverse((Wake(w2), idx)));
            }
        }
        None
    }
}

/// One node running an independent LSRP instance per destination, stored
/// densely and scheduled by dirtiness (see the module docs).
///
/// Action ids are the inner ids retagged with
/// [`ActionId::for_instance`]`(`[`instance_tag`]`(dest))`, so each
/// instance's guards track their continuous enablement independently in
/// the engine.
#[derive(Debug, Clone)]
pub struct MultiLsrpNode {
    id: NodeId,
    dests: Arc<DestTable>,
    /// Indexed by [`DestId`].
    instances: Vec<LsrpNode>,
    outbox: SendBatch<DestId, LsrpMsg>,
    sched: RefCell<Sched>,
}

impl MultiLsrpNode {
    /// Creates a node with one instance per interned destination, from
    /// initial states aligned with the table's [`DestId`] order.
    pub fn new(
        id: NodeId,
        timing: TimingConfig,
        dests: Arc<DestTable>,
        states: impl IntoIterator<Item = LsrpState>,
    ) -> Self {
        let instances: Vec<LsrpNode> = states
            .into_iter()
            .zip(dests.iter())
            .map(|(state, (_, dest))| {
                assert_eq!(state.id, id, "instance state must belong to this node");
                assert_eq!(
                    state.dest, dest,
                    "states must align with the DestTable order"
                );
                LsrpNode::new(state, timing)
            })
            .collect();
        assert_eq!(
            instances.len(),
            dests.len(),
            "one initial state per interned destination"
        );
        let sched = RefCell::new(Sched::init(instances.len()));
        MultiLsrpNode {
            id,
            dests,
            instances,
            outbox: SendBatch::new(),
            sched,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The shared destination table.
    pub fn dest_table(&self) -> &Arc<DestTable> {
        &self.dests
    }

    /// The destinations this node routes toward (ascending).
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dests.nodes().iter().copied()
    }

    /// The instance for one destination.
    pub fn instance(&self, dest: NodeId) -> Option<&LsrpNode> {
        self.dests.id_of(dest).map(|d| &self.instances[d.index()])
    }

    /// Mutable instance access (state-corruption surface); marks the
    /// instance dirty so its guards are re-evaluated.
    pub fn instance_mut(&mut self, dest: NodeId) -> Option<&mut LsrpNode> {
        let d = self.dests.id_of(dest)?;
        self.sched.get_mut().mark_dirty(d.index());
        Some(&mut self.instances[d.index()])
    }

    /// The route entry toward `dest`.
    pub fn route_entry_for(&self, dest: NodeId) -> Option<RouteEntry> {
        self.instance(dest).map(LsrpNode::route_entry)
    }

    /// How many instance guard evaluations the scheduler has performed.
    /// Grows with *touched* instances, not with the destination count —
    /// the observable the O(dirty) scheduling tests pin.
    pub fn instance_evals(&self) -> u64 {
        self.sched.borrow().evals
    }
}

impl ProtocolNode for MultiLsrpNode {
    type Msg = MultiMsg;

    fn enabled_actions(&self, now_local: f64) -> EnabledSet {
        let mut out = EnabledSet::none();
        self.enabled_actions_into(now_local, &mut out);
        out
    }

    fn enabled_actions_into(&self, now_local: f64, out: &mut EnabledSet) {
        let mut sched = self.sched.borrow_mut();
        let s = &mut *sched;
        // 1) Refresh the caches of touched instances, then arm their
        //    wakeups in one batch.
        while let Some(idx) = s.dirty.pop() {
            s.is_dirty[idx as usize] = false;
            s.recompute(&self.instances, idx as usize, now_local);
        }
        s.flush_wakeup_arms();
        // 2) Re-evaluate instances whose clock wakeup came due; the rest
        //    of the heap yields the node-level min-wakeup.
        let next_wake = s.service_wakeups(&self.instances, now_local);
        // 3) Emit every cached enabled action, tagged, in destination
        //    order (the engine treats unreported actions as disabled, so
        //    clean-but-armed instances must re-emit from cache).
        for &idx in &s.active {
            let tag = instance_tag(self.dests.node_of(DestId::from_index(idx as usize)));
            let c = &s.cache[idx as usize];
            for &(id, hold) in &c.set.actions {
                let tagged = id.for_instance(tag);
                match c.set.fingerprint_of(id) {
                    Some(fp) => {
                        out.enable_with_fingerprint(tagged, hold, fp);
                    }
                    None => {
                        out.enable(tagged, hold);
                    }
                }
            }
        }
        if let Some(w) = next_wake {
            out.wake_at(w);
        }
        // 4) While adverts are staged, the zero-hold FLUSH action is
        //    enabled: it fires at the same instant, after every same-time
        //    guard already queued has contributed its adverts.
        if !self.outbox.is_empty() {
            out.enable(ActionId::plain(FLUSH), 0.0);
        }
    }

    fn execute(&mut self, action: ActionId, now_local: f64, fx: &mut Effects<MultiMsg>) {
        if action.kind == FLUSH {
            fx.send_batched(&mut self.outbox, |adverts| MultiMsg { adverts });
            return;
        }
        let dest = dest_of_tag(action.instance);
        let d = self
            .dests
            .id_of(dest)
            .expect("engine only fires actions we reported");
        let mut inner_fx = Effects::detached();
        self.instances[d.index()].execute(action.for_instance(0), now_local, &mut inner_fx);
        inner_fx.merge_batched_into(fx, &mut self.outbox, d);
        self.sched.get_mut().mark_dirty(d.index());
    }

    fn on_receive(
        &mut self,
        from: NodeId,
        msg: &MultiMsg,
        now_local: f64,
        fx: &mut Effects<MultiMsg>,
    ) {
        for (d, advert) in &msg.adverts {
            let Some(inst) = self.instances.get_mut(d.index()) else {
                continue; // unknown destination (mismatched configuration)
            };
            let mut inner_fx = Effects::detached();
            inst.on_receive(from, advert, now_local, &mut inner_fx);
            inner_fx.merge_batched_into(fx, &mut self.outbox, *d);
            self.sched.get_mut().mark_dirty(d.index());
        }
    }

    fn on_neighbors_changed(
        &mut self,
        neighbors: &BTreeMap<NodeId, Weight>,
        now_local: f64,
        fx: &mut Effects<MultiMsg>,
    ) {
        for (i, inst) in self.instances.iter_mut().enumerate() {
            let mut inner_fx = Effects::detached();
            inst.on_neighbors_changed(neighbors, now_local, &mut inner_fx);
            inner_fx.merge_batched_into(fx, &mut self.outbox, DestId::from_index(i));
        }
        self.sched.get_mut().mark_all_dirty();
    }

    fn advert_count(msg: &MultiMsg) -> u64 {
        msg.adverts.len() as u64
    }

    fn route_entry(&self) -> RouteEntry {
        // The single-entry view reports the *primary* destination (lowest
        // interned id — instance 0 of the sorted table), matching the
        // harness facade's `destination()`.
        self.instances
            .first()
            .map_or_else(|| RouteEntry::no_route(self.id), LsrpNode::route_entry)
    }

    fn route_entry_toward(&self, dest: NodeId) -> Option<RouteEntry> {
        // Per-hop data-plane lookup: packets toward any configured
        // destination follow that destination's own tree.
        self.route_entry_for(dest)
    }

    fn in_containment(&self) -> bool {
        // Called by the engine's view refresh *before* guards re-evaluate,
        // so sync dirty instances' ghost flags lazily (O(dirty)).
        let mut sched = self.sched.borrow_mut();
        sched.sync_ghosts(&self.instances);
        sched.ghosts > 0
    }

    fn action_name(action: ActionId) -> &'static str {
        if action.kind == FLUSH {
            "FLUSH"
        } else {
            LsrpNode::action_name(action.for_instance(0))
        }
    }

    fn is_maintenance(action: ActionId) -> bool {
        action.kind == FLUSH || LsrpNode::is_maintenance(action.for_instance(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_core::actions;
    use proptest::prelude::*;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn two_instance_node() -> MultiLsrpNode {
        let neighbors = BTreeMap::from([(v(1), 1)]);
        let timing = TimingConfig::paper_example(1.0);
        let dests = DestTable::new([v(0), v(1)]);
        MultiLsrpNode::new(
            v(0),
            timing,
            dests,
            [
                LsrpState::fresh(v(0), v(0), neighbors.clone()),
                LsrpState::fresh(v(0), v(1), neighbors),
            ],
        )
    }

    #[test]
    fn instances_are_tagged_independently() {
        let mut node = two_instance_node();
        // Make the v1-instance want an S2 adoption: v1 offers 0 + 1.
        node.instance_mut(v(1)).unwrap().state_mut().absorb(
            v(1),
            &LsrpMsg {
                d: lsrp_graph::Distance::ZERO,
                p: v(1),
                ghost: false,
            },
        );
        let set = node.enabled_actions(0.0);
        assert_eq!(set.actions.len(), 1);
        let (id, _) = set.actions[0];
        assert_eq!(id.kind, actions::S2);
        assert_eq!(id.instance, instance_tag(v(1)));
        assert_eq!(id.param, Some(v(1)));
    }

    #[test]
    fn execute_stages_the_advert_and_flush_broadcasts_it() {
        let mut node = two_instance_node();
        node.instance_mut(v(1)).unwrap().state_mut().absorb(
            v(1),
            &LsrpMsg {
                d: lsrp_graph::Distance::ZERO,
                p: v(1),
                ghost: false,
            },
        );
        let action = ActionId::with_param(actions::S2, v(1)).for_instance(instance_tag(v(1)));
        let mut fx = lsrp_sim::test_support::effects();
        node.execute(action, 0.0, &mut fx);
        assert!(fx.var_changed());
        assert_eq!(
            node.route_entry_for(v(1)).unwrap().distance,
            lsrp_graph::Distance::Finite(1)
        );
        // The v0-instance is untouched.
        assert_eq!(
            node.route_entry_for(v(0)).unwrap().distance,
            lsrp_graph::Distance::ZERO
        );
        // The advert was staged, not sent; FLUSH is now enabled.
        let set = node.enabled_actions(0.0);
        assert!(set.is_enabled(ActionId::plain(FLUSH)));
        let mut fx = lsrp_sim::test_support::effects();
        node.execute(ActionId::plain(FLUSH), 0.0, &mut fx);
        // And after the flush the outbox is empty again.
        let set = node.enabled_actions(0.0);
        assert!(!set.is_enabled(ActionId::plain(FLUSH)));
    }

    #[test]
    fn receive_is_demultiplexed_by_destination() {
        let mut node = two_instance_node();
        let d1 = node.dest_table().id_of(v(1)).unwrap();
        let mut fx = lsrp_sim::test_support::effects();
        node.on_receive(
            v(1),
            &MultiMsg {
                adverts: vec![(
                    d1,
                    LsrpMsg {
                        d: lsrp_graph::Distance::ZERO,
                        p: v(1),
                        ghost: false,
                    },
                )],
            },
            0.0,
            &mut fx,
        );
        assert!(fx.mirror_changed());
        assert_eq!(
            node.instance(v(1)).unwrap().state().mirror(v(1)).d,
            lsrp_graph::Distance::ZERO
        );
        assert_eq!(
            node.instance(v(0)).unwrap().state().mirror(v(1)).d,
            lsrp_graph::Distance::Infinite,
            "the other instance's mirrors are untouched"
        );
    }

    #[test]
    fn route_entry_reports_the_primary_destination() {
        // Regression (satellite): the facade entry must be the *lowest
        // configured id*'s instance, not "whatever instance comes first".
        let neighbors = BTreeMap::from([(v(1), 1)]);
        let timing = TimingConfig::paper_example(1.0);
        // Intern in scrambled order; the table sorts, so primary is v0.
        let dests = DestTable::new([v(3), v(0)]);
        let mut s0 = LsrpState::fresh(v(1), v(0), neighbors.clone());
        s0.d = lsrp_graph::Distance::Finite(7);
        let mut s3 = LsrpState::fresh(v(1), v(3), neighbors);
        s3.d = lsrp_graph::Distance::Finite(9);
        let node = MultiLsrpNode::new(v(1), timing, dests, [s0, s3]);
        assert_eq!(
            node.route_entry().distance,
            lsrp_graph::Distance::Finite(7),
            "facade entry is the primary (lowest-id) destination's"
        );
        assert_eq!(node.route_entry(), node.route_entry_for(v(0)).unwrap());
    }

    #[test]
    fn clean_instances_are_not_reevaluated() {
        let mut node = two_instance_node();
        let _ = node.enabled_actions(0.0); // initial full evaluation
        let baseline = node.instance_evals();
        let _ = node.enabled_actions(0.0);
        assert_eq!(node.instance_evals(), baseline, "clean scan costs nothing");
        // Touch one instance: exactly one recompute.
        node.instance_mut(v(1)).unwrap();
        let _ = node.enabled_actions(0.0);
        assert_eq!(node.instance_evals(), baseline + 1);
    }

    #[test]
    #[should_panic(expected = "overflows the u32 instance space")]
    fn instance_tag_overflow_panics() {
        let _ = instance_tag(NodeId::new(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "reserved for single-instance protocols")]
    fn dest_of_tag_zero_panics() {
        let _ = dest_of_tag(0);
    }

    proptest! {
        #[test]
        fn tag_roundtrip(raw in 0..u32::MAX) {
            let dest = NodeId::new(raw);
            let tag = instance_tag(dest);
            prop_assert!(tag != 0, "tag 0 stays reserved");
            prop_assert_eq!(dest_of_tag(tag), dest);
        }
    }
}
