//! The multi-destination simulation facade.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use lsrp_core::{LsrpState, Mirror, TimingConfig};
use lsrp_graph::{Distance, Graph, NodeId, RouteTable, Weight};
use lsrp_sim::{Engine, EngineConfig, ForgedAdvert, HarnessProtocol, SimHarness};

use crate::dest::DestTable;
use crate::node::MultiLsrpNode;

/// Metadata carried by the multi-destination harness: the configured
/// destination list, the shared wave timing, the interned destination
/// table, and a scratch route table reused by per-destination snapshots.
#[derive(Debug, Clone)]
pub struct MultiMeta {
    /// The destinations configured at build time (failed destinations are
    /// filtered out by [`MultiLsrpSimulationExt::destinations`]).
    pub destinations: Vec<NodeId>,
    /// The shared wave timing.
    pub timing: TimingConfig,
    dest_table: Arc<DestTable>,
    /// Reused by [`MultiLsrpSimulationExt::routes_correct_for`] and
    /// friends so repeated correctness checks refill one table instead of
    /// rebuilding a fresh one per call.
    scratch: RefCell<RouteTable>,
}

impl MultiMeta {
    pub(crate) fn new(destinations: Vec<NodeId>, timing: TimingConfig) -> Self {
        let dest_table = DestTable::new(destinations.iter().copied());
        MultiMeta {
            destinations,
            timing,
            dest_table,
            scratch: RefCell::new(RouteTable::new()),
        }
    }

    /// The interned destination table shared by every node.
    pub fn dest_table(&self) -> &Arc<DestTable> {
        &self.dest_table
    }
}

impl HarnessProtocol for MultiLsrpNode {
    const NAME: &'static str = "LSRP-MULTI";
    type Meta = MultiMeta;

    fn corrupt_distance(&mut self, d: Distance, dest: NodeId) {
        if let Some(i) = self.instance_mut(dest) {
            i.corrupt_distance(d, dest);
        }
    }

    fn poison_mirror(&mut self, about: NodeId, advert: ForgedAdvert, dest: NodeId) {
        if let Some(i) = self.instance_mut(dest) {
            i.poison_mirror(about, advert, dest);
        }
    }

    fn inject_route(&mut self, d: Distance, p: NodeId, dest: NodeId) {
        if let Some(i) = self.instance_mut(dest) {
            i.inject_route(d, p, dest);
        }
    }
}

/// Builder for [`MultiLsrpSimulation`].
#[derive(Debug, Clone)]
pub struct MultiLsrpSimulationBuilder {
    graph: Graph,
    destinations: Vec<NodeId>,
    timing: TimingConfig,
    engine: EngineConfig,
}

impl MultiLsrpSimulationBuilder {
    /// Sets wave timing (shared by all instances).
    #[must_use]
    pub fn timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the engine configuration.
    #[must_use]
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine = config;
        self
    }

    /// Shortcut for the engine seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Builds the simulation, every instance starting at its canonical
    /// legitimate state with consistent mirrors.
    ///
    /// # Panics
    ///
    /// Panics if a destination is not a node of the graph, the destination
    /// list is empty, or the timing violates the wave-speed constraints.
    pub fn build(self) -> MultiLsrpSimulation {
        assert!(
            !self.destinations.is_empty(),
            "need at least one destination"
        );
        for &d in &self.destinations {
            assert!(
                self.graph.has_node(d),
                "destination {d} is not in the graph"
            );
        }
        self.timing
            .validate(self.engine.clocks.rho(), self.engine.link.delay_max)
            .expect("LSRP timing must satisfy the wave-speed constraints");

        let meta = MultiMeta::new(self.destinations, self.timing);
        let dest_table = Arc::clone(meta.dest_table());
        // Per destination (in DestId order): the legitimate table, used
        // for states and consistent mirrors. The prepared states are
        // consumed on first spawn — a node (re)joining later starts
        // *fresh*, so it recomputes, broadcasts, and its neighbors learn
        // it exists (matching the single-destination builder).
        let tables: Vec<RouteTable> = dest_table
            .nodes()
            .iter()
            .map(|&d| RouteTable::legitimate(&self.graph, d))
            .collect();
        let mut prepared: BTreeMap<NodeId, Vec<LsrpState>> = self
            .graph
            .nodes()
            .map(|id| {
                let neighbors: BTreeMap<NodeId, Weight> = self.graph.neighbors(id).collect();
                let states = dest_table
                    .iter()
                    .map(|(di, dest)| {
                        let table = &tables[di.index()];
                        let mut s = LsrpState::fresh(id, dest, neighbors.clone());
                        if let Some(e) = table.entry(id) {
                            s.d = e.distance;
                            s.p = e.parent;
                        }
                        for k in neighbors.keys() {
                            let m = table.entry(*k).map_or(Mirror::unknown(*k), |e| Mirror {
                                d: e.distance,
                                p: e.parent,
                                ghost: false,
                            });
                            s.mirrors.insert(*k, m);
                        }
                        s
                    })
                    .collect();
                (id, states)
            })
            .collect();
        let timing = self.timing;
        let engine = Engine::new(self.graph, self.engine, move |id, neighbors| {
            let states: Vec<LsrpState> = prepared.remove(&id).unwrap_or_else(|| {
                dest_table
                    .iter()
                    .map(|(_, dest)| LsrpState::fresh(id, dest, neighbors.clone()))
                    .collect()
            });
            let states = states.into_iter().map(|mut s| {
                s.set_neighbors(neighbors.clone());
                s
            });
            MultiLsrpNode::new(id, timing, Arc::clone(&dest_table), states)
        });
        let settle = match timing.syn_period {
            Some(p) => 2.0 * p + 1.0,
            None => 0.0,
        };
        // The harness's single destination is the primary (lowest id); the
        // full list lives in the metadata.
        let primary = meta
            .dest_table()
            .primary()
            .expect("destination list is non-empty");
        MultiLsrpSimulation::from_parts(engine, primary, settle, meta)
    }
}

/// A running multi-destination LSRP network.
///
/// The harness's single-destination surface (`destination()`,
/// `route_table()`, `corrupt_distance()`, …) targets the *primary*
/// destination — the lowest configured id; the per-destination surface
/// lives on [`MultiLsrpSimulationExt`].
pub type MultiLsrpSimulation = SimHarness<MultiLsrpNode>;

/// Multi-destination operations of [`MultiLsrpSimulation`].
pub trait MultiLsrpSimulationExt {
    /// Starts building a simulation routing toward every destination in
    /// `destinations`.
    fn builder(graph: Graph, destinations: Vec<NodeId>) -> MultiLsrpSimulationBuilder;

    /// The destinations being routed toward (failed ones excluded).
    fn destinations(&self) -> Vec<NodeId>;

    /// The shared wave timing.
    fn timing(&self) -> &TimingConfig;

    /// The route table toward one destination.
    ///
    /// The primary destination is served straight from the engine's dense
    /// [`lsrp_sim::RouteView`] (maintained incrementally, no per-node
    /// walk); other destinations are snapshot through the cached scratch
    /// table in [`MultiMeta`].
    fn route_table_for(&self, dest: NodeId) -> RouteTable;

    /// Whether the table toward `dest` matches Dijkstra ground truth.
    fn routes_correct_for(&self, dest: NodeId) -> bool;

    /// Whether *every* destination's table is correct.
    fn all_routes_correct(&self) -> bool;

    /// Corrupts the distance of `node`'s instance toward `dest`.
    fn corrupt_instance_distance(&mut self, node: NodeId, dest: NodeId, d: Distance);

    /// Corrupts the *entire* routing state of `node`: every instance's
    /// distance and parent set to arbitrary values via `f(dest)`.
    fn corrupt_all_instances(&mut self, node: NodeId, f: impl FnMut(NodeId) -> (Distance, NodeId));
}

impl MultiLsrpSimulationExt for MultiLsrpSimulation {
    fn builder(graph: Graph, destinations: Vec<NodeId>) -> MultiLsrpSimulationBuilder {
        let engine = EngineConfig::default();
        MultiLsrpSimulationBuilder {
            graph,
            destinations,
            timing: TimingConfig::paper_example(engine.link.delay_max),
            engine,
        }
    }

    fn destinations(&self) -> Vec<NodeId> {
        self.meta()
            .destinations
            .iter()
            .copied()
            .filter(|&d| self.graph().has_node(d))
            .collect()
    }

    fn timing(&self) -> &TimingConfig {
        &self.meta().timing
    }

    fn route_table_for(&self, dest: NodeId) -> RouteTable {
        if dest == self.destination() {
            // The facade `route_entry()` reports the primary destination
            // (satellite fix above), so the engine's view *is* this table.
            return self.engine().route_table();
        }
        let mut t = self.meta().scratch.borrow_mut();
        fill_table(self, dest, &mut t);
        t.clone()
    }

    fn routes_correct_for(&self, dest: NodeId) -> bool {
        let mut t = self.meta().scratch.borrow_mut();
        fill_table(self, dest, &mut t);
        t.is_correct(self.graph(), dest)
    }

    fn all_routes_correct(&self) -> bool {
        self.destinations()
            .iter()
            .all(|&d| self.routes_correct_for(d))
    }

    fn corrupt_instance_distance(&mut self, node: NodeId, dest: NodeId, d: Distance) {
        self.engine_mut().with_node_mut(node, |n| {
            if let Some(i) = n.instance_mut(dest) {
                i.state_mut().d = d;
            }
        });
    }

    fn corrupt_all_instances(
        &mut self,
        node: NodeId,
        mut f: impl FnMut(NodeId) -> (Distance, NodeId),
    ) {
        let dests = self.destinations();
        self.engine_mut().with_node_mut(node, |n| {
            for dest in dests {
                if let Some(i) = n.instance_mut(dest) {
                    let (d, p) = f(dest);
                    let s = i.state_mut();
                    s.d = d;
                    s.p = p;
                }
            }
        });
    }
}

/// Refills `out` with the current per-node entries toward `dest` in one
/// dense pass over the engine's slots.
fn fill_table(sim: &MultiLsrpSimulation, dest: NodeId, out: &mut RouteTable) {
    out.clear();
    out.extend(sim.graph().nodes().filter_map(|v| {
        sim.engine()
            .node(v)
            .and_then(|n| n.route_entry_for(dest))
            .map(|e| (v, e))
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_graph::generators;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn all_pairs_tables_start_correct_and_quiet() {
        let g = generators::grid(3, 3, 1);
        let dests: Vec<NodeId> = g.nodes().collect();
        let mut sim = MultiLsrpSimulation::builder(g, dests).build();
        let report = sim.run_to_quiescence(1_000.0);
        assert!(report.quiescent);
        assert_eq!(sim.engine().trace().total_actions(), 0);
        assert!(sim.all_routes_correct());
    }

    #[test]
    fn corruption_in_one_tree_leaves_others_untouched() {
        let g = generators::grid(4, 4, 1);
        let dests = vec![v(0), v(15)];
        let mut sim = MultiLsrpSimulation::builder(g, dests).build();
        sim.corrupt_instance_distance(v(5), v(0), Distance::ZERO);
        let report = sim.run_to_quiescence(10_000.0);
        assert!(report.quiescent);
        assert!(sim.all_routes_correct());
        // Only the v0-instance acted: every executed protocol action
        // carries the v0 instance tag (maintenance records — the batch
        // FLUSH — are transport, not protocol steps).
        for r in sim
            .engine()
            .trace()
            .actions
            .iter()
            .filter(|r| !r.maintenance)
        {
            assert_eq!(r.action.instance, v(0).raw() + 1, "{r:?}");
        }
    }

    #[test]
    fn snapshot_paths_match_the_naive_rebuild() {
        // Satellite: route_table_for serves the primary from the engine's
        // RouteView and the rest through the cached scratch table; both
        // must equal a per-node rebuild.
        let g = generators::grid(4, 4, 1);
        let dests = vec![v(0), v(7), v(15)];
        let mut sim = MultiLsrpSimulation::builder(g, dests).build();
        sim.corrupt_all_instances(v(5), |_| (Distance::ZERO, v(5)));
        assert!(sim.run_to_quiescence(100_000.0).quiescent);
        for d in sim.destinations() {
            let naive: RouteTable = sim
                .graph()
                .nodes()
                .filter_map(|n| {
                    sim.engine()
                        .node(n)
                        .and_then(|node| node.route_entry_for(d))
                        .map(|e| (n, e))
                })
                .collect();
            assert_eq!(sim.route_table_for(d), naive, "dest {d}");
            assert_eq!(
                sim.routes_correct_for(d),
                naive.is_correct(sim.graph(), d),
                "dest {d}"
            );
        }
    }

    #[test]
    fn scans_are_o_dirty_not_o_destinations() {
        // Acceptance pin: a single-instance corruption on a node routing
        // toward many destinations must not evaluate (or execute) the
        // other instances' guards. With no other activity, the recovery
        // work is *identical* whatever the destination count, so the
        // instance-evaluation ledger must match exactly between a 4- and
        // a 16-destination run of the same fault.
        let evals_after_recovery = |dests: Vec<NodeId>| {
            let g = generators::grid(4, 4, 1);
            let mut sim = MultiLsrpSimulation::builder(g, dests).build();
            assert!(sim.run_to_quiescence(10_000.0).quiescent);
            let total = |s: &MultiLsrpSimulation| -> u64 {
                s.graph()
                    .nodes()
                    .map(|n| s.engine().node(n).unwrap().instance_evals())
                    .sum()
            };
            let baseline = total(&sim);
            sim.corrupt_instance_distance(v(5), v(0), Distance::ZERO);
            assert!(sim.run_to_quiescence(10_000.0).quiescent);
            assert!(sim.all_routes_correct());
            // No foreign-tag protocol action executed anywhere.
            for r in sim
                .engine()
                .trace()
                .actions
                .iter()
                .filter(|r| !r.maintenance)
            {
                assert_eq!(r.action.instance, v(0).raw() + 1, "{r:?}");
            }
            total(&sim) - baseline
        };
        let few = evals_after_recovery(vec![v(0), v(3), v(12), v(15)]);
        let many = evals_after_recovery((0..16).map(v).collect());
        assert_eq!(
            few, many,
            "recovery cost must depend on dirty instances, not the destination count"
        );
        assert!(few > 0, "the corrupted tree did recover");
    }

    #[test]
    fn batching_ledger_counts_messages_and_adverts() {
        let g = generators::grid(4, 4, 1);
        let dests: Vec<NodeId> = (0..16).map(v).collect();
        let mut sim = MultiLsrpSimulation::builder(g, dests).build();
        sim.corrupt_all_instances(v(5), |_| (Distance::ZERO, v(5)));
        assert!(sim.run_to_quiescence(100_000.0).quiescent);
        assert!(sim.all_routes_correct());
        let stats = sim.stats();
        assert!(
            stats.adverts_sent > stats.messages_sent,
            "all-instance recovery batches several adverts per wire message \
             (adverts {} vs messages {})",
            stats.adverts_sent,
            stats.messages_sent
        );
        assert!(stats.adverts_delivered > stats.messages_delivered);
    }

    #[test]
    fn full_node_corruption_recovers_every_tree() {
        let g = generators::grid(4, 4, 1);
        let dests: Vec<NodeId> = vec![v(0), v(3), v(12), v(15)];
        let mut sim = MultiLsrpSimulation::builder(g, dests).build();
        sim.corrupt_all_instances(v(5), |_| (Distance::ZERO, v(5)));
        let report = sim.run_to_quiescence(100_000.0);
        assert!(report.quiescent);
        assert!(sim.all_routes_correct());
    }

    #[test]
    fn fail_stop_heals_all_remaining_trees() {
        let g = generators::grid(4, 4, 1);
        let dests: Vec<NodeId> = vec![v(0), v(15), v(5)];
        let mut sim = MultiLsrpSimulation::builder(g, dests).build();
        sim.fail_node(v(5)).unwrap();
        assert_eq!(sim.destinations(), vec![v(0), v(15)]);
        let report = sim.run_to_quiescence(100_000.0);
        assert!(report.quiescent);
        assert!(sim.all_routes_correct());
    }

    #[test]
    fn link_churn_updates_every_tree() {
        let g = generators::grid(3, 3, 1);
        let dests: Vec<NodeId> = g.nodes().collect();
        let mut sim = MultiLsrpSimulation::builder(g, dests).build();
        sim.fail_edge(v(0), v(1)).unwrap();
        sim.join_edge(v(0), v(4), 1).unwrap();
        let report = sim.run_to_quiescence(100_000.0);
        assert!(report.quiescent);
        assert!(sim.all_routes_correct());
    }

    #[test]
    #[should_panic(expected = "need at least one destination")]
    fn empty_destinations_rejected() {
        let _ = MultiLsrpSimulation::builder(generators::path(2, 1), vec![]).build();
    }
}
