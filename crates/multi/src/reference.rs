//! The pre-dense multi-destination plane, preserved as a behavioral
//! oracle.
//!
//! [`ReferenceMultiNode`] is the architecture the dense plane replaced:
//! every node keeps a `BTreeMap<NodeId, LsrpNode>` of per-destination
//! instances, every advert travels as its own wire message, and guard
//! evaluation rescans *all* instances on every event. It is kept (not as a
//! museum piece, but as an executable specification) so the equivalence
//! suite can run the old semantics against the new plane across seeds ×
//! topologies × fault schedules and assert identical quiescence verdicts
//! and final per-destination route tables — and so benchmarks can quote
//! the batching win in delivered messages against a live baseline.

use std::collections::BTreeMap;

use lsrp_core::{LsrpMsg, LsrpNode, LsrpState, Mirror, TimingConfig};
use lsrp_graph::{Distance, Graph, NodeId, RouteEntry, RouteTable, Weight};
use lsrp_sim::{
    ActionId, Effects, EnabledSet, Engine, EngineConfig, ForgedAdvert, HarnessProtocol,
    ProtocolNode, SimHarness,
};

use crate::node::{dest_of_tag, instance_tag};
use crate::simulation::MultiMeta;

/// One destination's advert as its own wire message (the pre-batching
/// format: one engine delivery per destination per neighbor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferenceMsg {
    /// Which destination's routing computation this belongs to.
    pub dest: NodeId,
    /// The inner LSRP payload.
    pub msg: LsrpMsg,
}

/// One node of the pre-dense plane: per-destination instances in a
/// `BTreeMap`, full scans, unbatched sends.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceMultiNode {
    id: NodeId,
    instances: BTreeMap<NodeId, LsrpNode>,
}

impl ReferenceMultiNode {
    /// Creates a node with one instance per destination.
    pub fn new(
        id: NodeId,
        timing: TimingConfig,
        states: impl IntoIterator<Item = (NodeId, LsrpState)>,
    ) -> Self {
        let instances = states
            .into_iter()
            .map(|(dest, state)| {
                assert_eq!(state.id, id, "instance state must belong to this node");
                assert_eq!(state.dest, dest, "instance keyed by its destination");
                (dest, LsrpNode::new(state, timing))
            })
            .collect();
        ReferenceMultiNode { id, instances }
    }

    /// Mutable instance access (state-corruption surface).
    pub fn instance_mut(&mut self, dest: NodeId) -> Option<&mut LsrpNode> {
        self.instances.get_mut(&dest)
    }

    /// The route entry toward `dest`.
    pub fn route_entry_for(&self, dest: NodeId) -> Option<RouteEntry> {
        self.instances.get(&dest).map(LsrpNode::route_entry)
    }
}

impl ProtocolNode for ReferenceMultiNode {
    type Msg = ReferenceMsg;

    fn enabled_actions(&self, now_local: f64) -> EnabledSet {
        let mut out = EnabledSet::none();
        self.enabled_actions_into(now_local, &mut out);
        out
    }

    fn enabled_actions_into(&self, now_local: f64, out: &mut EnabledSet) {
        // The full scan the dense plane eliminated: every instance,
        // every evaluation.
        let mut inner = EnabledSet::none();
        for (&dest, node) in &self.instances {
            inner.clear();
            node.enabled_actions_into(now_local, &mut inner);
            let tag = instance_tag(dest);
            for &(id, hold) in &inner.actions {
                let tagged = id.for_instance(tag);
                match inner.fingerprint_of(id) {
                    Some(fp) => {
                        out.enable_with_fingerprint(tagged, hold, fp);
                    }
                    None => {
                        out.enable(tagged, hold);
                    }
                }
            }
            if let Some(w) = inner.wakeup_local {
                out.wake_at(w);
            }
        }
    }

    fn execute(&mut self, action: ActionId, now_local: f64, fx: &mut Effects<ReferenceMsg>) {
        let dest = dest_of_tag(action.instance);
        let node = self
            .instances
            .get_mut(&dest)
            .expect("engine only fires actions we reported");
        let mut inner_fx = Effects::detached();
        node.execute(action.for_instance(0), now_local, &mut inner_fx);
        inner_fx.merge_into(fx, |msg| ReferenceMsg { dest, msg });
    }

    fn on_receive(
        &mut self,
        from: NodeId,
        msg: &ReferenceMsg,
        now_local: f64,
        fx: &mut Effects<ReferenceMsg>,
    ) {
        let Some(node) = self.instances.get_mut(&msg.dest) else {
            return; // unknown destination (e.g. mismatched configuration)
        };
        let dest = msg.dest;
        let mut inner_fx = Effects::detached();
        node.on_receive(from, &msg.msg, now_local, &mut inner_fx);
        inner_fx.merge_into(fx, |m| ReferenceMsg { dest, msg: m });
    }

    fn on_neighbors_changed(
        &mut self,
        neighbors: &BTreeMap<NodeId, Weight>,
        now_local: f64,
        fx: &mut Effects<ReferenceMsg>,
    ) {
        for (&dest, node) in &mut self.instances {
            let mut inner_fx = Effects::detached();
            node.on_neighbors_changed(neighbors, now_local, &mut inner_fx);
            inner_fx.merge_into(fx, |m| ReferenceMsg { dest, msg: m });
        }
    }

    fn route_entry(&self) -> RouteEntry {
        // BTreeMap iteration is id-ascending, so "first instance" is the
        // primary (lowest-id) destination — same facade as the dense plane.
        self.instances
            .values()
            .next()
            .map_or_else(|| RouteEntry::no_route(self.id), LsrpNode::route_entry)
    }

    fn route_entry_toward(&self, dest: NodeId) -> Option<RouteEntry> {
        self.route_entry_for(dest)
    }

    fn in_containment(&self) -> bool {
        self.instances.values().any(|n| n.state().ghost)
    }

    fn action_name(action: ActionId) -> &'static str {
        LsrpNode::action_name(action.for_instance(0))
    }

    fn is_maintenance(action: ActionId) -> bool {
        LsrpNode::is_maintenance(action.for_instance(0))
    }
}

impl HarnessProtocol for ReferenceMultiNode {
    const NAME: &'static str = "LSRP-MULTI-REF";
    type Meta = MultiMeta;

    fn corrupt_distance(&mut self, d: Distance, dest: NodeId) {
        if let Some(i) = self.instance_mut(dest) {
            i.corrupt_distance(d, dest);
        }
    }

    fn poison_mirror(&mut self, about: NodeId, advert: ForgedAdvert, dest: NodeId) {
        if let Some(i) = self.instance_mut(dest) {
            i.poison_mirror(about, advert, dest);
        }
    }

    fn inject_route(&mut self, d: Distance, p: NodeId, dest: NodeId) {
        if let Some(i) = self.instance_mut(dest) {
            i.inject_route(d, p, dest);
        }
    }
}

/// A running pre-dense multi-destination network (the oracle half of the
/// equivalence suite).
pub type ReferenceMultiSimulation = SimHarness<ReferenceMultiNode>;

/// The oracle's facade: the subset of [`crate::MultiLsrpSimulationExt`]
/// the equivalence suite and baseline benchmarks need.
pub trait ReferenceMultiSimulationExt {
    /// Builds a simulation routing toward every destination, each instance
    /// starting at its canonical legitimate state with consistent mirrors
    /// (the same start the dense builder produces).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the dense builder (empty or
    /// out-of-graph destinations, invalid timing).
    fn reference(graph: Graph, destinations: Vec<NodeId>, engine: EngineConfig) -> Self;

    /// The destinations being routed toward (failed ones excluded).
    fn destinations(&self) -> Vec<NodeId>;

    /// The route table toward one destination (per-call rebuild — the
    /// pre-dense behavior).
    fn route_table_for(&self, dest: NodeId) -> RouteTable;

    /// Whether *every* destination's table is correct.
    fn all_routes_correct(&self) -> bool;

    /// Corrupts the distance of `node`'s instance toward `dest`.
    fn corrupt_instance_distance(&mut self, node: NodeId, dest: NodeId, d: Distance);

    /// Corrupts every instance of `node` via `f(dest)`.
    fn corrupt_all_instances(&mut self, node: NodeId, f: impl FnMut(NodeId) -> (Distance, NodeId));
}

impl ReferenceMultiSimulationExt for ReferenceMultiSimulation {
    fn reference(graph: Graph, destinations: Vec<NodeId>, engine: EngineConfig) -> Self {
        assert!(!destinations.is_empty(), "need at least one destination");
        for &d in &destinations {
            assert!(graph.has_node(d), "destination {d} is not in the graph");
        }
        let timing = TimingConfig::paper_example(engine.link.delay_max);
        timing
            .validate(engine.clocks.rho(), engine.link.delay_max)
            .expect("LSRP timing must satisfy the wave-speed constraints");
        let tables: BTreeMap<NodeId, RouteTable> = destinations
            .iter()
            .map(|&d| (d, RouteTable::legitimate(&graph, d)))
            .collect();
        let dests = destinations.clone();
        // Prepared states are consumed on first spawn; a node (re)joining
        // later starts fresh so it recomputes and announces itself — the
        // same rejoin semantics as the dense builder.
        let mut prepared: BTreeMap<NodeId, Vec<(NodeId, LsrpState)>> = graph
            .nodes()
            .map(|id| {
                let neighbors: BTreeMap<NodeId, Weight> = graph.neighbors(id).collect();
                let states = dests
                    .iter()
                    .map(|&dest| {
                        let table = &tables[&dest];
                        let mut s = LsrpState::fresh(id, dest, neighbors.clone());
                        if let Some(e) = table.entry(id) {
                            s.d = e.distance;
                            s.p = e.parent;
                        }
                        for k in neighbors.keys() {
                            let m = table.entry(*k).map_or(Mirror::unknown(*k), |e| Mirror {
                                d: e.distance,
                                p: e.parent,
                                ghost: false,
                            });
                            s.mirrors.insert(*k, m);
                        }
                        (dest, s)
                    })
                    .collect();
                (id, states)
            })
            .collect();
        let engine = Engine::new(graph, engine, move |id, neighbors| {
            let states: Vec<(NodeId, LsrpState)> = prepared.remove(&id).unwrap_or_else(|| {
                dests
                    .iter()
                    .map(|&dest| (dest, LsrpState::fresh(id, dest, neighbors.clone())))
                    .collect()
            });
            let states = states.into_iter().map(|(dest, mut s)| {
                s.set_neighbors(neighbors.clone());
                (dest, s)
            });
            ReferenceMultiNode::new(id, timing, states)
        });
        let settle = match timing.syn_period {
            Some(p) => 2.0 * p + 1.0,
            None => 0.0,
        };
        let primary = *destinations
            .iter()
            .min()
            .expect("destination list is non-empty");
        let meta = MultiMeta::new(destinations, timing);
        ReferenceMultiSimulation::from_parts(engine, primary, settle, meta)
    }

    fn destinations(&self) -> Vec<NodeId> {
        self.meta()
            .destinations
            .iter()
            .copied()
            .filter(|&d| self.graph().has_node(d))
            .collect()
    }

    fn route_table_for(&self, dest: NodeId) -> RouteTable {
        self.graph()
            .nodes()
            .filter_map(|v| {
                self.engine()
                    .node(v)
                    .and_then(|n| n.route_entry_for(dest))
                    .map(|e| (v, e))
            })
            .collect()
    }

    fn all_routes_correct(&self) -> bool {
        ReferenceMultiSimulationExt::destinations(self)
            .iter()
            .all(|&d| self.route_table_for(d).is_correct(self.graph(), d))
    }

    fn corrupt_instance_distance(&mut self, node: NodeId, dest: NodeId, d: Distance) {
        self.engine_mut().with_node_mut(node, |n| {
            if let Some(i) = n.instance_mut(dest) {
                i.state_mut().d = d;
            }
        });
    }

    fn corrupt_all_instances(
        &mut self,
        node: NodeId,
        mut f: impl FnMut(NodeId) -> (Distance, NodeId),
    ) {
        let dests = ReferenceMultiSimulationExt::destinations(self);
        self.engine_mut().with_node_mut(node, |n| {
            for dest in dests {
                if let Some(i) = n.instance_mut(dest) {
                    let (d, p) = f(dest);
                    let s = i.state_mut();
                    s.d = d;
                    s.p = p;
                }
            }
        });
    }
}
