//! Old-plane vs new-plane equivalence: the pre-dense reference
//! architecture (per-destination `BTreeMap` instances, one wire message
//! per advert, full guard scans) and the dense plane (interned `DestId`s,
//! batched adverts, dirty-instance scheduling) must agree on every
//! observable outcome — quiescence verdicts and final per-destination
//! route tables — across seeds × topologies × fault schedules.
//!
//! The suite drives both simulations through the *same* fault schedule in
//! lock-step (run both to the fault's injection time, inject into both,
//! repeat) and compares the converged state. It also checks the batching
//! ledger: the dense plane never delivers more engine messages than the
//! unbatched reference.

use lsrp_graph::{generators, Distance, Graph, NodeId, Weight};
use lsrp_multi::{
    MultiLsrpSimulation, MultiLsrpSimulationExt, ReferenceMultiSimulation,
    ReferenceMultiSimulationExt,
};
use lsrp_sim::EngineConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault of the schedule, applied identically to both planes.
#[derive(Debug, Clone)]
enum Fault {
    /// Corrupt one node's distance toward one destination.
    Instance(NodeId, NodeId, Distance),
    /// Corrupt every instance at one node (full-table corruption).
    AllInstances(NodeId),
    /// Remove an edge.
    FailEdge(NodeId, NodeId),
    /// Add (or re-add) an edge.
    JoinEdge(NodeId, NodeId, Weight),
    /// Fail-stop a (non-destination) node.
    FailNode(NodeId),
    /// Rejoin a failed node with its original edges.
    JoinNode(NodeId, Vec<(NodeId, Weight)>),
}

/// Draws a deterministic fault schedule for `graph` from `seed`:
/// `(time, fault)` pairs with strictly increasing times.
fn draw_schedule(graph: &Graph, dests: &[NodeId], seed: u64, len: usize) -> Vec<(f64, Fault)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes: Vec<NodeId> = graph.nodes().collect();
    let edges: Vec<(NodeId, NodeId, Weight)> = graph.edges().collect();
    let mut out = Vec::with_capacity(len);
    let mut removed: Vec<(NodeId, NodeId, Weight)> = Vec::new();
    let mut downed: Vec<(NodeId, Vec<(NodeId, Weight)>)> = Vec::new();
    for i in 0..len {
        // Space faults far enough apart that some overlap recovery and
        // some land on a quiet network.
        let t = (i as f64 + 1.0) * 40.0 + rng.gen_range(0.0..20.0);
        let fault = match rng.gen_range(0u8..7) {
            0 | 1 => {
                let v = nodes[rng.gen_range(0..nodes.len())];
                let d = dests[rng.gen_range(0..dests.len())];
                Fault::Instance(v, d, Distance::Finite(rng.gen_range(0..40)))
            }
            2 => Fault::AllInstances(nodes[rng.gen_range(0..nodes.len())]),
            3 if !removed.is_empty() => {
                let (a, b, w) = removed.swap_remove(rng.gen_range(0..removed.len()));
                Fault::JoinEdge(a, b, w)
            }
            4 | 5 => {
                if let Some((v, es)) = downed.pop() {
                    Fault::JoinNode(v, es)
                } else {
                    // Churn a non-destination node (the fault process
                    // never churns destinations either: a dead
                    // destination has no recovery obligation to judge).
                    let candidates: Vec<NodeId> = nodes
                        .iter()
                        .copied()
                        .filter(|v| !dests.contains(v))
                        .collect();
                    if candidates.is_empty() {
                        continue;
                    }
                    let v = candidates[rng.gen_range(0..candidates.len())];
                    let es: Vec<(NodeId, Weight)> = graph.neighbors(v).collect();
                    downed.push((v, es));
                    Fault::FailNode(v)
                }
            }
            _ => {
                let (a, b, w) = edges[rng.gen_range(0..edges.len())];
                removed.push((a, b, w));
                Fault::FailEdge(a, b)
            }
        };
        out.push((t, fault));
    }
    // Rejoin anything still down so the final comparison sees the full
    // node set.
    let mut t = (len as f64 + 1.0) * 40.0;
    while let Some((v, es)) = downed.pop() {
        out.push((t, Fault::JoinNode(v, es)));
        t += 40.0;
    }
    out
}

/// Runs both planes through `schedule` in lock-step and asserts identical
/// quiescence verdicts, identical per-destination route tables, and that
/// batching never inflates delivered messages.
fn assert_equivalent(graph: Graph, dests: Vec<NodeId>, schedule: &[(f64, Fault)], label: &str) {
    let config = EngineConfig::default();
    let mut dense = MultiLsrpSimulation::builder(graph.clone(), dests.clone())
        .engine_config(config.clone())
        .build();
    let mut oracle = ReferenceMultiSimulation::reference(graph, dests, config);

    for (t, fault) in schedule {
        dense.run_until(*t);
        oracle.run_until(*t);
        match *fault {
            Fault::Instance(v, d, dist) => {
                dense.corrupt_instance_distance(v, d, dist);
                oracle.corrupt_instance_distance(v, d, dist);
            }
            Fault::AllInstances(v) => {
                dense.corrupt_all_instances(v, |dest| (Distance::Finite(1), dest));
                oracle.corrupt_all_instances(v, |dest| (Distance::Finite(1), dest));
            }
            Fault::FailEdge(a, b) => {
                let x = dense.fail_edge(a, b);
                let y = oracle.fail_edge(a, b);
                assert_eq!(x.is_ok(), y.is_ok(), "{label}: fail_edge({a},{b}) diverged");
            }
            Fault::JoinEdge(a, b, w) => {
                let x = dense.join_edge(a, b, w);
                let y = oracle.join_edge(a, b, w);
                assert_eq!(x.is_ok(), y.is_ok(), "{label}: join_edge({a},{b}) diverged");
            }
            Fault::FailNode(v) => {
                let x = dense.fail_node(v);
                let y = oracle.fail_node(v);
                assert_eq!(x.is_ok(), y.is_ok(), "{label}: fail_node({v}) diverged");
            }
            Fault::JoinNode(v, ref es) => {
                let x = dense.join_node(v, es);
                let y = oracle.join_node(v, es);
                assert_eq!(x.is_ok(), y.is_ok(), "{label}: join_node({v}) diverged");
            }
        }
    }

    let horizon = 2_000_000.0;
    let dense_report = dense.run_to_quiescence(horizon);
    let oracle_report = oracle.run_to_quiescence(horizon);
    assert_eq!(
        dense_report.quiescent, oracle_report.quiescent,
        "{label}: quiescence verdicts diverged"
    );
    assert!(dense_report.quiescent, "{label}: did not quiesce");

    let dense_dests = MultiLsrpSimulationExt::destinations(&dense);
    let oracle_dests = ReferenceMultiSimulationExt::destinations(&oracle);
    assert_eq!(
        dense_dests, oracle_dests,
        "{label}: destination sets diverged"
    );
    for d in dense_dests {
        assert_eq!(
            dense.route_table_for(d),
            ReferenceMultiSimulationExt::route_table_for(&oracle, d),
            "{label}: route tables toward {d} diverged"
        );
    }

    // The same protocol steps ran on both planes; batching can only merge
    // wire messages, never add them.
    let (ds, os) = (dense.engine().stats(), oracle.engine().stats());
    assert!(
        ds.messages_delivered <= os.messages_delivered,
        "{label}: batching inflated deliveries ({} > {})",
        ds.messages_delivered,
        os.messages_delivered
    );
    // And the unbatched plane carries exactly one advert per message.
    assert_eq!(
        os.adverts_delivered, os.messages_delivered,
        "{label}: oracle ledger"
    );
}

fn run_matrix(graph: Graph, dests: Vec<NodeId>, label: &str) {
    for seed in [11u64, 12, 13] {
        let schedule = draw_schedule(&graph, &dests, seed, 6);
        assert_equivalent(
            graph.clone(),
            dests.clone(),
            &schedule,
            &format!("{label}/seed{seed}"),
        );
    }
}

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn path_with_sparse_destinations() {
    let graph = generators::path(7, 2);
    let dests: Vec<NodeId> = graph.nodes().step_by(3).collect();
    run_matrix(graph, dests, "path7");
}

#[test]
fn ring_all_pairs() {
    let graph = generators::ring(8, 1);
    let dests: Vec<NodeId> = graph.nodes().collect();
    run_matrix(graph, dests, "ring8");
}

#[test]
fn grid_with_corner_and_center_destinations() {
    let graph = generators::grid(4, 4, 1);
    let dests = vec![v(0), v(5), v(15)];
    run_matrix(graph, dests, "grid4x4");
}

#[test]
fn weighted_random_graphs() {
    for graph_seed in [101u64, 202] {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let graph = generators::connected_erdos_renyi(12, 0.15, 3, &mut rng);
        let dests: Vec<NodeId> = graph.nodes().step_by(2).collect();
        run_matrix(graph, dests, &format!("er12/g{graph_seed}"));
    }
}

/// No faults at all: both planes start legitimate and must stay silent,
/// with identical (empty) activity.
#[test]
fn quiet_start_is_equivalent() {
    let graph = generators::grid(3, 3, 1);
    let dests: Vec<NodeId> = graph.nodes().collect();
    assert_equivalent(graph, dests, &[], "quiet3x3");
}
