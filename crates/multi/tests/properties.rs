//! Property tests of the multi-destination composition: per-tree
//! guarantees survive arbitrary table corruption and churn.

use proptest::prelude::*;

use lsrp_graph::{generators, Distance, NodeId};
use lsrp_multi::{MultiLsrpSimulation, MultiLsrpSimulationExt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random per-instance distance corruption across random destination
    /// subsets always re-converges every tree.
    #[test]
    fn corrupted_tables_reconverge(
        n in 6u32..16,
        extra in 0.0f64..0.25,
        graph_seed in 0u64..300,
        state_seed in 0u64..300,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let graph = generators::connected_erdos_renyi(n, extra, 3, &mut rng);
        let dests: Vec<NodeId> = graph.nodes().step_by(2).collect();
        let mut sim = MultiLsrpSimulation::builder(graph.clone(), dests.clone()).build();

        let mut rng = StdRng::seed_from_u64(state_seed);
        let nodes: Vec<NodeId> = graph.nodes().collect();
        for _ in 0..6 {
            let node = nodes[rng.gen_range(0..nodes.len())];
            let dest = dests[rng.gen_range(0..dests.len())];
            let d = Distance::Finite(rng.gen_range(0..2 * u64::from(n)));
            sim.corrupt_instance_distance(node, dest, d);
        }
        let report = sim.run_to_quiescence(2_000_000.0);
        prop_assert!(report.quiescent);
        prop_assert!(sim.all_routes_correct());
    }

    /// A corruption in one destination's instance never makes another
    /// destination's instance act.
    #[test]
    fn trees_are_isolated(
        n in 6u32..14,
        graph_seed in 0u64..300,
        state_seed in 0u64..300,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let graph = generators::connected_erdos_renyi(n, 0.1, 3, &mut rng);
        let dest_a = v(0);
        let dest_b = v(n - 1);
        prop_assume!(dest_a != dest_b);
        let mut sim =
            MultiLsrpSimulation::builder(graph.clone(), vec![dest_a, dest_b]).build();
        sim.engine_mut().reset_trace();

        let mut rng = StdRng::seed_from_u64(state_seed);
        let nodes: Vec<NodeId> = graph.nodes().filter(|&x| x != dest_a).collect();
        let victim = nodes[rng.gen_range(0..nodes.len())];
        sim.corrupt_instance_distance(victim, dest_a, Distance::ZERO);
        let report = sim.run_to_quiescence(2_000_000.0);
        prop_assert!(report.quiescent);
        prop_assert!(sim.all_routes_correct());
        // Maintenance records (the batch FLUSH) are transport, not
        // protocol steps; only protocol actions must stay in-tree.
        for r in sim.engine().trace().actions.iter().filter(|r| !r.maintenance) {
            prop_assert_eq!(
                r.action.instance,
                dest_a.raw() + 1,
                "the {} tree must not act: {:?}",
                dest_b,
                r
            );
        }
    }
}
