//! Hand-rolled argument parsing for the `lsrp` binary.
//!
//! The value vocabulary (`--topology`, `--workload`, `--destinations`,
//! `--link-rate` range checks, ...) is shared with the scenario-file
//! loader through [`lsrp_scenario::spec`], so a spelling accepted on the
//! command line is accepted in a scenario file and vice versa.

use std::fmt;

use lsrp_analysis::traffic::WorkloadKind;
use lsrp_graph::{Distance, NodeId};
use lsrp_scenario::spec::{check, parse_cong_alg, parse_discipline, parse_workload};
use lsrp_sim::{CongAlgKind, DisciplineKind};

pub use lsrp_scenario::{DestinationsSpec, TopologySpec};

/// Which protocol to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// The paper's protocol.
    Lsrp,
    /// Distributed Bellman-Ford.
    Dbf,
    /// DUAL-lite.
    Dual,
    /// Path-vector (BGP-lite).
    Pv,
}

/// A fault selector, e.g. `corrupt:9:1`, `fail-node:5`, `loop:8`.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// `corrupt:NODE[:D]` — set `d.NODE := D` (default 0) and poison the
    /// neighborhood's mirrors.
    Corrupt(NodeId, Distance),
    /// `fail-node:NODE`
    FailNode(NodeId),
    /// `fail-edge:A:B`
    FailEdge(NodeId, NodeId),
    /// `join-edge:A:B:W`
    JoinEdge(NodeId, NodeId, u64),
    /// `weight:A:B:W`
    SetWeight(NodeId, NodeId, u64),
    /// `loop:LEN` — only valid with a `lollipop` topology; injects a
    /// corrupted-in loop on the ring.
    Loop,
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run`: drive one protocol through the faults and report metrics.
    Run {
        /// Topology to build.
        topology: TopologySpec,
        /// Destination node (defaults to the topology's natural root).
        dest: Option<NodeId>,
        /// Protocol to run.
        protocol: ProtocolChoice,
        /// Faults to inject at time zero.
        faults: Vec<FaultSpec>,
        /// Engine seed.
        seed: u64,
        /// Print the per-node action timeline.
        timeline: bool,
    },
    /// `run <file.toml>`: compile and run a declarative scenario file.
    RunScenario {
        /// Path to the scenario file.
        path: String,
        /// Worker threads (the report is byte-identical for every value).
        jobs: usize,
        /// Region partitions for each cell's engine (byte-identical for
        /// every value; 1 is the sequential engine).
        regions: usize,
        /// Stream a structured event trace of the first run to this
        /// path (overrides the scenario's `[trace]` path if present).
        trace_out: Option<String>,
    },
    /// `scenario check`: parse and statically expand scenario files.
    ScenarioCheck {
        /// Paths to validate.
        paths: Vec<String>,
    },
    /// `scenario expand`: print one line per compiled cell.
    ScenarioExpand {
        /// Path to the scenario file.
        path: String,
    },
    /// `compare`: run the same scenario on all three protocols.
    Compare {
        /// Topology to build.
        topology: TopologySpec,
        /// Destination node.
        dest: Option<NodeId>,
        /// Faults to inject.
        faults: Vec<FaultSpec>,
        /// Engine seed.
        seed: u64,
    },
    /// `topo`: print topology statistics.
    Topo {
        /// Topology to build.
        topology: TopologySpec,
        /// Seed for random generators.
        seed: u64,
    },
    /// `chaos`: run seeded adversarial campaigns with online invariant
    /// monitors, minimizing any violating schedule.
    Chaos {
        /// Topology to build.
        topology: TopologySpec,
        /// Destination node.
        dest: Option<NodeId>,
        /// Base seed; run `i` uses `seed + i`.
        seed: u64,
        /// Number of independent runs.
        runs: u32,
        /// Per-run simulated-time budget.
        horizon: f64,
        /// Worker threads running the campaign (results are merged in
        /// seed order, so the report is identical for every value).
        jobs: usize,
        /// Route toward many destinations (the dense multi-destination
        /// plane) instead of the single `--dest`.
        destinations: Option<DestinationsSpec>,
        /// Stream a structured event trace of the first run to this path.
        trace_out: Option<String>,
    },
    /// `traffic`: a chaos campaign with live packet forwarding riding the
    /// same engine — workload generators inject packets that hop against
    /// the live route tables while faults land, and the run is judged on
    /// data-plane availability as well as the control-plane monitors.
    Traffic {
        /// Topology to build.
        topology: TopologySpec,
        /// Destination node.
        dest: Option<NodeId>,
        /// Base seed; run `i` uses `seed + i`.
        seed: u64,
        /// Number of independent runs.
        runs: u32,
        /// Per-run simulated-time budget.
        horizon: f64,
        /// Worker threads (reports are byte-identical for every value).
        jobs: usize,
        /// Route toward many destinations instead of the single `--dest`.
        destinations: Option<DestinationsSpec>,
        /// Traffic shape.
        workload: WorkloadKind,
        /// Number of flows (ignored by `all-pairs`).
        flows: usize,
        /// Injection duration in simulated seconds.
        duration: f64,
        /// Exact per-packet injection instead of aggregated sampling.
        exact: bool,
        /// Link serialization rate in weighted packets per second;
        /// `None` keeps links infinitely fast (the congestion lane off).
        link_rate: Option<f64>,
        /// Per-port egress queue capacity in weighted packets.
        queue_cap: Option<u64>,
        /// Queue discipline for bounded ports.
        discipline: DisciplineKind,
        /// Promote flows to stateful Go-Back-N transfers under this
        /// congestion-control algorithm.
        cc: Option<CongAlgKind>,
        /// Stream a structured event trace of the first run to this path.
        trace_out: Option<String>,
    },
    /// `viz <trace file>`: render a structured trace into a
    /// self-contained SVG/HTML visualization.
    Viz {
        /// Path to the trace file (JSONL or binary).
        input: String,
        /// Output path; defaults to the input with an `.html` extension.
        out: Option<String>,
    },
    /// `help`
    Help,
}

/// A parse failure, with a message suitable for direct printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

fn parse_u32(s: &str, what: &str) -> Result<u32, ParseError> {
    s.parse().map_err(|_| err(format!("invalid {what}: {s}")))
}

fn parse_node(s: &str) -> Result<NodeId, ParseError> {
    let raw = s.strip_prefix('v').unwrap_or(s);
    Ok(NodeId::new(parse_u32(raw, "node id")?))
}

impl FaultSpec {
    /// Parses a `kind[:args]` fault selector.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        match (kind, rest.as_slice()) {
            ("corrupt", [node]) => Ok(FaultSpec::Corrupt(parse_node(node)?, Distance::ZERO)),
            ("corrupt", [node, d]) => {
                let dist = if *d == "inf" {
                    Distance::Infinite
                } else {
                    Distance::Finite(
                        d.parse()
                            .map_err(|_| err(format!("invalid distance: {d}")))?,
                    )
                };
                Ok(FaultSpec::Corrupt(parse_node(node)?, dist))
            }
            ("fail-node", [node]) => Ok(FaultSpec::FailNode(parse_node(node)?)),
            ("fail-edge", [a, b]) => Ok(FaultSpec::FailEdge(parse_node(a)?, parse_node(b)?)),
            ("join-edge", [a, b, w]) => Ok(FaultSpec::JoinEdge(
                parse_node(a)?,
                parse_node(b)?,
                w.parse().map_err(|_| err(format!("invalid weight: {w}")))?,
            )),
            ("weight", [a, b, w]) => Ok(FaultSpec::SetWeight(
                parse_node(a)?,
                parse_node(b)?,
                w.parse().map_err(|_| err(format!("invalid weight: {w}")))?,
            )),
            ("loop", []) => Ok(FaultSpec::Loop),
            _ => Err(err(format!(
                "unknown fault '{s}' (try corrupt:9:1, fail-node:5, fail-edge:0:1, \
                 join-edge:0:5:2, weight:0:1:3, loop)"
            ))),
        }
    }
}

/// Parses the `scenario check|expand` subcommands.
fn parse_scenario<I: Iterator<Item = String>>(mut args: I) -> Result<Command, ParseError> {
    let action = args
        .next()
        .ok_or_else(|| err("`lsrp scenario` wants an action: check or expand"))?;
    let rest: Vec<String> = args.collect();
    if rest.iter().any(|a| a.starts_with('-')) {
        return Err(err("`lsrp scenario` takes scenario files, not flags"));
    }
    match action.as_str() {
        "check" => {
            if rest.is_empty() {
                return Err(err(
                    "`lsrp scenario check` wants at least one scenario file",
                ));
            }
            Ok(Command::ScenarioCheck { paths: rest })
        }
        "expand" => match rest.as_slice() {
            [path] => Ok(Command::ScenarioExpand { path: path.clone() }),
            _ => Err(err(
                "`lsrp scenario expand` wants exactly one scenario file",
            )),
        },
        other => Err(err(format!(
            "unknown scenario action '{other}' (check, expand)"
        ))),
    }
}

/// Parses `run <file.toml> [--jobs N] [--regions N] [--trace-out PATH]`.
fn parse_run_scenario<I: Iterator<Item = String>>(
    path: String,
    mut args: I,
) -> Result<Command, ParseError> {
    let mut jobs = 1usize;
    let mut regions = 1usize;
    let mut trace_out = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--jobs" | "-j" => {
                let v = args
                    .next()
                    .ok_or_else(|| err("--jobs expects a job count"))?;
                jobs = v.parse().map_err(|_| err("invalid job count"))?;
                jobs = check::jobs(jobs).map_err(|e| err(format!("--jobs {e}")))?;
            }
            "--regions" => {
                let v = args
                    .next()
                    .ok_or_else(|| err("--regions expects a region count"))?;
                regions = v.parse().map_err(|_| err("invalid region count"))?;
                regions = check::regions(regions).map_err(|e| err(format!("--regions {e}")))?;
            }
            "--trace-out" => {
                let v = args
                    .next()
                    .ok_or_else(|| err("--trace-out expects a file path"))?;
                trace_out = Some(v);
            }
            other => {
                return Err(err(format!(
                    "unknown flag '{other}' (a scenario run takes only --jobs N, \
                     --regions N and --trace-out PATH)"
                )))
            }
        }
    }
    Ok(Command::RunScenario {
        path,
        jobs,
        regions,
        trace_out,
    })
}

/// Parses `viz <trace file> [-o OUT]`.
fn parse_viz<I: Iterator<Item = String>>(mut args: I) -> Result<Command, ParseError> {
    let mut input = None;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" | "--out" => {
                let v = args.next().ok_or_else(|| err("-o expects a file path"))?;
                out = Some(v);
            }
            flag if flag.starts_with('-') => {
                return Err(err(format!(
                    "unknown flag '{flag}' (viz takes a trace file and -o OUT)"
                )))
            }
            _ if input.is_none() => input = Some(arg),
            _ => return Err(err("viz wants exactly one trace file")),
        }
    }
    let input = input.ok_or_else(|| err("viz wants a trace file (from --trace-out)"))?;
    Ok(Command::Viz { input, out })
}

impl Command {
    /// Parses the full argument list (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ParseError> {
        let mut args = args.into_iter().peekable();
        let sub = args.next().unwrap_or_else(|| "help".to_string());
        if sub == "help" || sub == "--help" || sub == "-h" {
            return Ok(Command::Help);
        }
        if sub == "scenario" {
            return parse_scenario(args);
        }
        if sub == "viz" {
            return parse_viz(args);
        }
        if sub == "run" {
            // `lsrp run <scenario.toml>`: a positional argument switches
            // to the declarative path.
            if args.peek().is_some_and(|a| !a.starts_with('-')) {
                let path = args.next().expect("peeked");
                return parse_run_scenario(path, args);
            }
        }

        let mut topology = None;
        let mut dest = None;
        let mut protocol = ProtocolChoice::Lsrp;
        let mut faults = Vec::new();
        let mut seed = 0u64;
        let mut timeline = false;
        let mut runs = 5u32;
        let mut horizon = 100_000.0f64;
        let mut jobs = 1usize;
        let mut destinations = None;
        let mut workload = WorkloadKind::Poisson;
        let mut flows = 64usize;
        let mut duration = 600.0f64;
        let mut exact = false;
        let mut link_rate = None;
        let mut queue_cap = None;
        let mut discipline = DisciplineKind::DropTail;
        let mut discipline_set = false;
        let mut cc = None;
        let mut trace_out = None;

        while let Some(flag) = args.next() {
            let mut value = |what: &str| {
                args.next()
                    .ok_or_else(|| err(format!("{flag} expects a {what}")))
            };
            match flag.as_str() {
                "--topology" | "-t" => {
                    topology = Some(TopologySpec::parse(&value("topology")?).map_err(err)?);
                }
                "--dest" | "-d" => dest = Some(parse_node(&value("node id")?)?),
                "--protocol" | "-p" => {
                    protocol = match value("protocol")?.as_str() {
                        "lsrp" => ProtocolChoice::Lsrp,
                        "dbf" => ProtocolChoice::Dbf,
                        "dual" => ProtocolChoice::Dual,
                        "pv" => ProtocolChoice::Pv,
                        other => return Err(err(format!("unknown protocol '{other}'"))),
                    }
                }
                "--fault" | "-f" => faults.push(FaultSpec::parse(&value("fault")?)?),
                "--seed" | "-s" => {
                    seed = value("seed")?.parse().map_err(|_| err("invalid seed"))?
                }
                "--timeline" => timeline = true,
                "--runs" | "-n" => {
                    runs = value("run count")?
                        .parse()
                        .map_err(|_| err("invalid run count"))?;
                    runs = check::runs(runs).map_err(|e| err(format!("--runs {e}")))?;
                }
                "--jobs" | "-j" => {
                    jobs = value("job count")?
                        .parse()
                        .map_err(|_| err("invalid job count"))?;
                    jobs = check::jobs(jobs).map_err(|e| err(format!("--jobs {e}")))?;
                }
                "--destinations" | "-D" => {
                    destinations =
                        Some(DestinationsSpec::parse(&value("destination count")?).map_err(err)?);
                }
                "--horizon" => {
                    let h: f64 = value("horizon")?
                        .parse()
                        .map_err(|_| err("invalid horizon"))?;
                    horizon = check::positive(h).map_err(|e| err(format!("--horizon {e}")))?;
                }
                "--workload" | "-w" => {
                    workload = parse_workload(&value("workload")?).map_err(err)?;
                }
                "--flows" => {
                    flows = value("flow count")?
                        .parse()
                        .map_err(|_| err("invalid flow count"))?;
                    flows = check::flows(flows).map_err(|e| err(format!("--flows {e}")))?;
                }
                "--duration" => {
                    let d: f64 = value("duration")?
                        .parse()
                        .map_err(|_| err("invalid duration"))?;
                    duration = check::positive(d).map_err(|e| err(format!("--duration {e}")))?;
                }
                "--exact" => exact = true,
                "--link-rate" => {
                    let r: f64 = value("rate")?
                        .parse()
                        .map_err(|_| err("invalid link rate"))?;
                    link_rate =
                        Some(check::positive(r).map_err(|e| err(format!("--link-rate {e}")))?);
                }
                "--queue-cap" => {
                    let c: u64 = value("capacity")?
                        .parse()
                        .map_err(|_| err("invalid queue capacity"))?;
                    queue_cap =
                        Some(check::queue_cap(c).map_err(|e| err(format!("--queue-cap {e}")))?);
                }
                "--discipline" => {
                    discipline = parse_discipline(&value("discipline")?).map_err(err)?;
                    discipline_set = true;
                }
                "--cc" => {
                    cc = Some(parse_cong_alg(&value("congestion control")?).map_err(err)?);
                }
                "--trace-out" => trace_out = Some(value("file path")?),
                other => return Err(err(format!("unknown flag '{other}'"))),
            }
        }

        let topology = topology.ok_or_else(|| err("--topology is required"))?;
        if destinations.is_some() && sub != "chaos" && sub != "traffic" {
            return Err(err(
                "--destinations is only valid with `lsrp chaos` or `lsrp traffic`",
            ));
        }
        if (link_rate.is_some() || queue_cap.is_some() || discipline_set || cc.is_some())
            && sub != "traffic"
        {
            return Err(err(
                "--link-rate/--queue-cap/--discipline/--cc are only valid with `lsrp traffic`",
            ));
        }
        if trace_out.is_some() && sub != "chaos" && sub != "traffic" {
            return Err(err(
                "--trace-out is only valid with `lsrp chaos`, `lsrp traffic` or a scenario run",
            ));
        }
        check::congestion_shape(link_rate, queue_cap, discipline_set).map_err(err)?;
        match sub.as_str() {
            "run" => Ok(Command::Run {
                topology,
                dest,
                protocol,
                faults,
                seed,
                timeline,
            }),
            "compare" => Ok(Command::Compare {
                topology,
                dest,
                faults,
                seed,
            }),
            "topo" => Ok(Command::Topo { topology, seed }),
            "chaos" => Ok(Command::Chaos {
                topology,
                dest,
                seed,
                runs,
                horizon,
                jobs,
                destinations,
                trace_out,
            }),
            "traffic" => Ok(Command::Traffic {
                topology,
                dest,
                seed,
                runs,
                horizon,
                jobs,
                destinations,
                workload,
                flows,
                duration,
                exact,
                link_rate,
                queue_cap,
                discipline,
                cc,
                trace_out,
            }),
            other => Err(err(format!(
                "unknown command '{other}' (run, scenario, compare, topo, chaos, traffic, viz, help)"
            ))),
        }
    }
}

/// The help text.
pub const HELP: &str = "\
lsrp — drive LSRP (and baselines) through fault scenarios

USAGE:
  lsrp run     FILE.toml [--jobs N] [--regions N] [--trace-out PATH]
  lsrp run     --topology SPEC [--protocol lsrp|dbf|dual|pv] [--dest N]
               [--fault SPEC]... [--seed N] [--timeline]
  lsrp scenario check FILE.toml...
  lsrp scenario expand FILE.toml
  lsrp compare --topology SPEC [--dest N] [--fault SPEC]... [--seed N]
  lsrp topo    --topology SPEC [--seed N]
  lsrp chaos   --topology SPEC [--dest N] [--seed N] [--runs N] [--jobs N]
               [--horizon T] [--destinations N|all-pairs] [--trace-out PATH]
  lsrp traffic --topology SPEC [--dest N] [--seed N] [--runs N] [--jobs N]
               [--horizon T] [--destinations N|all-pairs]
               [--workload poisson|all-pairs|hotspot] [--flows N]
               [--duration T] [--exact] [--link-rate R] [--queue-cap C]
               [--discipline drop-tail|ecn|pause] [--cc fixed|aimd]
               [--trace-out PATH]
  lsrp viz     TRACE [-o OUT.html|OUT.svg]

TOPOLOGIES:  grid:8x8  ring:32  path:16  er:40:0.1  geo:60:0.18
             ba:50:2  lollipop:2:8  waxman:1000:0.05:0.7  cliques:8:6
             fattree:8  fig1
FAULTS:      corrupt:NODE[:D|inf]  fail-node:N  fail-edge:A:B
             join-edge:A:B:W  weight:A:B:W  loop  (lollipop only)

`run FILE.toml` compiles a declarative scenario file (see DESIGN.md §13
and the checked-in `scenarios/` corpus) into concrete experiment cells,
fans them out over `--jobs` worker threads and prints the report —
byte-identical for every `--jobs` value, and byte-identical to the
hand-coded experiment the file replaced. `--regions N` additionally
partitions the engine *inside* each chaos/traffic cell into N regions
executed concurrently in conservative time windows (DESIGN.md §15);
the report stays byte-identical for every region count. `scenario
check` parses and statically expands files without running them;
`scenario expand` prints one line per compiled cell.

`chaos` replays seeded random fault campaigns (link flaps, node churn,
partition-and-heal, state corruption) with online invariant monitors
(convergence, contamination radius, wave-speed order, loop freedom);
violating schedules are delta-minimized and printed as replayable repro
cases. With `--destinations N` (the N lowest node ids) or
`--destinations all-pairs`, the campaign instead drives the dense
multi-destination plane — one LSRP instance per destination over batched
adverts — and judges quiescence plus per-tree route correctness.

`traffic` runs the same chaos campaigns with live packet forwarding on
the same engine: seeded workloads (Poisson flows, all-pairs probes, or a
hotspot pattern) inject packets that hop against the live route tables
while faults land. By default flows are sampled as weighted probes, so
millions of represented packets per run stay cheap; `--exact` injects
one probe per packet instead. Each run reports delivery fractions,
per-fate drop counts, the worst availability window, the worst routable
fraction, and path stretch against shortest paths.

With `--link-rate R` the data plane turns congestion-realistic: links
serialize at R weighted packets per second, `--queue-cap C` bounds each
egress port at C weighted packets under the chosen `--discipline`
(drop-tail drops, ecn marks early, pause backpressures upstream), and
queue drops, ECN marks, pause frames and peak queue depth join the
report. `--cc` additionally promotes every workload flow to a stateful
Go-Back-N transfer with retransmit timers and exponential backoff under
fixed-window or AIMD congestion control, adding weighted goodput,
retransmissions, timeouts and flow-completion times.

`--trace-out PATH` (on `chaos`, `traffic`, and scenario runs) streams a
versioned structured event log of the campaign's first run to PATH:
wave fronts, route deltas, queue depths, packet and flow fates, in JSONL
(or length-prefixed binary via a scenario `[trace]` section, DESIGN.md
§16). The trace is byte-identical for every `--jobs`/`--regions` value,
and omitting it keeps every report byte-identical to the untraced
engine. `viz` renders a trace into a self-contained HTML page — wave
heatmap over the topology, availability/goodput/queue time series,
route-flap strip — or just the heatmap SVG with `-o out.svg`.

EXAMPLES:
  lsrp run scenarios/e21_congested_recovery.toml --jobs 4
  lsrp scenario check scenarios/*.toml
  lsrp run --topology fig1 --protocol lsrp --fault corrupt:9:1 --timeline
  lsrp compare --topology grid:12x12 --fault corrupt:13:0
  lsrp run --topology lollipop:2:16 --fault loop --timeline
  lsrp chaos --topology grid:6x6 --runs 10 --seed 1
  lsrp run scenarios/flap_storm.toml --trace-out storm.jsonl
  lsrp viz storm.jsonl -o storm.html
  lsrp chaos --topology grid:6x6 --destinations all-pairs --runs 5 --jobs 4
  lsrp traffic --topology grid:6x6 --runs 5 --workload hotspot --jobs 4
  lsrp traffic --topology grid:4x4 --destinations 4 --workload all-pairs
  lsrp traffic --topology grid:6x6 --workload hotspot --link-rate 400
               --queue-cap 1500 --cc aimd
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_a_full_run() {
        let c = Command::parse(argv(
            "run --topology grid:8x8 --protocol dbf --dest 3 --fault corrupt:9:1 --fault fail-node:5 --seed 7 --timeline",
        ))
        .unwrap();
        match c {
            Command::Run {
                topology,
                dest,
                protocol,
                faults,
                seed,
                timeline,
            } => {
                assert_eq!(topology, TopologySpec::Grid(8, 8));
                assert_eq!(dest, Some(NodeId::new(3)));
                assert_eq!(protocol, ProtocolChoice::Dbf);
                assert_eq!(faults.len(), 2);
                assert_eq!(seed, 7);
                assert!(timeline);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_a_scenario_run() {
        let c = Command::parse(argv("run scenarios/e6_scaling.toml --jobs 4")).unwrap();
        assert_eq!(
            c,
            Command::RunScenario {
                path: "scenarios/e6_scaling.toml".to_string(),
                jobs: 4,
                regions: 1,
                trace_out: None,
            }
        );
        let c = Command::parse(argv("run x.toml")).unwrap();
        assert_eq!(
            c,
            Command::RunScenario {
                path: "x.toml".to_string(),
                jobs: 1,
                regions: 1,
                trace_out: None,
            }
        );
        let c = Command::parse(argv("run x.toml --regions 4 --jobs 2")).unwrap();
        assert_eq!(
            c,
            Command::RunScenario {
                path: "x.toml".to_string(),
                jobs: 2,
                regions: 4,
                trace_out: None,
            }
        );
        let c = Command::parse(argv("run x.toml --trace-out t.jsonl")).unwrap();
        assert_eq!(
            c,
            Command::RunScenario {
                path: "x.toml".to_string(),
                jobs: 1,
                regions: 1,
                trace_out: Some("t.jsonl".to_string()),
            }
        );
        assert!(Command::parse(argv("run x.toml --jobs 0")).is_err());
        assert!(Command::parse(argv("run x.toml --regions 0")).is_err());
        assert!(Command::parse(argv("run x.toml --regions")).is_err());
        assert!(Command::parse(argv("run x.toml --trace-out")).is_err());
        assert!(Command::parse(argv("run x.toml --timeline")).is_err());
    }

    #[test]
    fn parses_viz() {
        let c = Command::parse(argv("viz t.jsonl -o out.html")).unwrap();
        assert_eq!(
            c,
            Command::Viz {
                input: "t.jsonl".to_string(),
                out: Some("out.html".to_string()),
            }
        );
        let c = Command::parse(argv("viz t.bin")).unwrap();
        assert_eq!(
            c,
            Command::Viz {
                input: "t.bin".to_string(),
                out: None,
            }
        );
        assert!(Command::parse(argv("viz")).is_err());
        assert!(Command::parse(argv("viz a b")).is_err());
        assert!(Command::parse(argv("viz t.jsonl --bogus")).is_err());
    }

    #[test]
    fn trace_out_rejected_off_campaigns() {
        assert!(
            Command::parse(argv("topo --topology ring:8 --trace-out t.jsonl")).is_err(),
            "--trace-out must be chaos/traffic/scenario-run only"
        );
        match Command::parse(argv(
            "chaos --topology grid:4x4 --runs 1 --trace-out t.jsonl",
        ))
        .unwrap()
        {
            Command::Chaos { trace_out, .. } => {
                assert_eq!(trace_out.as_deref(), Some("t.jsonl"));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_scenario_check_and_expand() {
        let c = Command::parse(argv("scenario check a.toml b.toml")).unwrap();
        assert_eq!(
            c,
            Command::ScenarioCheck {
                paths: vec!["a.toml".to_string(), "b.toml".to_string()],
            }
        );
        let c = Command::parse(argv("scenario expand a.toml")).unwrap();
        assert_eq!(
            c,
            Command::ScenarioExpand {
                path: "a.toml".to_string(),
            }
        );
        assert!(Command::parse(argv("scenario")).is_err());
        assert!(Command::parse(argv("scenario check")).is_err());
        assert!(Command::parse(argv("scenario expand a.toml b.toml")).is_err());
        assert!(Command::parse(argv("scenario validate a.toml")).is_err());
    }

    #[test]
    fn parses_every_topology_kind() {
        for (s, expect) in [
            ("ring:32", TopologySpec::Ring(32)),
            ("path:16", TopologySpec::Path(16)),
            ("er:40:0.1", TopologySpec::ErdosRenyi(40, 0.1)),
            ("geo:60:0.18", TopologySpec::Geometric(60, 0.18)),
            ("ba:50:2", TopologySpec::PreferentialAttachment(50, 2)),
            ("lollipop:2:8", TopologySpec::Lollipop(2, 8)),
            (
                "waxman:1000:0.05:0.7",
                TopologySpec::Waxman(1000, 0.05, 0.7),
            ),
            ("cliques:8:6", TopologySpec::RingOfCliques(8, 6)),
            ("fattree:8", TopologySpec::FatTree(8)),
            ("fig1", TopologySpec::Fig1),
        ] {
            assert_eq!(TopologySpec::parse(s).unwrap(), expect, "{s}");
        }
        assert!(TopologySpec::parse("mesh:3").is_err());
        assert!(TopologySpec::parse("grid:8").is_err());
    }

    #[test]
    fn parses_every_fault_kind() {
        use FaultSpec::*;
        let v = |i| NodeId::new(i);
        for (s, expect) in [
            ("corrupt:9", Corrupt(v(9), Distance::ZERO)),
            ("corrupt:v9:4", Corrupt(v(9), Distance::Finite(4))),
            ("corrupt:9:inf", Corrupt(v(9), Distance::Infinite)),
            ("fail-node:5", FailNode(v(5))),
            ("fail-edge:0:1", FailEdge(v(0), v(1))),
            ("join-edge:0:5:2", JoinEdge(v(0), v(5), 2)),
            ("weight:0:1:3", SetWeight(v(0), v(1), 3)),
            ("loop", Loop),
        ] {
            assert_eq!(FaultSpec::parse(s).unwrap(), expect, "{s}");
        }
        assert!(FaultSpec::parse("nuke:1").is_err());
    }

    #[test]
    fn parses_chaos_destinations() {
        let c = Command::parse(argv(
            "chaos --topology grid:4x4 --destinations all-pairs --runs 2",
        ))
        .unwrap();
        match c {
            Command::Chaos { destinations, .. } => {
                assert_eq!(destinations, Some(DestinationsSpec::AllPairs));
            }
            other => panic!("wrong command: {other:?}"),
        }
        let c = Command::parse(argv("chaos --topology grid:4x4 -D 5")).unwrap();
        match c {
            Command::Chaos { destinations, .. } => {
                assert_eq!(destinations, Some(DestinationsSpec::Count(5)));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Command::parse(argv("chaos --topology grid:4x4 --destinations 0")).is_err());
        assert!(Command::parse(argv("chaos --topology grid:4x4 --destinations x")).is_err());
        // Only chaos and traffic understand the flag.
        assert!(Command::parse(argv("run --topology grid:4x4 --destinations 3")).is_err());
    }

    #[test]
    fn parses_traffic_flags() {
        let c = Command::parse(argv(
            "traffic --topology grid:4x4 --workload hotspot --flows 8 --duration 90 --exact --jobs 2",
        ))
        .unwrap();
        match c {
            Command::Traffic {
                workload,
                flows,
                duration,
                exact,
                jobs,
                destinations,
                ..
            } => {
                assert_eq!(workload, WorkloadKind::Hotspot);
                assert_eq!(flows, 8);
                assert_eq!(duration, 90.0);
                assert!(exact);
                assert_eq!(jobs, 2);
                assert_eq!(destinations, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let c = Command::parse(argv(
            "traffic --topology grid:4x4 --destinations 3 --workload all-pairs",
        ))
        .unwrap();
        match c {
            Command::Traffic {
                workload,
                destinations,
                exact,
                ..
            } => {
                assert_eq!(workload, WorkloadKind::AllPairs);
                assert_eq!(destinations, Some(DestinationsSpec::Count(3)));
                assert!(!exact);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Command::parse(argv("traffic --topology grid:4x4 --workload bursty")).is_err());
        assert!(Command::parse(argv("traffic --topology grid:4x4 --flows 0")).is_err());
        assert!(Command::parse(argv("traffic --topology grid:4x4 --duration -3")).is_err());
    }

    #[test]
    fn parses_congestion_flags() {
        let c = Command::parse(argv(
            "traffic --topology grid:4x4 --link-rate 400 --queue-cap 1500 --discipline ecn --cc aimd",
        ))
        .unwrap();
        match c {
            Command::Traffic {
                link_rate,
                queue_cap,
                discipline,
                cc,
                ..
            } => {
                assert_eq!(link_rate, Some(400.0));
                assert_eq!(queue_cap, Some(1500));
                assert_eq!(discipline, DisciplineKind::Ecn { mark_at: 0.5 });
                assert_eq!(
                    cc,
                    Some(CongAlgKind::Aimd {
                        initial: 4,
                        max: 64
                    })
                );
            }
            other => panic!("wrong command: {other:?}"),
        }
        // The lane stays off by default, and --cc works on its own.
        let c = Command::parse(argv("traffic --topology grid:4x4 --cc fixed")).unwrap();
        match c {
            Command::Traffic {
                link_rate,
                queue_cap,
                cc,
                ..
            } => {
                assert_eq!(link_rate, None);
                assert_eq!(queue_cap, None);
                assert_eq!(cc, Some(CongAlgKind::FixedWindow { window: 8 }));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_congestion_flags() {
        assert!(Command::parse(argv("traffic --topology grid:4x4 --link-rate 0")).is_err());
        assert!(Command::parse(argv("traffic --topology grid:4x4 --link-rate -2")).is_err());
        assert!(Command::parse(argv(
            "traffic --topology grid:4x4 --link-rate 10 --queue-cap 0"
        ))
        .is_err());
        assert!(Command::parse(argv(
            "traffic --topology grid:4x4 --link-rate 10 --discipline red"
        ))
        .is_err());
        assert!(Command::parse(argv("traffic --topology grid:4x4 --cc cubic")).is_err());
        // Queue knobs without a finite rate are dead configuration.
        assert!(Command::parse(argv("traffic --topology grid:4x4 --queue-cap 100")).is_err());
        assert!(Command::parse(argv("traffic --topology grid:4x4 --discipline ecn")).is_err());
        // The flags belong to `traffic` alone.
        assert!(Command::parse(argv("chaos --topology grid:4x4 --link-rate 10")).is_err());
        assert!(Command::parse(argv("run --topology grid:4x4 --cc aimd")).is_err());
    }

    #[test]
    fn helpful_errors() {
        assert!(Command::parse(argv("run"))
            .unwrap_err()
            .0
            .contains("--topology"));
        assert!(Command::parse(argv("run --topology")).is_err());
        assert!(Command::parse(argv("frobnicate --topology fig1")).is_err());
        assert_eq!(Command::parse(argv("help")).unwrap(), Command::Help);
        assert_eq!(Command::parse(Vec::new()).unwrap(), Command::Help);
    }
}
