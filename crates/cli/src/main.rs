//! The `lsrp` command-line binary. See `lsrp help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match lsrp_cli::Command::parse(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\nrun `lsrp help` for usage");
            return ExitCode::FAILURE;
        }
    };
    match lsrp_cli::run_command(&cmd) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
