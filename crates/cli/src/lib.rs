//! Command-line driver for LSRP scenarios.
//!
//! ```text
//! lsrp run scenarios/e21_congested_recovery.toml --jobs 4
//! lsrp scenario check scenarios/*.toml
//! lsrp run --topology grid:8x8 --protocol lsrp --fault corrupt:9:0 --timeline
//! lsrp compare --topology grid:12x12 --fault corrupt:13:0
//! lsrp topo --topology ba:60:2
//! ```
//!
//! Argument parsing is hand-rolled (no extra dependencies); see
//! [`args::Command::parse`] for the grammar. The flag vocabulary
//! (topologies, destination sets, workloads, congestion knobs) is shared
//! with the declarative scenario loader via [`lsrp_scenario::spec`], and
//! the `chaos`/`traffic` subcommands run through the same campaign
//! lowering as `lsrp run <file.toml>`. The library half exists so the
//! parser and scenario driver are unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod driver;

pub use crate::args::{Command, FaultSpec, ProtocolChoice, TopologySpec};
pub use crate::driver::run_command;
