//! Scenario driver: builds topologies and protocols from parsed args,
//! injects faults, runs and reports.
//!
//! The `chaos` and `traffic` subcommands are thin shells over the
//! scenario compiler's [`lsrp_scenario::exec::run_chaos`] and
//! [`lsrp_scenario::exec::run_traffic`] lowerings — a flag invocation
//! and the equivalent scenario file produce byte-identical reports.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;

use lsrp_analysis::{measure_recovery, table::fmt_f64, timeline, RoutingSimulation, Table};
use lsrp_baselines::{
    BaselineSimulation, DbfConfig, DbfSimulation, DualConfig, DualSimulation, PvConfig,
    PvSimulation,
};
use lsrp_bench::scenario_runner::BenchRunner;
use lsrp_core::{InitialState, LsrpSimulation, LsrpSimulationExt};
use lsrp_graph::{generators, topologies, Graph, NodeId};
use lsrp_scenario::exec::{run_chaos, run_traffic};
use lsrp_scenario::schema::{
    CampaignScenario, CongestionSection, FaultsSection, ScenarioBody, TraceSection,
    TrafficScenario, WorkloadSection,
};
use lsrp_scenario::{
    expand_list, load_str, run_scenario_with, ExecOptions, Scenario, ScenarioResult,
};
use lsrp_sim::EngineConfig;

use crate::args::{Command, FaultSpec, ParseError, ProtocolChoice, TopologySpec, HELP};

/// Builds the topology and its natural destination.
pub fn build_topology(spec: &TopologySpec, seed: u64) -> (Graph, NodeId) {
    spec.build(seed)
}

fn build_protocol(
    choice: ProtocolChoice,
    topo: &TopologySpec,
    graph: Graph,
    dest: NodeId,
    seed: u64,
) -> Box<dyn RoutingSimulation> {
    let engine = EngineConfig::default().with_seed(seed);
    match choice {
        ProtocolChoice::Lsrp => {
            let initial = if *topo == TopologySpec::Fig1 {
                // Start from the figure's chosen tree (v7/v8 via v9).
                InitialState::Table(topologies::fig1_route_table())
            } else {
                InitialState::Legitimate
            };
            Box::new(
                LsrpSimulation::builder(graph, dest)
                    .initial_state(initial)
                    .engine_config(engine)
                    .build(),
            )
        }
        ProtocolChoice::Dbf => Box::new(DbfSimulation::new(
            graph,
            dest,
            None,
            DbfConfig::default(),
            engine,
        )),
        ProtocolChoice::Dual => Box::new(DualSimulation::new(
            graph,
            dest,
            None,
            DualConfig::default(),
            engine,
        )),
        ProtocolChoice::Pv => Box::new(PvSimulation::new(
            graph,
            dest,
            None,
            PvConfig::default(),
            engine,
        )),
    }
}

/// The nodes a fault spec perturbs, computed from the (pre-fault) graph.
fn perturbed_by(
    graph: &lsrp_graph::Graph,
    spec: &FaultSpec,
    topo: &TopologySpec,
) -> Result<BTreeSet<NodeId>, ParseError> {
    let check_node = |n: NodeId| {
        graph
            .has_node(n)
            .then_some(n)
            .ok_or_else(|| ParseError(format!("{n} is not in the topology")))
    };
    let check_edge = |a: NodeId, b: NodeId| {
        graph
            .has_edge(a, b)
            .then_some(())
            .ok_or_else(|| ParseError(format!("edge ({a}, {b}) is not in the topology")))
    };
    Ok(match *spec {
        FaultSpec::Corrupt(node, _) => BTreeSet::from([check_node(node)?]),
        FaultSpec::FailNode(node) => {
            check_node(node)?;
            graph.neighbors(node).map(|(k, _)| k).collect()
        }
        FaultSpec::FailEdge(a, b) => {
            check_edge(a, b)?;
            BTreeSet::from([a, b])
        }
        FaultSpec::JoinEdge(a, b, _) => {
            check_node(a)?;
            check_node(b)?;
            BTreeSet::from([a, b])
        }
        FaultSpec::SetWeight(a, b, _) => {
            check_edge(a, b)?;
            BTreeSet::from([a, b])
        }
        FaultSpec::Loop => {
            let TopologySpec::Lollipop(tail, ring_len) = *topo else {
                return Err(ParseError(
                    "--fault loop requires a lollipop topology".to_string(),
                ));
            };
            generators::lollipop_ring(tail, ring_len)
                .into_iter()
                .collect()
        }
    })
}

/// Applies one (pre-validated) fault spec.
fn apply_fault(sim: &mut dyn RoutingSimulation, spec: &FaultSpec, topo: &TopologySpec) {
    match *spec {
        FaultSpec::Corrupt(node, d) => {
            sim.corrupt_distance(node, d);
            let ns: Vec<NodeId> = sim.graph().neighbors(node).map(|(k, _)| k).collect();
            for k in ns {
                sim.poison_mirror(k, node, d);
            }
        }
        FaultSpec::FailNode(node) => sim.fail_node(node).expect("validated"),
        FaultSpec::FailEdge(a, b) => sim.fail_edge(a, b).expect("validated"),
        FaultSpec::JoinEdge(a, b, w) => {
            // Joining an existing edge is a user error surfaced here.
            if let Err(e) = sim.join_edge(a, b, w) {
                eprintln!("warning: {e}");
            }
        }
        FaultSpec::SetWeight(a, b, w) => sim.set_weight(a, b, w).expect("validated"),
        FaultSpec::Loop => {
            let TopologySpec::Lollipop(tail, ring_len) = *topo else {
                unreachable!("validated against the topology");
            };
            let mut ring = generators::lollipop_ring(tail, ring_len);
            ring.rotate_left(1);
            let assignment = lsrp_faults::loops::cycle_assignment(sim.graph(), &ring, 1);
            for &(node, d, p) in &assignment {
                sim.inject_route(node, d, p);
            }
            for &(node, d, _) in &assignment {
                let ns: Vec<NodeId> = sim.graph().neighbors(node).map(|(k, _)| k).collect();
                for k in ns {
                    sim.poison_mirror(k, node, d);
                }
            }
        }
    }
}

fn run_one(
    choice: ProtocolChoice,
    topo: &TopologySpec,
    dest: Option<NodeId>,
    faults: &[FaultSpec],
    seed: u64,
    want_timeline: bool,
    out: &mut String,
) -> Result<(), ParseError> {
    let (graph, natural_dest) = build_topology(topo, seed);
    let dest = dest.unwrap_or(natural_dest);
    if !graph.has_node(dest) {
        return Err(ParseError(format!(
            "destination {dest} is not in the topology"
        )));
    }
    let mut perturbed = BTreeSet::new();
    for f in faults {
        perturbed.extend(perturbed_by(&graph, f, topo)?);
    }

    let mut sim = build_protocol(choice, topo, graph, dest, seed);
    sim.run_to_quiescence(1_000_000.0);
    let metrics = measure_recovery(sim.as_mut(), &perturbed, 5_000_000.0, |s| {
        for f in faults {
            apply_fault(s, f, topo);
        }
    });

    let mut t = Table::new(
        format!("{:?} on {:?} (destination {dest})", choice, topo),
        &["metric", "value"],
    );
    t.row(&[
        "perturbed nodes".to_string(),
        format!("{}", perturbed.len()),
    ]);
    t.row(&[
        "stabilization time".to_string(),
        fmt_f64(metrics.stabilization_time),
    ]);
    t.row(&[
        "contaminated nodes".to_string(),
        metrics.contaminated.len().to_string(),
    ]);
    t.row(&[
        "contamination range".to_string(),
        metrics.contamination_range.to_string(),
    ]);
    t.row(&["actions".to_string(), metrics.actions.to_string()]);
    t.row(&["messages".to_string(), metrics.messages.to_string()]);
    t.row(&[
        "healthy route flaps".to_string(),
        metrics.healthy_route_flaps.to_string(),
    ]);
    t.row(&["quiescent".to_string(), metrics.quiescent.to_string()]);
    t.row(&[
        "routes correct".to_string(),
        metrics.routes_correct.to_string(),
    ]);
    let _ = write!(out, "{t}");
    if want_timeline {
        let _ = write!(
            out,
            "\ntimeline:\n{}",
            timeline::render_timeline(sim.trace())
        );
    }
    Ok(())
}

/// Reads and parses a scenario file, prefixing errors with the path.
fn load_scenario_file(path: &str) -> Result<Scenario, ParseError> {
    let src = fs::read_to_string(path).map_err(|e| ParseError(format!("{path}: {e}")))?;
    load_str(&src).map_err(|e| ParseError(format!("{path}: {e}")))
}

/// Applies `--trace-out PATH` to a loaded scenario: overrides the
/// `[trace]` path when the file has one, otherwise attaches a default
/// JSONL trace section. Only chaos and traffic scenarios stream traces.
fn set_trace_out(s: &mut Scenario, path: &str) -> Result<(), String> {
    let base =
        match &mut s.body {
            ScenarioBody::Chaos(c) => c,
            ScenarioBody::Traffic(t) => &mut t.base,
            _ => return Err(
                "--trace-out needs a chaos or traffic scenario (other kinds have no event stream)"
                    .to_string(),
            ),
        };
    match &mut base.trace {
        Some(trace) => trace.path = path.to_string(),
        None => base.trace = Some(TraceSection::new(path)),
    }
    Ok(())
}

/// `viz` output default: the input path with its extension swapped.
fn default_viz_out(input: &str, ext: &str) -> String {
    match input.rsplit_once('.') {
        Some((stem, old)) if !old.contains('/') => format!("{stem}.{ext}"),
        _ => format!("{input}.{ext}"),
    }
}

/// Executes a parsed command; returns the report text.
///
/// # Errors
///
/// Returns a [`ParseError`]-style message for semantic errors (unknown
/// nodes, fault/topology mismatches, unreadable or invalid scenario
/// files, failed scenario expectations).
pub fn run_command(cmd: &Command) -> Result<String, ParseError> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(HELP),
        Command::Viz { input, out: dest } => {
            let html = dest.as_deref().is_none_or(|p| !p.ends_with(".svg"));
            let target = dest
                .clone()
                .unwrap_or_else(|| default_viz_out(input, "html"));
            let rendered = if html {
                lsrp_viz::render_html_file(input)
            } else {
                lsrp_viz::render_svg_file(input)
            }
            .map_err(|e| ParseError(format!("{input}: {e}")))?;
            fs::write(&target, rendered)
                .map_err(|e| ParseError(format!("cannot write '{target}': {e}")))?;
            let _ = writeln!(out, "wrote {target}");
        }
        Command::Topo { topology, seed } => {
            let (g, dest) = build_topology(topology, *seed);
            let mut t = Table::new(format!("{topology:?}"), &["metric", "value"]);
            t.row(&["nodes".to_string(), g.node_count().to_string()]);
            t.row(&["edges".to_string(), g.edge_count().to_string()]);
            t.row(&["connected".to_string(), g.is_connected().to_string()]);
            t.row(&[
                "hop diameter".to_string(),
                g.hop_diameter().map_or("-".into(), |d| d.to_string()),
            ]);
            t.row(&["natural destination".to_string(), dest.to_string()]);
            let max_deg = g.nodes().map(|n| g.degree(n)).max().unwrap_or(0);
            t.row(&["max degree".to_string(), max_deg.to_string()]);
            let _ = write!(out, "{t}");
        }
        Command::Run {
            topology,
            dest,
            protocol,
            faults,
            seed,
            timeline,
        } => run_one(
            *protocol, topology, *dest, faults, *seed, *timeline, &mut out,
        )?,
        Command::RunScenario {
            path,
            jobs,
            regions,
            trace_out,
        } => {
            let mut s = load_scenario_file(path)?;
            if let Some(trace_path) = trace_out {
                set_trace_out(&mut s, trace_path).map_err(ParseError)?;
            }
            let s = s;
            let opts = ExecOptions::sharded(*jobs).with_regions(*regions);
            let outcome = run_scenario_with(&s, opts, Some(&BenchRunner)).map_err(ParseError)?;
            match &outcome.result {
                // A table report matches the experiments binary's
                // `println!("{table}")` framing.
                ScenarioResult::Table(t) => {
                    let _ = writeln!(out, "{t}");
                }
                ScenarioResult::Text(text) => out.push_str(text),
            }
            if !outcome.failures.is_empty() {
                // The report still belongs on stdout; the failures ride
                // the error path so the exit code goes nonzero.
                print!("{out}");
                let mut msg = format!(
                    "{}: {} expectation(s) failed",
                    s.name,
                    outcome.failures.len()
                );
                for f in &outcome.failures {
                    let _ = write!(msg, "\n  {f}");
                }
                return Err(ParseError(msg));
            }
        }
        Command::ScenarioCheck { paths } => {
            for path in paths {
                let s = load_scenario_file(path)?;
                let cells = expand_list(&s).map_err(|e| ParseError(format!("{path}: {e}")))?;
                let _ = writeln!(out, "{path}: ok ({}, {} cells)", s.name, cells.len());
            }
        }
        Command::ScenarioExpand { path } => {
            let s = load_scenario_file(path)?;
            let cells = expand_list(&s).map_err(|e| ParseError(format!("{path}: {e}")))?;
            for line in cells {
                let _ = writeln!(out, "{line}");
            }
        }
        Command::Chaos {
            topology,
            dest,
            seed,
            runs,
            horizon,
            jobs,
            destinations,
            trace_out,
        } => {
            let c = CampaignScenario {
                topology: topology.clone(),
                topology_seed: None,
                destination: *dest,
                destinations: *destinations,
                seed: *seed,
                runs: *runs,
                horizon: *horizon,
                faults: FaultsSection::default(),
                trace: trace_out.clone().map(TraceSection::new),
            };
            let (text, _violating) =
                run_chaos(&c, ExecOptions::sharded(*jobs)).map_err(ParseError)?;
            out.push_str(&text);
        }
        Command::Traffic {
            topology,
            dest,
            seed,
            runs,
            horizon,
            jobs,
            destinations,
            workload,
            flows,
            duration,
            exact,
            link_rate,
            queue_cap,
            discipline,
            cc,
            trace_out,
        } => {
            let t = TrafficScenario {
                base: CampaignScenario {
                    topology: topology.clone(),
                    topology_seed: None,
                    destination: *dest,
                    destinations: *destinations,
                    seed: *seed,
                    runs: *runs,
                    horizon: *horizon,
                    faults: FaultsSection::default(),
                    trace: trace_out.clone().map(TraceSection::new),
                },
                workload: WorkloadSection {
                    kind: *workload,
                    flows: *flows,
                    exact: *exact,
                    ..WorkloadSection::default()
                },
                duration: *duration,
                congestion: CongestionSection {
                    link_rate: *link_rate,
                    queue_cap: *queue_cap,
                    discipline: *discipline,
                    cc: *cc,
                },
            };
            let (text, _violating) =
                run_traffic(&t, ExecOptions::sharded(*jobs)).map_err(ParseError)?;
            out.push_str(&text);
        }
        Command::Compare {
            topology,
            dest,
            faults,
            seed,
        } => {
            for p in [
                ProtocolChoice::Lsrp,
                ProtocolChoice::Dbf,
                ProtocolChoice::Dual,
                ProtocolChoice::Pv,
            ] {
                run_one(p, topology, *dest, faults, *seed, false, &mut out)?;
                out.push('\n');
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;

    fn run(s: &str) -> Result<String, ParseError> {
        let args: Vec<String> = s.split_whitespace().map(str::to_string).collect();
        run_command(&Command::parse(args)?)
    }

    #[test]
    fn topo_reports_statistics() {
        let out = run("topo --topology grid:4x4").unwrap();
        assert!(out.contains("| nodes"));
        assert!(out.contains("16"));
        assert!(out.contains("true"));
    }

    #[test]
    fn fig1_run_reproduces_ideal_containment() {
        let out = run("run --topology fig1 --fault corrupt:9:1 --timeline").unwrap();
        let squashed: String = out.split_whitespace().collect::<Vec<_>>().join(" ");
        assert!(squashed.contains("routes correct | true"), "{out}");
        assert!(squashed.contains("contaminated nodes | 0"), "{out}");
        assert!(squashed.contains("healthy route flaps | 0"), "{out}");
        assert!(out.contains("C1@8"), "{out}");
    }

    #[test]
    fn compare_runs_all_three() {
        let out = run("compare --topology grid:6x6 --fault corrupt:7:0").unwrap();
        assert!(out.contains("Lsrp on"));
        assert!(out.contains("Dbf on"));
        assert!(out.contains("Dual on"));
    }

    #[test]
    fn loop_fault_requires_lollipop() {
        let e = run("run --topology grid:4x4 --fault loop").unwrap_err();
        assert!(e.0.contains("lollipop"));
        let out = run("run --topology lollipop:2:8 --fault loop").unwrap();
        let squashed: String = out.split_whitespace().collect::<Vec<_>>().join(" ");
        assert!(squashed.contains("routes correct | true"), "{out}");
    }

    #[test]
    fn semantic_errors_are_reported() {
        assert!(run("run --topology path:4 --fault corrupt:99").is_err());
        assert!(run("run --topology path:4 --dest 99").is_err());
        assert!(run("run --topology path:4 --fault fail-edge:0:3").is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = run("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("chaos"));
        assert!(out.contains("scenario check"));
    }

    #[test]
    fn chaos_campaign_on_a_grid_reports_clean_runs() {
        let out = run("chaos --topology grid:3x3 --runs 2 --seed 1").unwrap();
        assert!(
            out.contains("chaos campaign: topology grid:3x3 destination v0 runs 2 violating 0"),
            "{out}"
        );
        assert!(out.contains("run seed=1"), "{out}");
        assert!(out.contains("run seed=2"), "{out}");
        assert!(!out.contains("minimized repro"), "{out}");
    }

    #[test]
    fn chaos_report_is_reproducible() {
        let a = run("chaos --topology grid:3x3 --runs 2 --seed 9").unwrap();
        let b = run("chaos --topology grid:3x3 --runs 2 --seed 9").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_rejects_bad_flags() {
        assert!(run("chaos --topology grid:3x3 --runs 0").is_err());
        assert!(run("chaos --topology grid:3x3 --horizon -5").is_err());
        assert!(run("chaos --topology grid:3x3 --dest 99").is_err());
        assert!(run("chaos --topology grid:3x3 --jobs 0").is_err());
    }

    #[test]
    fn chaos_parallel_report_is_byte_identical_to_serial() {
        let serial = run("chaos --topology grid:3x3 --runs 4 --seed 5 --jobs 1").unwrap();
        for jobs in [2, 4] {
            let parallel = run(&format!(
                "chaos --topology grid:3x3 --runs 4 --seed 5 --jobs {jobs}"
            ))
            .unwrap();
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn multi_chaos_campaign_reports_clean_runs() {
        let out =
            run("chaos --topology grid:3x3 --destinations all-pairs --runs 2 --seed 1").unwrap();
        assert!(
            out.contains(
                "multi chaos campaign: topology grid:3x3 destinations 9 runs 2 violating 0"
            ),
            "{out}"
        );
        assert!(out.contains("routes_correct=true"), "{out}");
        let counted = run("chaos --topology grid:3x3 --destinations 3 --runs 1 --seed 1").unwrap();
        assert!(counted.contains("destinations 3"), "{counted}");
    }

    #[test]
    fn multi_chaos_parallel_report_is_byte_identical_to_serial() {
        let serial =
            run("chaos --topology grid:3x3 --destinations 4 --runs 3 --seed 5 --jobs 1").unwrap();
        for jobs in [2, 4] {
            let parallel = run(&format!(
                "chaos --topology grid:3x3 --destinations 4 --runs 3 --seed 5 --jobs {jobs}"
            ))
            .unwrap();
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn multi_chaos_rejects_too_many_destinations() {
        let e = run("chaos --topology grid:3x3 --destinations 99 --runs 1").unwrap_err();
        assert!(e.0.contains("exceeds"), "{e:?}");
    }

    #[test]
    fn traffic_campaign_reports_delivery() {
        let out =
            run("traffic --topology grid:3x3 --runs 1 --seed 3 --flows 8 --duration 80").unwrap();
        assert!(
            out.contains("traffic campaign: topology grid:3x3 destination v0 runs 1"),
            "{out}"
        );
        assert!(out.contains("injected="), "{out}");
        assert!(out.contains("mean_stretch="), "{out}");
    }

    #[test]
    fn traffic_parallel_report_is_byte_identical_to_serial() {
        let base = "traffic --topology grid:3x3 --runs 2 --seed 5 --flows 8 --duration 80";
        let serial = run(&format!("{base} --jobs 1")).unwrap();
        for jobs in [2, 4] {
            let parallel = run(&format!("{base} --jobs {jobs}")).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn congested_traffic_campaign_reports_the_congestion_lane() {
        let out = run(
            "traffic --topology grid:3x3 --runs 1 --seed 3 --flows 6 --duration 80 \
             --link-rate 200 --queue-cap 2000 --cc aimd",
        )
        .unwrap();
        assert!(out.contains("qdrop="), "{out}");
        assert!(out.contains("qpeak="), "{out}");
        assert!(out.contains("goodput="), "{out}");
        assert!(out.contains("fct_mean="), "{out}");
    }

    #[test]
    fn congested_traffic_parallel_report_is_byte_identical_to_serial() {
        let base = "traffic --topology grid:3x3 --runs 2 --seed 5 --flows 6 --duration 80 \
                    --link-rate 200 --queue-cap 2000 --discipline ecn --cc aimd";
        let serial = run(&format!("{base} --jobs 1")).unwrap();
        for jobs in [2, 4] {
            let parallel = run(&format!("{base} --jobs {jobs}")).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn multi_traffic_campaign_reports_per_tree_verdicts() {
        let out = run(
            "traffic --topology grid:3x3 --destinations 2 --runs 1 --seed 2 \
             --flows 6 --duration 80 --workload all-pairs",
        )
        .unwrap();
        assert!(
            out.contains("multi traffic campaign: topology grid:3x3 destinations 2 runs 1"),
            "{out}"
        );
        assert!(out.contains("routes_correct=true"), "{out}");
        assert!(out.contains("injected="), "{out}");
    }

    #[test]
    fn traffic_rejects_bad_flags() {
        assert!(run("traffic --topology grid:3x3 --flows 0").is_err());
        assert!(run("traffic --topology grid:3x3 --duration -1").is_err());
        assert!(run("traffic --topology grid:3x3 --workload bursty").is_err());
        assert!(run("traffic --topology grid:3x3 --dest 99 --runs 1").is_err());
        assert!(run("traffic --topology grid:3x3 --destinations 99 --runs 1").is_err());
    }

    // -----------------------------------------------------------------
    // Scenario subcommands
    // -----------------------------------------------------------------

    /// Writes a scenario to a temp file and returns its path.
    fn temp_scenario(name: &str, body: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lsrp-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::write(&path, body).unwrap();
        path
    }

    const CHAOS_SCENARIO: &str = r#"
[scenario]
name = "cli-chaos"
kind = "chaos"
expect = ["violating == 0"]

[topology]
spec = "grid:3x3"

[campaign]
seed = 5
runs = 2
"#;

    #[test]
    fn scenario_run_matches_the_flag_invocation() {
        let path = temp_scenario("chaos.toml", CHAOS_SCENARIO);
        let via_flags = run("chaos --topology grid:3x3 --runs 2 --seed 5").unwrap();
        let via_file = run(&format!("run {}", path.display())).unwrap();
        assert_eq!(via_flags, via_file);
    }

    #[test]
    fn scenario_run_is_byte_identical_across_jobs() {
        let path = temp_scenario("chaos_jobs.toml", CHAOS_SCENARIO);
        let serial = run(&format!("run {} --jobs 1", path.display())).unwrap();
        for jobs in [2, 4] {
            let parallel = run(&format!("run {} --jobs {jobs}", path.display())).unwrap();
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn scenario_run_is_byte_identical_across_regions() {
        // The CI determinism job in yaml form: the region-parallel
        // engine inside each cell may not change a byte of the report.
        let path = temp_scenario("chaos_regions.toml", CHAOS_SCENARIO);
        let serial = run(&format!("run {}", path.display())).unwrap();
        for (regions, jobs) in [(2, 1), (4, 4)] {
            let par = run(&format!(
                "run {} --regions {regions} --jobs {jobs}",
                path.display()
            ))
            .unwrap();
            assert_eq!(serial, par, "regions={regions} jobs={jobs}");
        }
    }

    const CONGESTED_SCENARIO: &str = r#"
[scenario]
name = "cli-congested"
kind = "traffic"

[topology]
spec = "grid:3x3"

[campaign]
seed = 5
runs = 2

[workload]
flows = 6

[traffic]
duration = 80.0

[congestion]
link_rate = 200.0
queue_cap = 2000
discipline = "ecn"
cc = "aimd"
"#;

    #[test]
    fn congested_scenario_run_is_byte_identical_across_regions() {
        let path = temp_scenario("congested_regions.toml", CONGESTED_SCENARIO);
        let serial = run(&format!("run {}", path.display())).unwrap();
        let par = run(&format!("run {} --regions 4 --jobs 4", path.display())).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn scenario_check_and_expand_report_cells() {
        let path = temp_scenario("check.toml", CHAOS_SCENARIO);
        let out = run(&format!("scenario check {}", path.display())).unwrap();
        assert!(out.contains("ok (cli-chaos, 1 cells)"), "{out}");
        let out = run(&format!("scenario expand {}", path.display())).unwrap();
        assert!(out.contains("chaos campaign: topology grid:3x3"), "{out}");
    }

    #[test]
    fn scenario_errors_name_the_file() {
        let e = run("run no-such-scenario.toml").unwrap_err();
        assert!(e.0.contains("no-such-scenario.toml"), "{e:?}");
        let path = temp_scenario("bad.toml", "[scenario]\nname = \"x\"\n");
        let e = run(&format!("scenario check {}", path.display())).unwrap_err();
        assert!(e.0.contains("bad.toml"), "{e:?}");
    }

    #[test]
    fn scenario_expectation_failures_exit_nonzero() {
        let failing = CHAOS_SCENARIO.replace("violating == 0", "violating >= 1");
        let path = temp_scenario("failing.toml", &failing);
        let e = run(&format!("run {}", path.display())).unwrap_err();
        assert!(e.0.contains("expectation"), "{e:?}");
    }
}
