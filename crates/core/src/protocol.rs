//! The LSRP node: Figure 4's actions wired into the simulator's
//! guarded-action interface.
//!
//! | action | guard | hold | statement |
//! |---|---|---|---|
//! | `S1`  | `MP.v ∧ p.v ≠ v` | 0 | `p.v := v`; broadcast |
//! | `S2(k)` | `SW.v.k ∧ ¬ghost.k.v` | `hd_S` | `d.v, p.v := d.k.v + w.v.k, k`; `ghost.v := false`; broadcast |
//! | `C1`  | `¬ghost.v ∧ (SP.v ∨ CW.v)` | `hd_C` | `ghost.v := true`; if `SP.v` then `p.v := v`; broadcast |
//! | `C2`  | `ghost.v ∧` no perturbed child | 0 | `ghost.v := false`; re-root at destination / parent substitute / `∞`; broadcast |
//! | `SC`  | `ghost.v ∧ SCW.v` | `hd_SC` | `ghost.v := false`; initiator recovers its parent; broadcast |
//! | `SYN1` | refresh due (clock) | 0 | broadcast (maintenance) |
//! | `SYN2` | message reception | 0 | update mirrors |

use std::collections::BTreeMap;

use lsrp_graph::{Distance, NodeId, RouteEntry, Weight};
use lsrp_sim::{ActionId, Effects, EnabledSet, ForgedAdvert, HarnessProtocol, ProtocolNode};

use crate::predicates;
use crate::state::{LsrpMsg, LsrpState, Mirror};
use crate::timing::TimingConfig;

/// Action kind tags (the `kind` field of [`ActionId`]).
pub mod actions {
    /// `S1` — minimal-point parent fix.
    pub const S1: u8 = 0;
    /// `S2(k)` — stabilization wave from neighbor `k`.
    pub const S2: u8 = 1;
    /// `C1` — containment wave (initiate or propagate outward).
    pub const C1: u8 = 2;
    /// `C2` — containment wave shrink-back.
    pub const C2: u8 = 3;
    /// `SC` — super-containment wave.
    pub const SC: u8 = 4;
    /// `SYN1` — periodic mirror refresh (maintenance).
    pub const SYN1: u8 = 5;
}

/// One LSRP node, driving an [`LsrpState`] through the paper's actions.
#[derive(Debug, Clone, PartialEq)]
pub struct LsrpNode {
    state: LsrpState,
    timing: TimingConfig,
}

impl LsrpNode {
    /// Creates a node around an initial state.
    pub fn new(state: LsrpState, timing: TimingConfig) -> Self {
        LsrpNode { state, timing }
    }

    /// Read access to the protocol state.
    pub fn state(&self) -> &LsrpState {
        &self.state
    }

    /// Mutable access to the protocol state — this is the *state
    /// corruption* fault surface; the engine re-evaluates guards after
    /// [`lsrp_sim::Engine::with_node_mut`].
    pub fn state_mut(&mut self) -> &mut LsrpState {
        &mut self.state
    }

    /// The timing configuration this node runs with.
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    fn set_d(&mut self, d: Distance, fx: &mut Effects<LsrpMsg>) {
        if self.state.d != d {
            self.state.d = d;
            fx.note_var_change();
        }
    }

    fn set_p(&mut self, p: NodeId, fx: &mut Effects<LsrpMsg>) {
        if self.state.p != p {
            self.state.p = p;
            fx.note_var_change();
        }
    }

    fn set_ghost(&mut self, ghost: bool, fx: &mut Effects<LsrpMsg>) {
        if self.state.ghost != ghost {
            self.state.ghost = ghost;
            fx.note_var_change();
        }
    }

    fn broadcast_state(&mut self, now_local: f64, fx: &mut Effects<LsrpMsg>) {
        self.state.t_last = now_local;
        fx.broadcast(self.state.message());
    }

    /// Hash of the values a guard witnesses: our own route variables plus
    /// the mirrors of the given neighbors. Used as the guard fingerprint
    /// so holds restart when the witnessed information changes.
    fn witness_fingerprint(&self, neighbors: &[lsrp_graph::NodeId]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.state.d.hash(&mut h);
        self.state.p.hash(&mut h);
        self.state.ghost.hash(&mut h);
        for &k in neighbors {
            k.hash(&mut h);
            self.state.mirror(k).hash(&mut h);
        }
        h.finish()
    }
}

impl ProtocolNode for LsrpNode {
    type Msg = LsrpMsg;

    fn enabled_actions(&self, now_local: f64) -> EnabledSet {
        let mut set = EnabledSet::none();
        self.enabled_actions_into(now_local, &mut set);
        set
    }

    // The guard logic lives in the buffer-filling variant: the engine
    // re-evaluates guards after every event with a reusable buffer.
    fn enabled_actions_into(&self, now_local: f64, set: &mut EnabledSet) {
        let s = &self.state;

        // S1: MP.v ∧ p.v ≠ v, hold 0.
        if predicates::mp(s) && s.p != s.id {
            set.enable(ActionId::plain(actions::S1), 0.0);
        }

        // S2(k): SW.v.k ∧ ¬ghost.k.v, hold hd_S (one instance per k).
        // The hold restarts if the values the adoption is based on — our
        // own route or the mirrors of k and of the current parent —
        // change mid-hold (see EnabledSet::fingerprints).
        for &k in s.neighbors.keys() {
            if !s.mirror(k).ghost && predicates::sw(s, k) {
                set.enable_with_fingerprint(
                    ActionId::with_param(actions::S2, k),
                    self.timing.hd_s,
                    self.witness_fingerprint(&[k, s.p]),
                );
            }
        }

        // C1: ¬ghost.v ∧ (SP.v ∨ CW.v), hold hd_C.
        if !s.ghost && (predicates::sp(s) || predicates::cw(s)) {
            set.enable(ActionId::plain(actions::C1), self.timing.hd_c);
        }

        // C2: ghost.v ∧ no perturbed child; hold 0 per the paper, or the
        // anti-race hd_c2 (see TimingConfig::hd_c2). With a nonzero hold,
        // the hold restarts on any witnessed-value change so the parent
        // substitute is chosen from settled information.
        if predicates::c2_ready(s) {
            let ks: Vec<_> = s.neighbors.keys().copied().collect();
            set.enable_with_fingerprint(
                ActionId::plain(actions::C2),
                self.timing.hd_c2,
                self.witness_fingerprint(&ks),
            );
        }

        // SC: ghost.v ∧ SCW.v, hold hd_SC (fingerprinted: the recovery
        // parent must be chosen from settled mirrors).
        if s.ghost && predicates::scw(s) {
            let ks: Vec<_> = s.neighbors.keys().copied().collect();
            set.enable_with_fingerprint(
                ActionId::plain(actions::SC),
                self.timing.hd_sc,
                self.witness_fingerprint(&ks),
            );
        }

        // SYN1: (t.v + period <= Clk.v) ∨ (t.v > Clk.v), hold 0.
        if let Some(period) = self.timing.syn_period {
            if s.t_last + period <= now_local || s.t_last > now_local {
                set.enable(ActionId::plain(actions::SYN1), 0.0);
            } else {
                set.wake_at(s.t_last + period);
            }
        }
    }

    fn execute(&mut self, action: ActionId, now_local: f64, fx: &mut Effects<LsrpMsg>) {
        match action.kind {
            actions::S1 => {
                let me = self.state.id;
                self.set_p(me, fx);
                self.broadcast_state(now_local, fx);
            }
            actions::S2 => {
                let k = action.param.expect("S2 is parameterized");
                let d = self.state.offer(k);
                self.set_d(d, fx);
                self.set_p(k, fx);
                self.set_ghost(false, fx);
                self.broadcast_state(now_local, fx);
            }
            actions::C1 => {
                self.set_ghost(true, fx);
                if predicates::sp(&self.state) {
                    let me = self.state.id;
                    self.set_p(me, fx);
                }
                self.broadcast_state(now_local, fx);
            }
            actions::C2 => {
                self.set_ghost(false, fx);
                if self.state.id == self.state.dest {
                    let me = self.state.id;
                    self.set_d(Distance::ZERO, fx);
                    self.set_p(me, fx);
                } else if let Some(k) = predicates::best_parent_substitute(&self.state) {
                    let d = self.state.offer(k);
                    self.set_d(d, fx);
                    self.set_p(k, fx);
                } else {
                    // No substitute: withdraw the route. Keeping p := v
                    // (not some stale neighbor) is what guarantees loop
                    // freedom during stabilization.
                    let me = self.state.id;
                    self.set_d(Distance::Infinite, fx);
                    self.set_p(me, fx);
                }
                self.broadcast_state(now_local, fx);
            }
            actions::SC => {
                self.set_ghost(false, fx);
                if self.state.p == self.state.id && self.state.id != self.state.dest {
                    // The wave initiator set p := v when it (mistakenly)
                    // declared itself a source; recover the parent now.
                    if let Some(k) = predicates::recovery_parent(&self.state) {
                        self.set_p(k, fx);
                    }
                }
                self.broadcast_state(now_local, fx);
            }
            actions::SYN1 => {
                self.broadcast_state(now_local, fx);
            }
            other => unreachable!("unknown LSRP action kind {other}"),
        }
    }

    fn on_receive(
        &mut self,
        from: NodeId,
        msg: &LsrpMsg,
        _now_local: f64,
        fx: &mut Effects<LsrpMsg>,
    ) {
        // SYN2: record the neighbor's latest values.
        if self.state.is_neighbor(from) && self.state.absorb(from, msg) {
            fx.note_mirror_change();
        }
    }

    fn on_neighbors_changed(
        &mut self,
        neighbors: &BTreeMap<NodeId, Weight>,
        now_local: f64,
        fx: &mut Effects<LsrpMsg>,
    ) {
        let grew = neighbors.keys().any(|k| !self.state.is_neighbor(*k));
        let weights_changed = neighbors
            .iter()
            .any(|(k, w)| self.state.neighbors.get(k).is_some_and(|old| old != w));
        self.state.set_neighbors(neighbors.clone());
        if grew || weights_changed {
            // Link-up hello: let new neighbors learn our state without
            // waiting for the next SYN1 round.
            self.broadcast_state(now_local, fx);
        }
    }

    fn route_entry(&self) -> RouteEntry {
        self.state.route_entry()
    }

    fn in_containment(&self) -> bool {
        self.state.ghost
    }

    fn action_name(action: ActionId) -> &'static str {
        match action.kind {
            actions::S1 => "S1",
            actions::S2 => "S2",
            actions::C1 => "C1",
            actions::C2 => "C2",
            actions::SC => "SC",
            actions::SYN1 => "SYN1",
            _ => "?",
        }
    }

    fn is_maintenance(action: ActionId) -> bool {
        action.kind == actions::SYN1
    }
}

impl HarnessProtocol for LsrpNode {
    const NAME: &'static str = "LSRP";
    type Meta = TimingConfig;

    fn corrupt_distance(&mut self, d: Distance, _dest: NodeId) {
        self.state.d = d;
    }

    fn poison_mirror(&mut self, about: NodeId, advert: ForgedAdvert, _dest: NodeId) {
        self.state.mirrors.insert(
            about,
            Mirror {
                d: advert.d,
                p: advert.parent,
                ghost: advert.ghost,
            },
        );
    }

    fn inject_route(&mut self, d: Distance, p: NodeId, _dest: NodeId) {
        self.state.d = d;
        self.state.p = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn node_with(d: u64, p: u32) -> LsrpNode {
        let mut s = LsrpState::fresh(v(0), v(9), BTreeMap::from([(v(1), 1), (v(2), 1)]));
        s.d = Distance::Finite(d);
        s.p = v(p);
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: false,
            },
        );
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(6),
                p: v(9),
                ghost: false,
            },
        );
        LsrpNode::new(s, TimingConfig::paper_example(1.0))
    }

    fn fx() -> Effects<LsrpMsg> {
        // Effects has no public constructor; go through a tiny helper on
        // the engine-facing trait instead.
        lsrp_sim::test_support::effects()
    }

    #[test]
    fn consistent_node_enables_nothing() {
        let n = node_with(3, 1); // d = offer(v1) = 3
        let set = n.enabled_actions(0.0);
        assert!(set.actions.is_empty(), "enabled: {:?}", set.actions);
    }

    #[test]
    fn corrupted_small_enables_c1_only() {
        let n = node_with(1, 1);
        let set = n.enabled_actions(0.0);
        assert_eq!(set.actions, vec![(ActionId::plain(actions::C1), 8.0)]);
    }

    #[test]
    fn corrupted_large_enables_s2_repair() {
        let n = node_with(5, 1);
        let set = n.enabled_actions(0.0);
        assert_eq!(
            set.actions,
            vec![(ActionId::with_param(actions::S2, v(1)), 17.0)]
        );
    }

    #[test]
    fn c1_marks_source_and_sets_self_parent() {
        let mut n = node_with(1, 1);
        let mut e = fx();
        n.execute(ActionId::plain(actions::C1), 0.0, &mut e);
        assert!(n.state().ghost);
        assert_eq!(n.state().p, v(0));
        assert!(e.var_changed());
    }

    #[test]
    fn c2_adopts_minimal_substitute_at_least_d() {
        let mut n = node_with(1, 0);
        n.state_mut().ghost = true;
        let mut e = fx();
        n.execute(ActionId::plain(actions::C2), 0.0, &mut e);
        assert!(!n.state().ghost);
        assert_eq!(n.state().d, Distance::Finite(3));
        assert_eq!(n.state().p, v(1));
    }

    #[test]
    fn c2_withdraws_route_when_no_substitute() {
        let mut n = node_with(1, 0);
        n.state_mut().ghost = true;
        // Make both neighbors children of v0.
        n.state_mut().absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(0),
                ghost: false,
            },
        );
        n.state_mut().absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(0),
                ghost: false,
            },
        );
        let mut e = fx();
        n.execute(ActionId::plain(actions::C2), 0.0, &mut e);
        assert_eq!(n.state().d, Distance::Infinite);
        assert_eq!(n.state().p, v(0));
    }

    #[test]
    fn c2_at_destination_resets_to_zero() {
        let mut s = LsrpState::fresh(v(9), v(9), BTreeMap::from([(v(1), 1)]));
        s.d = Distance::Finite(7);
        s.p = v(1);
        s.ghost = true;
        let mut n = LsrpNode::new(s, TimingConfig::paper_example(1.0));
        let mut e = fx();
        n.execute(ActionId::plain(actions::C2), 0.0, &mut e);
        assert_eq!(n.state().d, Distance::ZERO);
        assert_eq!(n.state().p, v(9));
    }

    #[test]
    fn sc_recovers_initiator_parent() {
        let mut n = node_with(3, 0); // p = self (was SP), d = 3 = offer(v1)
        n.state_mut().ghost = true;
        let mut e = fx();
        n.execute(ActionId::plain(actions::SC), 0.0, &mut e);
        assert!(!n.state().ghost);
        assert_eq!(n.state().p, v(1), "recovered via the exact-offer neighbor");
    }

    #[test]
    fn sc_keeps_parent_for_wave_propagators() {
        let mut n = node_with(3, 1);
        n.state_mut().ghost = true;
        let mut e = fx();
        n.execute(ActionId::plain(actions::SC), 0.0, &mut e);
        assert_eq!(n.state().p, v(1));
    }

    #[test]
    fn s1_fixes_destination_parent() {
        let mut s = LsrpState::fresh(v(9), v(9), BTreeMap::from([(v(1), 1)]));
        s.p = v(1); // corrupted parent at the destination
        let n = LsrpNode::new(s, TimingConfig::paper_example(1.0));
        let set = n.enabled_actions(0.0);
        assert!(set
            .actions
            .iter()
            .any(|&(a, h)| a == ActionId::plain(actions::S1) && h == 0.0));
    }

    #[test]
    fn syn1_fires_on_schedule_and_on_corrupted_timestamp() {
        let timing = TimingConfig::paper_example(1.0).with_syn_period(10.0);
        let s = LsrpState::fresh(v(0), v(9), BTreeMap::from([(v(1), 1)]));
        let n = LsrpNode::new(s, timing);
        // Not due yet at local time 5 -> wakeup requested at 10.
        let set = n.enabled_actions(5.0);
        assert!(set.actions.iter().all(|(a, _)| a.kind != actions::SYN1));
        assert_eq!(set.wakeup_local, Some(10.0));
        // Due at 10.
        let set = n.enabled_actions(10.0);
        assert!(set.actions.iter().any(|(a, _)| a.kind == actions::SYN1));
        // Corrupted t_last in the future also triggers SYN1.
        let mut n = n;
        n.state_mut().t_last = 1_000.0;
        let set = n.enabled_actions(10.0);
        assert!(set.actions.iter().any(|(a, _)| a.kind == actions::SYN1));
    }

    #[test]
    fn receive_updates_mirrors_only_for_neighbors() {
        let mut n = node_with(3, 1);
        let mut e = fx();
        n.on_receive(
            v(42),
            &LsrpMsg {
                d: Distance::ZERO,
                p: v(42),
                ghost: false,
            },
            0.0,
            &mut e,
        );
        assert!(!e.mirror_changed(), "non-neighbor messages are ignored");
        let mut e = fx();
        n.on_receive(
            v(1),
            &LsrpMsg {
                d: Distance::ZERO,
                p: v(9),
                ghost: false,
            },
            0.0,
            &mut e,
        );
        assert!(e.mirror_changed());
    }

    #[test]
    fn action_names_and_maintenance_flags() {
        assert_eq!(LsrpNode::action_name(ActionId::plain(actions::C1)), "C1");
        assert_eq!(
            LsrpNode::action_name(ActionId::plain(actions::SYN1)),
            "SYN1"
        );
        assert!(LsrpNode::is_maintenance(ActionId::plain(actions::SYN1)));
        assert!(!LsrpNode::is_maintenance(ActionId::plain(actions::S1)));
    }
}
