//! # lsrp-core — the LSRP protocol
//!
//! The paper's primary contribution: **L**ocally **S**tabilizing shortest
//! path **R**outing **P**rotocol (Arora & Zhang, DSN 2003).
//!
//! LSRP computes and maintains a shortest path tree toward a destination
//! under *arbitrary* state corruption and topology churn, with
//! **local stabilization**: recovery time and the set of affected nodes
//! scale with the size of the perturbation, not the size of the network.
//! It does so by layering three diffusing waves with strictly increasing
//! speeds (stabilization → containment → super-containment), enforced by
//! guard hold-times ([`TimingConfig`]), plus loop freedom during
//! stabilization and constant-time breakage of corrupted loops.
//!
//! # Quick example
//!
//! ```
//! use lsrp_core::{LsrpSimulation, LsrpSimulationExt};
//! use lsrp_graph::{generators, Distance, NodeId};
//!
//! let dest = NodeId::new(0);
//! let mut sim = LsrpSimulation::builder(generators::grid(4, 4, 1), dest).build();
//!
//! // Corrupt one node's distance; LSRP contains and repairs it locally.
//! sim.corrupt_distance(NodeId::new(5), Distance::Finite(0));
//! let report = sim.run_to_quiescence(1_000.0);
//! assert!(report.quiescent);
//! assert!(sim.routes_correct());
//! ```
//!
//! Module map: [`state`] (node variables), [`predicates`] (the guards
//! `MP/SP/SW/CW/PS/SCW`), [`protocol`] (the actions `S1..SC`, `SYN`),
//! [`timing`] (wave-speed constraints), [`legitimacy`] (the predicate `L`),
//! [`builder`] (the [`LsrpSimulation`] facade).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod legitimacy;
pub mod predicates;
pub mod protocol;
pub mod state;
pub mod timing;

pub use crate::builder::{InitialState, LsrpSimulation, LsrpSimulationBuilder, LsrpSimulationExt};
pub use crate::protocol::{actions, LsrpNode};
pub use crate::state::{LsrpMsg, LsrpState, Mirror};
pub use crate::timing::{InvalidTiming, TimingConfig};
