//! High-level simulation facade: build an LSRP network, run it, poke it
//! with faults, and inspect the outcome.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lsrp_graph::{Distance, Graph, NodeId, RouteTable, Weight};
use lsrp_sim::{Engine, EngineConfig, SimHarness};

use crate::legitimacy;
use crate::protocol::LsrpNode;
use crate::state::{LsrpState, Mirror};
use crate::timing::TimingConfig;

/// A running LSRP network: the generic harness specialized to LSRP, with
/// the wave timing as its metadata. LSRP-specific conveniences live in
/// [`LsrpSimulationExt`].
pub type LsrpSimulation = SimHarness<LsrpNode>;

/// How node states are initialized.
#[derive(Debug, Clone)]
pub enum InitialState {
    /// Start at a canonical legitimate state (Dijkstra distances, smallest-
    /// id parents, consistent mirrors). The usual baseline for fault
    /// injection.
    Legitimate,
    /// Start at a *specific* legitimate (or deliberately illegitimate)
    /// route table with consistent mirrors — e.g. the paper's Figure 1
    /// chosen tree.
    Table(RouteTable),
    /// Cold start: the destination knows itself, everyone else has no
    /// route; mirrors are consistent (as after a hello exchange).
    Fresh,
    /// Fully arbitrary state — random distances, parents, containment
    /// flags, timestamps and mirrors — the Theorem 1 setting. Pair with a
    /// `SYN` period so corrupted mirrors self-stabilize.
    Arbitrary {
        /// Seed for the randomized state (independent of the engine seed).
        seed: u64,
    },
}

/// Builder for [`LsrpSimulation`].
#[derive(Debug, Clone)]
pub struct LsrpSimulationBuilder {
    graph: Graph,
    destination: NodeId,
    timing: TimingConfig,
    timing_unchecked: bool,
    engine: EngineConfig,
    initial: InitialState,
}

impl LsrpSimulationBuilder {
    /// Sets wave timing (default: [`TimingConfig::paper_example`] with the
    /// engine's max link delay as `u`).
    #[must_use]
    pub fn timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Sets wave timing *without* `build()`'s wave-speed validation.
    ///
    /// This exists for the adversarial harness: deliberately
    /// misconfigured waves (e.g. a containment hold time at or above the
    /// stabilization hold time) break the paper's containment guarantees,
    /// and the invariant monitors are expected to catch that. Production
    /// configurations should go through [`timing`](Self::timing).
    #[must_use]
    pub fn timing_unchecked(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self.timing_unchecked = true;
        self
    }

    /// Sets the engine configuration (links, clocks, seed).
    #[must_use]
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine = config;
        self
    }

    /// Sets the initial protocol state.
    #[must_use]
    pub fn initial_state(mut self, initial: InitialState) -> Self {
        self.initial = initial;
        self
    }

    /// Shortcut for setting the engine seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the timing violates the wave-speed constraints for the
    /// configured clock drift and link delay, or if the destination is not
    /// a node of the graph.
    pub fn build(self) -> LsrpSimulation {
        assert!(
            self.graph.has_node(self.destination),
            "destination {} is not in the graph",
            self.destination
        );
        if !self.timing_unchecked {
            self.timing
                .validate(self.engine.clocks.rho(), self.engine.link.delay_max)
                .expect("LSRP timing must satisfy the wave-speed constraints");
        }

        let mut states = initial_states(&self.graph, self.destination, &self.initial);
        let timing = self.timing;
        let destination = self.destination;
        let engine = Engine::new(self.graph, self.engine, move |id, neighbors| {
            let mut state = states
                .remove(&id)
                .unwrap_or_else(|| LsrpState::fresh(id, destination, neighbors.clone()));
            state.set_neighbors(neighbors.clone());
            LsrpNode::new(state, timing)
        });
        // Settle window for quiescence detection: zero without a `SYN`
        // period (the event queue drains), else long enough that periodic
        // refreshes changing nothing cannot keep the run alive.
        let settle = match timing.syn_period {
            Some(p) => 2.0 * p + 1.0,
            None => 0.0,
        };
        LsrpSimulation::from_parts(engine, destination, settle, timing)
    }
}

fn initial_states(
    graph: &Graph,
    destination: NodeId,
    initial: &InitialState,
) -> BTreeMap<NodeId, LsrpState> {
    let table = match initial {
        InitialState::Legitimate => Some(RouteTable::legitimate(graph, destination)),
        InitialState::Table(t) => Some(t.clone()),
        InitialState::Fresh => None,
        InitialState::Arbitrary { seed } => {
            return arbitrary_states(graph, destination, *seed);
        }
    };
    let mut states = BTreeMap::new();
    for v in graph.nodes() {
        let neighbors: BTreeMap<NodeId, Weight> = graph.neighbors(v).collect();
        let mut s = LsrpState::fresh(v, destination, neighbors);
        if let Some(t) = &table {
            if let Some(e) = t.entry(v) {
                s.d = e.distance;
                s.p = e.parent;
            }
        }
        states.insert(v, s);
    }
    // Consistent mirrors: every node knows its neighbors' actual values.
    let snapshot: BTreeMap<NodeId, Mirror> = states
        .iter()
        .map(|(&v, s)| {
            (
                v,
                Mirror {
                    d: s.d,
                    p: s.p,
                    ghost: s.ghost,
                },
            )
        })
        .collect();
    for s in states.values_mut() {
        let ids: Vec<NodeId> = s.neighbors.keys().copied().collect();
        for k in ids {
            s.mirrors.insert(k, snapshot[&k]);
        }
    }
    states
}

fn arbitrary_states(graph: &Graph, destination: NodeId, seed: u64) -> BTreeMap<NodeId, LsrpState> {
    let mut rng = StdRng::seed_from_u64(seed);
    let all: Vec<NodeId> = graph.nodes().collect();
    let max_d = (graph.node_count() as u64) * 2 + 4;
    let random_distance = |rng: &mut StdRng| -> Distance {
        if rng.gen_bool(0.1) {
            Distance::Infinite
        } else {
            Distance::Finite(rng.gen_range(0..=max_d))
        }
    };
    let mut states = BTreeMap::new();
    for v in graph.nodes() {
        let neighbors: BTreeMap<NodeId, Weight> = graph.neighbors(v).collect();
        let neighbor_ids: Vec<NodeId> = neighbors.keys().copied().collect();
        let mut s = LsrpState::fresh(v, destination, neighbors);
        s.d = random_distance(&mut rng);
        s.p = {
            let roll: f64 = rng.gen();
            if roll < 0.7 && !neighbor_ids.is_empty() {
                neighbor_ids[rng.gen_range(0..neighbor_ids.len())]
            } else if roll < 0.9 {
                v
            } else {
                all[rng.gen_range(0..all.len())]
            }
        };
        s.ghost = rng.gen_bool(0.15);
        s.t_last = rng.gen_range(0.0..1_000.0);
        for k in neighbor_ids {
            let m = Mirror {
                d: random_distance(&mut rng),
                p: if rng.gen_bool(0.5) { v } else { k },
                ghost: rng.gen_bool(0.15),
            };
            s.mirrors.insert(k, m);
        }
        states.insert(v, s);
    }
    states
}

/// LSRP-specific conveniences on [`LsrpSimulation`] (the generic
/// [`SimHarness`] methods — running, route tables, fault injection — are
/// inherent; import this trait for the LSRP-only extras).
pub trait LsrpSimulationExt {
    /// Starts building a simulation of `graph` routing toward
    /// `destination`.
    fn builder(graph: Graph, destination: NodeId) -> LsrpSimulationBuilder;

    /// The wave timing in use.
    fn timing(&self) -> &TimingConfig;

    /// Whether the legitimate-state predicate `L` holds right now.
    fn is_legitimate(&self) -> bool;

    /// Corrupts `p.v` in place.
    fn corrupt_parent(&mut self, v: NodeId, p: NodeId);

    /// Corrupts `ghost.v` in place.
    fn corrupt_ghost(&mut self, v: NodeId, ghost: bool);

    /// Corrupts `v`'s mirror of neighbor `about` in place (used to model
    /// "neighbors have already learned the corrupted value" scenarios).
    fn corrupt_mirror(&mut self, v: NodeId, about: NodeId, mirror: Mirror);

    /// Arbitrary in-place state mutation.
    fn with_state_mut(&mut self, v: NodeId, f: impl FnOnce(&mut LsrpState));
}

impl LsrpSimulationExt for LsrpSimulation {
    fn builder(graph: Graph, destination: NodeId) -> LsrpSimulationBuilder {
        let engine = EngineConfig::default();
        LsrpSimulationBuilder {
            graph,
            destination,
            timing: TimingConfig::paper_example(engine.link.delay_max),
            timing_unchecked: false,
            engine,
            initial: InitialState::Legitimate,
        }
    }

    fn timing(&self) -> &TimingConfig {
        self.meta()
    }

    fn is_legitimate(&self) -> bool {
        legitimacy::is_legitimate(self.engine())
    }

    fn corrupt_parent(&mut self, v: NodeId, p: NodeId) {
        self.engine_mut().with_node_mut(v, |n| n.state_mut().p = p);
    }

    fn corrupt_ghost(&mut self, v: NodeId, ghost: bool) {
        self.engine_mut()
            .with_node_mut(v, |n| n.state_mut().ghost = ghost);
    }

    fn corrupt_mirror(&mut self, v: NodeId, about: NodeId, mirror: Mirror) {
        self.engine_mut().with_node_mut(v, |n| {
            n.state_mut().mirrors.insert(about, mirror);
        });
    }

    fn with_state_mut(&mut self, v: NodeId, f: impl FnOnce(&mut LsrpState)) {
        self.engine_mut().with_node_mut(v, |n| f(n.state_mut()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_graph::generators;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn legitimate_start_is_immediately_quiescent() {
        let mut sim = LsrpSimulation::builder(generators::grid(4, 4, 1), v(0)).build();
        let report = sim.run_to_quiescence(1_000.0);
        assert!(report.quiescent);
        assert_eq!(sim.engine().trace().total_actions(), 0);
        assert!(sim.is_legitimate());
        assert!(sim.routes_correct());
    }

    #[test]
    fn fresh_start_converges_to_shortest_paths() {
        let mut sim = LsrpSimulation::builder(generators::grid(5, 5, 1), v(12))
            .initial_state(InitialState::Fresh)
            .build();
        let report = sim.run_to_quiescence(100_000.0);
        assert!(report.quiescent);
        assert!(sim.routes_correct());
        assert!(sim.is_legitimate());
    }

    #[test]
    fn fresh_start_weighted_graph_converges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = generators::connected_erdos_renyi(24, 0.1, 5, &mut rng);
        let mut sim = LsrpSimulation::builder(g, v(3))
            .initial_state(InitialState::Fresh)
            .seed(11)
            .build();
        let report = sim.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        assert!(sim.routes_correct());
    }

    #[test]
    #[should_panic(expected = "destination v9 is not in the graph")]
    fn missing_destination_panics() {
        let _ = LsrpSimulation::builder(generators::path(3, 1), v(9)).build();
    }

    #[test]
    #[should_panic(expected = "wave-speed constraints")]
    fn invalid_timing_panics() {
        let bad = TimingConfig {
            hd_s: 1.0,
            hd_c: 1.0,
            hd_sc: 0.0,
            hd_c2: 0.0,
            syn_period: None,
        };
        let _ = LsrpSimulation::builder(generators::path(3, 1), v(0))
            .timing(bad)
            .build();
    }
}
