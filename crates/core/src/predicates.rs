//! The guard predicates of LSRP (Figure 4 / §IV-D), reconstructed from the
//! paper's prose definitions.
//!
//! Naming follows the paper: `MP` (minimal point), `SP` (source of fault
//! propagation), `SW` (should propagate a stabilization wave), `CW` (should
//! propagate a containment wave), `PS` (parent substitute), `SCW` (should
//! initiate/propagate a super-containment wave).
//!
//! Two comparison operators are ambiguous in the scanned text and are
//! resolved as follows (both pinned by the Figure 5/6 timeline tests in
//! `protocol.rs`):
//!
//! * the blocker inside `CW` is **strict** (`offer < d.v`): a neighbor
//!   offering exactly `d.v` does not stop containment from propagating —
//!   required for Figure 6, where `C1` must become enabled at `v7`/`v8`
//!   although `v5` offers exactly their current distance;
//! * the comparison inside `PS` is `offer >= d.v`: a parent substitute
//!   must offer *at least* the node's corrupted-small value — required for
//!   Figure 5, where `C2` corrects `d.v9` from the corrupted 1 up to 3 in
//!   one step.

use lsrp_graph::{Distance, NodeId};

use crate::state::LsrpState;

/// `SP.v` — `v` is a (potential) source of fault propagation:
/// no neighbor outside a containment wave can offer `v` a distance no
/// greater than its current one, and `v`'s value is locally unjustifiable
/// (destination with `d != 0`, or non-destination with finite `d`
/// inconsistent with its parent's offer).
pub fn sp(s: &LsrpState) -> bool {
    // The destination is special: its only legitimate value is 0, no
    // neighbor can ever justify anything else, and it never adopts routes
    // (`SW` is false at the destination). So any nonzero value makes it a
    // source outright — this realizes footnote 4's "the destination node
    // can stabilize p.d to d when d.d ≠ 0" via `SP → C1 → C2`. Keeping the
    // generic neighbor-offer blocker here would let *garbage* finite
    // offers pin a corrupted destination forever while the rest of the
    // network counts upward waiting for it (a live oscillation, found by
    // the self-stabilization property test).
    if s.id == s.dest {
        return s.d != Distance::ZERO;
    }
    // A neighbor only "offers" a distance when (a) that distance is
    // finite — an infinite offer is the absence of a route — and (b) the
    // neighbor is not a *child* of v: a child's distance derives from v's
    // own (possibly corrupted) value, so it cannot justify it. The child
    // exclusion realizes the paper's §IV-C intuition that "a node that can
    // select one of its descendants as its new parent … becomes a source
    // of fault propagation"; without it, a node whose child holds a
    // corrupted-small value would adopt the child and close a loop.
    let no_better = !s.neighbors.keys().any(|&k| {
        let m = s.mirror(k);
        let offer = s.offer(k);
        !m.ghost && m.p != s.id && !offer.is_infinite() && offer <= s.d
    });
    let unjustified = s.d != Distance::Infinite && s.d != s.offer(s.p);
    no_better && unjustified
}

/// `MP.v` — `v` is a *minimal point*: the destination at its legitimate
/// value, or a node that has initiated a containment wave that has not
/// finished.
pub fn mp(s: &LsrpState) -> bool {
    (s.id == s.dest && s.d == Distance::ZERO) || (s.ghost && sp(s))
}

/// `SW.v.k` — `v` should propagate a stabilization wave from neighbor `k`:
///
/// * `k` offers `v` a distance no greater than `v`'s current one, and no
///   neighbor offers less than `k` does;
/// * if `k` is not the current parent, switching must strictly improve on
///   the parent's offer — unless the parent is gone or inside a
///   containment wave;
/// * if `k` *is* the current parent, `v`'s distance must disagree with the
///   parent's offer (the consistency-repair case).
///
/// The `S2` guard additionally requires `!ghost.k.v` (checked by the
/// caller building the enabled set), since the state of a node involved in
/// a containment wave is presumed corrupted.
pub fn sw(s: &LsrpState, k: NodeId) -> bool {
    // The destination never routes toward itself through a neighbor: its
    // only legitimate state is (d = 0, p = self), restored via SP → C1 →
    // C2. Letting a corrupted destination adopt neighbor routes would
    // thread transient loops through the root, violating Theorem 3.
    if s.id == s.dest {
        return false;
    }
    if !s.is_neighbor(k) {
        return false;
    }
    // Never adopt a node that claims to be our child — its value derives
    // from ours (same child exclusion as in `SP` and `PS`).
    if s.mirror(k).p == s.id {
        return false;
    }
    // A routeless node with *finite-valued* children still attached must
    // wait for them to detach before re-acquiring a route: the new route
    // could thread through its own stale subtree (invisible beyond one
    // hop) and close a cycle of forwarding-capable nodes. The wait is
    // bounded — such a child sees its parent offering ∞ against its own
    // finite distance, is therefore inconsistent, and acts within one
    // wave (escape via S2, or containment via C1/C2). Routeless children
    // are exempt: they cannot forward packets (no cycle through them) and
    // an ∞-child of an ∞-parent is consistent and may legitimately wait
    // for *us* to re-acquire first. This is the same wait-for-your-subtree
    // discipline C2's guard applies during shrink-back.
    if s.d.is_infinite()
        && s.neighbors.keys().any(|&i| {
            let m = s.mirror(i);
            m.p == s.id && !m.d.is_infinite()
        })
    {
        return false;
    }
    let offer_k = s.offer(k);
    // Adopting an infinite "route" is meaningless (and would let routeless
    // nodes form parent cycles among themselves): a stabilization wave
    // only ever propagates finite distance values.
    if offer_k.is_infinite() || offer_k > s.d {
        return false;
    }
    // Minimality over the *adoptable* neighbors: a ghosted neighbor's or a
    // child's lower offer must not veto adopting the best usable route —
    // otherwise a child holding a corrupted-small value leaves its parent
    // inert with an unjustifiable distance forever.
    if s.neighbors.keys().any(|&i| {
        let m = s.mirror(i);
        !m.ghost && m.p != s.id && s.offer(i) < offer_k
    }) {
        return false;
    }
    if k == s.p {
        s.d != offer_k
    } else {
        let parent_unusable = !s.is_neighbor(s.p) || s.mirror(s.p).ghost;
        parent_unusable || offer_k < s.offer(s.p)
    }
}

/// `CW.v` — `v` should propagate a containment wave from its parent: the
/// parent is a neighbor inside a containment wave, `v` has copied the
/// parent's (corrupted) distance value, and no neighbor outside a
/// containment wave offers strictly less than `v`'s current distance.
pub fn cw(s: &LsrpState) -> bool {
    s.is_neighbor(s.p)
        && s.mirror(s.p).ghost
        && s.d == s.offer(s.p)
        && !s.neighbors.keys().any(|&k| {
            let m = s.mirror(k);
            !m.ghost && m.p != s.id && s.offer(k) < s.d
        })
}

/// `PS.v.k` — `k` is a *parent substitute* for `v` during `C2`: a neighbor
/// outside any containment wave, not a child of `v`, offering at least
/// `v`'s current (corrupted-small) distance, and minimal among such
/// neighbors.
pub fn ps(s: &LsrpState, k: NodeId) -> bool {
    if !s.is_neighbor(k) {
        return false;
    }
    let mk = s.mirror(k);
    if mk.ghost || mk.p == s.id {
        return false;
    }
    // Known-grandchild exclusion: if k's mirrored parent is itself one of
    // our children-by-mirror, adopting k would route straight back into
    // our own subtree (one extra hop of locally-available knowledge beyond
    // the paper's direct-child check — needed when corrupted containment
    // flags trigger `C2` without the containment wave having detached the
    // subtree first).
    if s.neighbors.contains_key(&mk.p) && s.mirror(mk.p).p == s.id {
        return false;
    }
    let offer_k = s.offer(k);
    // An infinite offer is not a substitute — `C2` withdraws the route
    // (`d, p := ∞, v`) instead, keeping the self-parent invariant for
    // routeless nodes.
    if offer_k.is_infinite() || offer_k < s.d {
        return false;
    }
    // Minimality over non-ghost non-child neighbors (same rationale as in
    // `sw`: unusable neighbors must not veto the best substitute).
    !s.neighbors.keys().any(|&i| {
        let m = s.mirror(i);
        !m.ghost && m.p != s.id && s.offer(i) < offer_k
    })
}

/// The best parent substitute (smallest offer, ties by id), if any.
pub fn best_parent_substitute(s: &LsrpState) -> Option<NodeId> {
    s.neighbors
        .keys()
        .copied()
        .filter(|&k| ps(s, k))
        .min_by_key(|&k| (s.offer(k), k))
}

/// The guard of `C2`: `v` is in a containment wave and no neighbor's
/// mirror shows a child that copied `v`'s corrupted value
/// (`p.k.v = v ∧ d.k.v = d.v + w.v.k`). While such a child exists the
/// containment wave is still propagating outward; once none does, it
/// shrinks back through `v`.
pub fn c2_ready(s: &LsrpState) -> bool {
    s.ghost
        && !s.neighbors.iter().any(|(&k, &w)| {
            let mk = s.mirror(k);
            mk.p == s.id && mk.d == s.d.plus(w)
        })
}

/// `SCW.v` — `v` should initiate or propagate a super-containment wave:
/// the destination at its legitimate value, or a non-destination that is
/// no longer a source of fault propagation and whose parent (if any) is
/// not inside a containment wave.
pub fn scw(s: &LsrpState) -> bool {
    if s.id == s.dest {
        s.d == Distance::ZERO
    } else {
        !sp(s) && (s.p == s.id || !s.mirror(s.p).ghost)
    }
}

/// The neighbor a recovering containment-wave initiator re-adopts as its
/// parent inside `SC`: a neighbor whose offer equals `v`'s distance,
/// preferring ones outside containment waves, ties by id.
pub fn recovery_parent(s: &LsrpState) -> Option<NodeId> {
    if s.d.is_infinite() {
        return None; // routeless nodes keep the self parent
    }
    let candidates = || s.neighbors.keys().copied().filter(|&k| s.offer(k) == s.d);
    candidates()
        .find(|&k| !s.mirror(k).ghost)
        .or_else(|| candidates().next())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{LsrpMsg, LsrpState};
    use std::collections::BTreeMap;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A node v0 with neighbors v1 (w=1) and v2 (w=1); destination v9.
    fn base() -> LsrpState {
        let mut s = LsrpState::fresh(v(0), v(9), BTreeMap::from([(v(1), 1), (v(2), 1)]));
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: false,
            },
        );
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(4),
                p: v(9),
                ghost: false,
            },
        );
        s.d = Distance::Finite(3);
        s.p = v(1);
        s
    }

    #[test]
    fn consistent_node_is_not_sp() {
        let s = base(); // d = 3 = offer(v1) = 2 + 1
        assert!(!sp(&s));
        assert!(!mp(&s));
    }

    #[test]
    fn corrupted_small_distance_makes_sp() {
        let mut s = base();
        s.d = Distance::Finite(1); // below both offers (3 and 5)
        assert!(sp(&s));
        // ...but not once it is ghosted AND a neighbor catches up:
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(0),
                p: v(9),
                ghost: false,
            },
        );
        assert!(!sp(&s), "offer 1 <= d 1 blocks SP");
    }

    #[test]
    fn ghost_neighbors_cannot_block_sp() {
        let mut s = base();
        s.d = Distance::Finite(1);
        assert!(sp(&s));
        // A ghosted non-parent neighbor offering less does not count.
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::ZERO,
                p: v(9),
                ghost: true,
            },
        );
        assert!(sp(&s));
        // But a *parent* whose offer matches d.v removes the inconsistency
        // (the node then propagates the containment wave via CW instead).
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::ZERO,
                p: v(9),
                ghost: true,
            },
        );
        assert!(!sp(&s), "d = offer(p) is consistent, ghost or not");
        assert!(cw(&s));
    }

    #[test]
    fn infinite_distance_is_never_sp() {
        let mut s = base();
        s.d = Distance::Infinite;
        s.mirrors.clear(); // all offers infinite
        assert!(!sp(&s));
    }

    #[test]
    fn destination_is_sp_regardless_of_offers() {
        // Footnote-4 semantics: the destination's only repair path is
        // SP -> C1 -> C2, so any nonzero value makes it a source, even
        // when (garbage) finite offers are below it.
        let mut s = LsrpState::fresh(v(9), v(9), BTreeMap::from([(v(1), 1)]));
        s.d = Distance::Finite(5);
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::ZERO, // offers 1 <= 5, would block a non-dest
                p: v(9),
                ghost: false,
            },
        );
        assert!(sp(&s));
        s.d = Distance::Infinite;
        assert!(sp(&s), "a routeless destination is still a source");
    }

    #[test]
    fn routeless_node_waits_for_finite_children() {
        let mut s = base();
        s.d = Distance::Infinite;
        s.p = v(0);
        // v1 offers a finite route, but v2 is still our finite child.
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(4),
                p: v(0),
                ghost: false,
            },
        );
        assert!(!sw(&s, v(1)), "must wait for the stale subtree to detach");
        // A *routeless* child does not block (it cannot forward packets).
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Infinite,
                p: v(0),
                ghost: false,
            },
        );
        assert!(sw(&s, v(1)));
    }

    #[test]
    fn ps_excludes_known_grandchildren() {
        let mut s = base();
        s.d = Distance::Finite(1);
        s.ghost = true;
        // v1 is our child; v2's mirrored parent is v1 -> v2 is a known
        // grandchild and must not be adopted as a substitute.
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(0),
                ghost: false,
            },
        );
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(3),
                p: v(1),
                ghost: false,
            },
        );
        assert!(!ps(&s, v(1)), "direct child");
        assert!(!ps(&s, v(2)), "known grandchild");
        assert_eq!(best_parent_substitute(&s), None);
    }

    #[test]
    fn destination_with_nonzero_distance_is_sp() {
        let mut s = LsrpState::fresh(v(9), v(9), BTreeMap::from([(v(1), 1)]));
        s.d = Distance::Finite(5);
        // neighbor offers more than 5:
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(9),
                p: v(9),
                ghost: false,
            },
        );
        assert!(sp(&s));
        s.d = Distance::ZERO;
        assert!(!sp(&s));
        assert!(mp(&s), "legit destination is a minimal point");
    }

    #[test]
    fn sw_adopts_the_minimal_offer() {
        let mut s = base();
        s.d = Distance::Finite(5);
        s.p = v(2);
        // v1 offers 3 (minimal, <= 5, strictly better than v2's 5).
        assert!(sw(&s, v(1)));
        assert!(!sw(&s, v(2)), "v2 is not minimal");
        assert!(!sw(&s, v(7)), "not a neighbor");
    }

    #[test]
    fn sw_parent_consistency_repair() {
        let mut s = base();
        // parent v1 offers 3; d disagrees (2) -> repair enabled.
        s.d = Distance::Finite(2);
        assert!(!sw(&s, v(1)), "offer 3 > d 2 blocks the first conjunct");
        s.d = Distance::Finite(4);
        assert!(sw(&s, v(1)), "parent offer 3 <= 4 and d != offer");
        s.d = Distance::Finite(3);
        assert!(!sw(&s, v(1)), "consistent with parent: nothing to do");
    }

    #[test]
    fn sw_equal_cost_switch_is_suppressed() {
        let mut s = base();
        // v2 also offers 3 now: equal to parent v1's offer.
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: false,
            },
        );
        assert!(
            !sw(&s, v(2)),
            "equal-cost alternative must not cause route flapping"
        );
        // ...unless the parent is inside a containment wave.
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: true,
            },
        );
        assert!(sw(&s, v(2)));
    }

    #[test]
    fn cw_requires_copied_value_and_no_strict_escape() {
        let mut s = base();
        // Parent v1 ghosts; v0 copied its value (d = offer(v1) = 3).
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: true,
            },
        );
        // v2 offers 5 > 3: no escape.
        assert!(cw(&s));
        // An equal offer does NOT block containment (strict <):
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: false,
            },
        );
        assert!(cw(&s), "equal offer must not block the containment wave");
        // A strictly smaller non-ghost offer does block it:
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(1),
                p: v(9),
                ghost: false,
            },
        );
        assert!(!cw(&s));
        // If v0 did not copy the parent's value, no containment either.
        s.d = Distance::Finite(7);
        assert!(!cw(&s));
    }

    #[test]
    fn ps_takes_minimal_non_child_at_least_d() {
        let mut s = base();
        s.d = Distance::Finite(1); // corrupted small
                                   // v1 offers 3, v2 offers 5; both >= 1, both non-children.
        assert!(ps(&s, v(1)));
        assert!(!ps(&s, v(2)), "v2's offer 5 is not minimal");
        assert_eq!(best_parent_substitute(&s), Some(v(1)));
        // A child (mirror parent == v0) is not a substitute, and its
        // (corruption-derived) offer does not veto other candidates: v2
        // becomes the best substitute.
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(0),
                ghost: false,
            },
        );
        assert!(!ps(&s, v(1)));
        assert!(ps(&s, v(2)));
        assert_eq!(best_parent_substitute(&s), Some(v(2)));
        // Ghosted neighbors are not substitutes either.
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(4),
                p: v(9),
                ghost: true,
            },
        );
        assert_eq!(best_parent_substitute(&s), None);
    }

    #[test]
    fn ps_rejects_offers_below_current_distance() {
        let mut s = base();
        s.d = Distance::Finite(4);
        // v1 offers 3 < 4: not a valid substitute (Fig. 5 semantics) —
        // and being the cheapest non-ghost neighbor, it also blocks v2.
        assert!(!ps(&s, v(1)));
        assert!(!ps(&s, v(2)));
        // With v1 at exactly d (offer 4): it becomes the substitute.
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(3),
                p: v(9),
                ghost: false,
            },
        );
        assert!(ps(&s, v(1)));
        assert_eq!(best_parent_substitute(&s), Some(v(1)));
    }

    #[test]
    fn c2_waits_for_perturbed_children() {
        let mut s = base();
        s.ghost = true;
        s.d = Distance::Finite(1);
        // v2's mirror says: child of v0 with d = 1 + 1 = 2 (copied value).
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(0),
                ghost: false,
            },
        );
        assert!(!c2_ready(&s));
        // Child with a *stale-correct* value does not block.
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(4),
                p: v(0),
                ghost: false,
            },
        );
        assert!(c2_ready(&s));
        s.ghost = false;
        assert!(!c2_ready(&s));
    }

    #[test]
    fn scw_follows_parent_recovery() {
        let mut s = base();
        s.ghost = true;
        s.d = Distance::Finite(3);
        // Parent v1 not ghosted, not SP (v1 offers 3 <= 3): SCW holds.
        assert!(scw(&s));
        // Parent ghosted: SCW blocked.
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: true,
            },
        );
        // v0 is now: offers are 3 (ghost) and 5; d=3, parent ghost.
        // SP: no non-ghost neighbor offers <= 3 (v2 offers 5) and
        // d != offer(p)? offer(p)=3 == d -> not unjustified -> not SP.
        // But parent IS ghosted, so SCW is false.
        assert!(!scw(&s));
    }

    #[test]
    fn scw_initiator_case_uses_self_parent() {
        let mut s = base();
        s.ghost = true;
        s.p = v(0); // initiator set itself as parent
        s.d = Distance::Finite(1);
        assert!(sp(&s), "still a source: offers 3, 5 both > 1");
        assert!(!scw(&s));
        // Neighbor catches up (offers exactly 1): no longer SP.
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::ZERO,
                p: v(9),
                ghost: false,
            },
        );
        assert!(scw(&s));
    }

    #[test]
    fn scw_at_destination() {
        let mut s = LsrpState::fresh(v(9), v(9), BTreeMap::from([(v(1), 1)]));
        s.ghost = true;
        assert!(scw(&s), "destination with d = 0 always super-contains");
        s.d = Distance::Finite(2);
        assert!(!scw(&s));
    }

    #[test]
    fn recovery_parent_prefers_non_ghost_exact_offers() {
        let mut s = base();
        s.d = Distance::Finite(3);
        // v1 offers 3 (= d) but ghosted; v2 offers 3 (= d) non-ghost.
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: true,
            },
        );
        s.absorb(
            v(2),
            &LsrpMsg {
                d: Distance::Finite(2),
                p: v(9),
                ghost: false,
            },
        );
        assert_eq!(recovery_parent(&s), Some(v(2)));
        // With no exact offer, recovery fails.
        s.d = Distance::Finite(9);
        assert_eq!(recovery_parent(&s), None);
    }
}
