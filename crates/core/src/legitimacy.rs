//! The legitimate-state predicate `L` of §V-A.
//!
//! `L` holds when every up node is outside any containment wave and locally
//! consistent with its *actual* neighbors (not its possibly-stale mirrors):
//!
//! * the destination has `d = 0 ∧ p = dest`;
//! * every other reachable node has a neighbor parent with
//!   `d.v = d.(p.v) + w.v.(p.v)` minimal over all neighbors;
//! * (our extension for partitioned systems, which the connected-system
//!   paper does not need) unreachable nodes have `d = ∞ ∧ p = v` and only
//!   `∞` neighbors;
//! * no message is in flight.
//!
//! On a connected topology, `L` implies every node's distance is the true
//! shortest distance — see [`lsrp_graph::RouteTable::is_correct`], which
//! experiments check independently against Dijkstra ground truth.

use lsrp_graph::{Distance, NodeId};
use lsrp_sim::Engine;

use crate::protocol::LsrpNode;

/// Per-node local consistency (`LG.v` in §V-A), evaluated against actual
/// neighbor variables.
pub fn lg_holds(engine: &Engine<LsrpNode>, v: NodeId) -> bool {
    let Some(node) = engine.node(v) else {
        return false;
    };
    let s = node.state();
    let actual_d =
        |k: NodeId| -> Distance { engine.node(k).map_or(Distance::Infinite, |n| n.state().d) };
    if v == s.dest {
        return s.d == Distance::ZERO && s.p == v;
    }
    if s.d == Distance::Infinite {
        // Unreachable: route withdrawn and no neighbor has a route either.
        return s.p == v
            && engine
                .graph()
                .neighbors(v)
                .all(|(k, _)| actual_d(k) == Distance::Infinite);
    }
    let Some(w) = engine.graph().weight(v, s.p) else {
        return false;
    };
    if s.d != actual_d(s.p).plus(w) {
        return false;
    }
    engine
        .graph()
        .neighbors(v)
        .all(|(k, wk)| s.d <= actual_d(k).plus(wk))
}

/// The global predicate `L`: every node satisfies `¬ghost.v ∧ LG.v`.
///
/// The paper's `L` also demands empty channels; with the periodic `SYN`
/// refresh enabled there are *always* messages in flight, but once every
/// node satisfies `¬ghost ∧ LG` those refreshes merely re-confirm mirrors
/// (receives never touch `d`/`p`/`ghost`), so the channel condition is
/// meaningful only as part of quiescence detection, which
/// [`lsrp_sim::Engine::run_to_quiescence`] handles separately.
pub fn is_legitimate(engine: &Engine<LsrpNode>) -> bool {
    engine.graph().nodes().all(|v| {
        engine
            .node(v)
            .is_some_and(|n| !n.state().ghost && lg_holds(engine, v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{LsrpSimulation, LsrpSimulationExt};
    use lsrp_graph::generators;
    use lsrp_sim::SimTime;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn legitimate_initial_state_satisfies_l() {
        let sim = LsrpSimulation::builder(generators::grid(3, 3, 1), v(0)).build();
        assert!(is_legitimate(sim.engine()));
    }

    #[test]
    fn corruption_breaks_l_until_stabilized() {
        let mut sim = LsrpSimulation::builder(generators::grid(3, 3, 1), v(0)).build();
        sim.corrupt_distance(v(4), Distance::Finite(1));
        assert!(!is_legitimate(sim.engine()));
        sim.engine_mut()
            .run_to_quiescence(SimTime::new(10_000.0), 0.0)
            .unwrap();
        assert!(is_legitimate(sim.engine()));
    }

    #[test]
    fn partitioned_component_is_legitimate_with_infinite_routes() {
        let mut g = generators::path(4, 1);
        g.remove_edge(v(1), v(2)).unwrap();
        let mut sim = LsrpSimulation::builder(g, v(0)).build();
        sim.engine_mut()
            .run_to_quiescence(SimTime::new(10_000.0), 0.0)
            .unwrap();
        assert!(is_legitimate(sim.engine()));
        assert!(sim.engine().node(v(3)).unwrap().state().d.is_infinite());
    }
}
