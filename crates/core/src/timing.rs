//! Wave-speed control: the guard hold-times `hd_S`, `hd_C`, `hd_SC` and the
//! `SYN` refresh period.
//!
//! §IV-D of the paper: "To guarantee that containment waves propagate faster
//! than stabilization waves and that super-containment waves propagate
//! faster than containment waves in the presence of clock drift as well as
//! message passing delay, the guard hold-times used in LSRP should be such
//! that `hd_S > rho * (hd_C + d)`, `hd_C > rho * (hd_SC + d)` and
//! `hd_SC >= 0`", where `rho` bounds neighbor clock-speed ratios and `d`
//! bounds message delay.

use std::fmt;

/// Guard hold-times of the three diffusing waves plus the `SYN1` refresh
/// period (all in local-clock seconds).
///
/// ```
/// use lsrp_core::TimingConfig;
///
/// // The worked examples' timing: hd_SC = 1, hd_C = 8, hd_S = 17.
/// let t = TimingConfig::paper_example(1.0);
/// assert!(t.validate(1.0, 1.0).is_ok());
/// // Clock drift tightens the constraints:
/// assert!(t.validate(2.0, 1.0).is_err());
/// // Derive a safe timing for the harsher model instead:
/// assert!(TimingConfig::for_network(2.0, 1.0).validate(2.0, 1.0).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Stabilization-wave hold-time `hd_S` (actions `S2`).
    pub hd_s: f64,
    /// Containment-wave hold-time `hd_C` (action `C1`).
    pub hd_c: f64,
    /// Super-containment-wave hold-time `hd_SC` (action `SC`).
    pub hd_sc: f64,
    /// Hold-time of the containment shrink-back action `C2`.
    ///
    /// The paper specifies 0 (and the Figure 5 walkthrough relies on `C2`
    /// firing immediately after `C1`), which this reproduction keeps as
    /// the default. However, with zero hold two siblings of one
    /// containment tree can shrink back simultaneously and adopt *each
    /// other* as parent substitutes through mirrors that are stale by one
    /// message delay, creating a transient routing loop (broken within
    /// `O(hd_S)`, but violating a strict reading of Theorem 3). Setting
    /// `hd_c2 > rho * d_max` lets each sibling see the other's
    /// containment flag before adopting, restoring loop freedom at every
    /// instant — see DESIGN.md §5 and the `lsrp_never_forms_loops`
    /// property test.
    pub hd_c2: f64,
    /// Period of the `SYN1` mirror refresh; `None` disables periodic
    /// refresh (mirrors are still refreshed by every action broadcast).
    /// Self-stabilization from *arbitrary* states (mirror corruption)
    /// requires `Some(_)`.
    pub syn_period: Option<f64>,
}

/// Error returned when hold-times violate the wave-speed constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidTiming {
    /// Human-readable constraint that failed.
    reason: &'static str,
}

impl fmt::Display for InvalidTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid LSRP timing: {}", self.reason)
    }
}

impl std::error::Error for InvalidTiming {}

impl TimingConfig {
    /// The timing of the paper's worked examples (§IV-E): `rho = 1`,
    /// constant link delay `u`, containment waves twice as fast as
    /// stabilization waves (`hd_S = 2 hd_C + u`) and super-containment
    /// waves four times as fast as containment waves
    /// (`hd_C = 4 hd_SC + 4u`), with `hd_SC = u`:
    /// `hd_SC = u`, `hd_C = 8u`, `hd_S = 17u`.
    pub fn paper_example(u: f64) -> Self {
        let hd_sc = u;
        let hd_c = 4.0 * hd_sc + 4.0 * u;
        let hd_s = 2.0 * hd_c + u;
        TimingConfig {
            hd_s,
            hd_c,
            hd_sc,
            hd_c2: 0.0,
            syn_period: None,
        }
    }

    /// Derives a valid timing for a network with clock-ratio bound `rho`
    /// and maximum message delay `d_max`, with a 25% safety margin on each
    /// constraint.
    pub fn for_network(rho: f64, d_max: f64) -> Self {
        assert!(rho >= 1.0, "rho must be at least 1");
        assert!(d_max > 0.0, "d_max must be positive");
        let hd_sc = d_max / 2.0;
        let hd_c = 1.25 * rho * (hd_sc + d_max);
        let hd_s = 1.25 * rho * (hd_c + d_max);
        TimingConfig {
            hd_s,
            hd_c,
            hd_sc,
            hd_c2: 0.0,
            syn_period: None,
        }
    }

    /// Sets `hd_c2 = 1.25 * rho * d_max` (and raises `hd_SC` to the same
    /// floor), the margins that prevent the sibling shrink-back / recovery
    /// races (see [`TimingConfig::hd_c2`]) and make Theorem 3's loop
    /// freedom hold at every instant.
    #[must_use]
    pub fn with_strict_loop_freedom(mut self, rho: f64, d_max: f64) -> Self {
        let floor = 1.25 * rho * d_max;
        self.hd_c2 = floor;
        self.hd_sc = self.hd_sc.max(floor);
        self
    }

    /// Enables the periodic `SYN1` refresh (builder style).
    #[must_use]
    pub fn with_syn_period(mut self, period: f64) -> Self {
        self.syn_period = Some(period);
        self
    }

    /// Scales the `hd_S / hd_C` ratio while keeping `hd_C`, `hd_SC` fixed —
    /// used by the wave-speed experiment (E12).
    #[must_use]
    pub fn with_hd_s(mut self, hd_s: f64) -> Self {
        self.hd_s = hd_s;
        self
    }

    /// Checks the paper's wave-speed constraints against a deployment's
    /// clock-ratio bound `rho` and maximum message delay `d_max`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTiming`] naming the violated constraint.
    // The negated comparisons are deliberate: `!(x >= 0.0)` also rejects
    // NaN, which a plain `x < 0.0` would accept.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self, rho: f64, d_max: f64) -> Result<(), InvalidTiming> {
        if !(self.hd_sc >= 0.0) {
            return Err(InvalidTiming {
                reason: "hd_SC must be >= 0",
            });
        }
        if !(self.hd_c2 >= 0.0) {
            return Err(InvalidTiming {
                reason: "hd_C2 must be >= 0",
            });
        }
        if !(self.hd_c > rho * (self.hd_c2 + d_max)) {
            return Err(InvalidTiming {
                reason: "hd_C must exceed rho * (hd_C2 + d_max) so shrink-back \
                         stays faster than the containment wave itself",
            });
        }
        if !(self.hd_c > rho * (self.hd_sc + d_max)) {
            return Err(InvalidTiming {
                reason: "hd_C must exceed rho * (hd_SC + d_max)",
            });
        }
        if !(self.hd_s > rho * (self.hd_c + d_max)) {
            return Err(InvalidTiming {
                reason: "hd_S must exceed rho * (hd_C + d_max)",
            });
        }
        if let Some(p) = self.syn_period {
            if !(p > 0.0) {
                return Err(InvalidTiming {
                    reason: "syn period must be positive",
                });
            }
            // Derived constraint (see DESIGN.md): for loop freedom to
            // survive *mirror* corruption, a corrupted mirror must be
            // refreshed before the hd_S hold of a stabilization wave it
            // falsely enables can elapse.
            if !(self.hd_s > rho * (p + d_max)) {
                return Err(InvalidTiming {
                    reason: "hd_S must exceed rho * (syn_period + d_max) so mirror \
                             refreshes outrun falsely-enabled stabilization waves",
                });
            }
        }
        Ok(())
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig::paper_example(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_satisfies_constraints() {
        let t = TimingConfig::paper_example(1.0);
        assert_eq!(t.hd_sc, 1.0);
        assert_eq!(t.hd_c, 8.0);
        assert_eq!(t.hd_s, 17.0);
        t.validate(1.0, 1.0).unwrap();
    }

    #[test]
    fn for_network_scales_with_rho_and_delay() {
        let t = TimingConfig::for_network(1.5, 2.0);
        t.validate(1.5, 2.0).unwrap();
        assert!(t.hd_s > t.hd_c && t.hd_c > t.hd_sc);
    }

    #[test]
    fn too_fast_stabilization_wave_is_rejected() {
        let mut t = TimingConfig::paper_example(1.0);
        t.hd_s = t.hd_c; // stabilization no slower than containment
        let err = t.validate(1.0, 1.0).unwrap_err();
        assert!(err.to_string().contains("hd_S"));
    }

    #[test]
    fn drift_tightens_constraints() {
        let t = TimingConfig::paper_example(1.0);
        // Valid at rho = 1 but not at rho = 2 (17 > 2*(8+1) fails).
        t.validate(1.0, 1.0).unwrap();
        assert!(t.validate(2.0, 1.0).is_err());
    }

    #[test]
    fn negative_hold_and_bad_syn_rejected() {
        let mut t = TimingConfig::paper_example(1.0);
        t.hd_sc = -0.1;
        assert!(t.validate(1.0, 1.0).is_err());
        let t = TimingConfig::paper_example(1.0).with_syn_period(0.0);
        assert!(t.validate(1.0, 1.0).is_err());
    }
}
