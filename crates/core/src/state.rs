//! LSRP per-node state: the protocol variables of Figure 4.
//!
//! Per node `v` the protocol maintains:
//!
//! * `d.v` — distance to the destination (problem-specific);
//! * `p.v` — next-hop / parent in the shortest path tree (problem-specific);
//! * `ghost.v` — whether `v` is involved in a containment wave;
//! * `t.v` — local-clock time of the last broadcast (drives `SYN1`);
//! * mirrors `d.k.v`, `p.k.v`, `ghost.k.v` of each neighbor `k`'s latest
//!   broadcast values.
//!
//! All fields are public: the fault model includes arbitrary state
//! corruption, which experiments perform by mutating this struct directly.

use std::collections::BTreeMap;

use lsrp_graph::{Distance, NodeId, RouteEntry, Weight};

/// A node's view of one neighbor's latest broadcast `(d, p, ghost)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mirror {
    /// Mirrored distance `d.k.v`.
    pub d: Distance,
    /// Mirrored parent `p.k.v`.
    pub p: NodeId,
    /// Mirrored containment flag `ghost.k.v`.
    pub ghost: bool,
}

impl Mirror {
    /// The default mirror for a neighbor `k` nothing has been heard from:
    /// no route, not in containment.
    pub fn unknown(k: NodeId) -> Self {
        Mirror {
            d: Distance::Infinite,
            p: k,
            ghost: false,
        }
    }
}

/// The message LSRP nodes broadcast: the sender's current
/// `(d, p, ghost)`. The paper's actions broadcast only the variables they
/// changed; sending the full triple is state-equivalent (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsrpMsg {
    /// Sender's distance.
    pub d: Distance,
    /// Sender's parent.
    pub p: NodeId,
    /// Sender's containment flag.
    pub ghost: bool,
}

/// The full protocol state of one LSRP node.
#[derive(Debug, Clone, PartialEq)]
pub struct LsrpState {
    /// This node's id.
    pub id: NodeId,
    /// The destination node `dest` every node routes toward.
    pub dest: NodeId,
    /// Distance to the destination (`d.v`).
    pub d: Distance,
    /// Parent / next-hop (`p.v`); a routeless node points at itself.
    pub p: NodeId,
    /// Containment-wave involvement (`ghost.v`).
    pub ghost: bool,
    /// Local-clock time of the last broadcast (`t.v`).
    pub t_last: f64,
    /// Current neighbor set with edge weights (`N.v`, `w.v.k`).
    pub neighbors: BTreeMap<NodeId, Weight>,
    /// Mirrors of neighbor state (`d.k.v`, `p.k.v`, `ghost.k.v`).
    pub mirrors: BTreeMap<NodeId, Mirror>,
}

impl LsrpState {
    /// Fresh state for a node that knows nothing: no route, self parent
    /// (the destination starts with `d = 0, p = dest` instead).
    pub fn fresh(id: NodeId, dest: NodeId, neighbors: BTreeMap<NodeId, Weight>) -> Self {
        let (d, p) = if id == dest {
            (Distance::ZERO, dest)
        } else {
            (Distance::Infinite, id)
        };
        LsrpState {
            id,
            dest,
            d,
            p,
            ghost: false,
            t_last: 0.0,
            neighbors,
            mirrors: BTreeMap::new(),
        }
    }

    /// The mirror of neighbor `k` ([`Mirror::unknown`] if nothing heard).
    pub fn mirror(&self, k: NodeId) -> Mirror {
        self.mirrors
            .get(&k)
            .copied()
            .unwrap_or_else(|| Mirror::unknown(k))
    }

    /// The distance neighbor `k` currently offers this node:
    /// `d.k.v + w.v.k`, or `∞` if `k` is not a neighbor.
    pub fn offer(&self, k: NodeId) -> Distance {
        match self.neighbors.get(&k) {
            Some(&w) => self.mirror(k).d.plus(w),
            None => Distance::Infinite,
        }
    }

    /// Whether `k` is currently a neighbor.
    pub fn is_neighbor(&self, k: NodeId) -> bool {
        self.neighbors.contains_key(&k)
    }

    /// The broadcast message for the current state.
    pub fn message(&self) -> LsrpMsg {
        LsrpMsg {
            d: self.d,
            p: self.p,
            ghost: self.ghost,
        }
    }

    /// The problem-specific variables `(d.v, p.v)`.
    pub fn route_entry(&self) -> RouteEntry {
        RouteEntry::new(self.d, self.p)
    }

    /// Updates the mirror of `from` with a received message; returns `true`
    /// when the mirror actually changed.
    pub fn absorb(&mut self, from: NodeId, msg: &LsrpMsg) -> bool {
        let new = Mirror {
            d: msg.d,
            p: msg.p,
            ghost: msg.ghost,
        };
        let old = self.mirrors.insert(from, new);
        old != Some(new)
    }

    /// Reconciles the neighbor set after a topology change: installs the
    /// new set and drops mirrors of vanished neighbors.
    pub fn set_neighbors(&mut self, neighbors: BTreeMap<NodeId, Weight>) {
        self.mirrors.retain(|k, _| neighbors.contains_key(k));
        self.neighbors = neighbors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn state() -> LsrpState {
        let neighbors = BTreeMap::from([(v(1), 2), (v(2), 1)]);
        LsrpState::fresh(v(0), v(9), neighbors)
    }

    #[test]
    fn fresh_non_destination_has_no_route() {
        let s = state();
        assert_eq!(s.d, Distance::Infinite);
        assert_eq!(s.p, v(0));
        assert!(!s.ghost);
    }

    #[test]
    fn fresh_destination_is_rooted() {
        let s = LsrpState::fresh(v(9), v(9), BTreeMap::new());
        assert_eq!(s.d, Distance::ZERO);
        assert_eq!(s.p, v(9));
    }

    #[test]
    fn offers_use_mirror_plus_weight() {
        let mut s = state();
        assert_eq!(s.offer(v(1)), Distance::Infinite); // unknown mirror
        assert!(s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::Finite(3),
                p: v(9),
                ghost: false
            }
        ));
        assert_eq!(s.offer(v(1)), Distance::Finite(5));
        assert_eq!(s.offer(v(42)), Distance::Infinite); // not a neighbor
    }

    #[test]
    fn absorb_reports_change_only_when_different() {
        let mut s = state();
        let m = LsrpMsg {
            d: Distance::Finite(1),
            p: v(9),
            ghost: true,
        };
        assert!(s.absorb(v(2), &m));
        assert!(!s.absorb(v(2), &m));
    }

    #[test]
    fn neighbor_changes_drop_stale_mirrors() {
        let mut s = state();
        s.absorb(
            v(1),
            &LsrpMsg {
                d: Distance::ZERO,
                p: v(1),
                ghost: false,
            },
        );
        s.set_neighbors(BTreeMap::from([(v(2), 1)]));
        assert!(!s.is_neighbor(v(1)));
        assert_eq!(s.mirror(v(1)), Mirror::unknown(v(1)));
        assert_eq!(s.offer(v(1)), Distance::Infinite);
    }

    #[test]
    fn message_reflects_state() {
        let mut s = state();
        s.d = Distance::Finite(4);
        s.p = v(1);
        s.ghost = true;
        let m = s.message();
        assert_eq!(m.d, Distance::Finite(4));
        assert_eq!(m.p, v(1));
        assert!(m.ghost);
        assert_eq!(s.route_entry().distance, Distance::Finite(4));
    }
}
