//! Property-based tests of LSRP's theorems.
//!
//! * Theorem 1 (self-stabilization): from fully arbitrary states —
//!   including corrupted mirrors and timestamps — every computation
//!   reaches a legitimate state (requires the periodic `SYN` refresh).
//! * Theorem 3 (loop freedom): starting from loop-free states whose
//!   mirrors are consistent, no routing loop appears at *any* state along
//!   the computation (checked after every single event).
//! * Theorem 4 (1-round loop breakage): starting with a corrupted-in loop,
//!   the loop disappears within `O(hd_S + d)` time regardless of length.

use proptest::prelude::*;

use lsrp_core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp_graph::{generators, Distance, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// A random connected test graph: tree plus extra edge probability.
fn test_graph(n: u32, extra: f64, seed: u64) -> lsrp_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::connected_erdos_renyi(n, extra, 3, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: LSRP self-stabilizes from arbitrary states.
    #[test]
    fn lsrp_self_stabilizes_from_arbitrary_state(
        n in 4u32..20,
        extra in 0.0f64..0.3,
        graph_seed in 0u64..1_000,
        state_seed in 0u64..1_000,
    ) {
        let graph = test_graph(n, extra, graph_seed);
        let dest = v(graph_seed as u32 % n);
        let timing = TimingConfig::paper_example(1.0).with_syn_period(5.0);
        let mut sim = LsrpSimulation::builder(graph, dest)
            .timing(timing)
            .initial_state(InitialState::Arbitrary { seed: state_seed })
            .seed(state_seed ^ 0xABCD)
            .build();
        let report = sim.run_to_quiescence(1_000_000.0);
        prop_assert!(report.quiescent, "did not settle: {report:?}");
        prop_assert!(sim.routes_correct(), "wrong routes: {:?}", sim.route_table());
        prop_assert!(sim.is_legitimate());
    }

    /// Theorem 3 on the paper's worked fault class: a *single node's
    /// distance* corrupted to an arbitrary value on a legitimate state,
    /// with the neighborhood having learned it (exactly the Figure 2/5/6
    /// setup), optionally preceded by a topology fault. No routing loop
    /// appears at any intermediate state — verified after every single
    /// event.
    ///
    /// Why single-node (DESIGN.md §5): with several corrupted values
    /// arranged along one subtree chain, `C2`'s parent substitute can be
    /// a deep descendant whose minimality is manufactured by the *other*
    /// corrupted values — locally indistinguishable from a valid
    /// substitute, so no local rule can exclude it. Single-node
    /// corruption provably cannot do this (a descendant's offer always
    /// exceeds the still-legitimate parent's). Multi-node corruption gets
    /// the transient guarantee below.
    #[test]
    fn lsrp_never_forms_loops(
        n in 4u32..16,
        extra in 0.0f64..0.3,
        graph_seed in 0u64..500,
        state_seed in 0u64..500,
    ) {
        let graph = test_graph(n, extra, graph_seed);
        let dest = v(0);
        // Strict loop freedom needs the anti-race C2 hold (see
        // TimingConfig::hd_c2 and DESIGN.md §5). The SYN refresh is on:
        // pre-fault broadcasts still in flight can overwrite the poisoned
        // mirrors with stale values, and only the periodic refresh repairs
        // that (the paper's model includes SYN for exactly this reason).
        let timing = TimingConfig::paper_example(1.0)
            .with_strict_loop_freedom(1.0, 1.0)
            .with_syn_period(5.0);
        let mut sim = LsrpSimulation::builder(graph.clone(), dest)
            .timing(timing)
            .seed(state_seed)
            .build();
        let mut rng = StdRng::seed_from_u64(state_seed);
        use rand::Rng;
        // Optional topology fault first (loop freedom must also hold
        // through churn).
        match rng.gen_range(0..3) {
            0 => {
                let nodes: Vec<NodeId> = graph.nodes().filter(|&x| x != dest).collect();
                let dead = nodes[rng.gen_range(0..nodes.len())];
                let mut after = graph;
                after.remove_node(dead).unwrap();
                if after.is_connected() {
                    sim.fail_node(dead).unwrap();
                }
            }
            1 => {
                let edges: Vec<_> = graph.edges().collect();
                let (a, b, _) = edges[rng.gen_range(0..edges.len())];
                sim.set_weight(a, b, rng.gen_range(1..5)).unwrap();
            }
            _ => {}
        }
        // One corrupted distance, learned by the whole neighborhood.
        let nodes: Vec<NodeId> = sim.graph().nodes().filter(|&x| x != dest).collect();
        let victim = nodes[rng.gen_range(0..nodes.len())];
        let d = if rng.gen_bool(0.1) {
            Distance::Infinite
        } else {
            Distance::Finite(rng.gen_range(0..2 * u64::from(n)))
        };
        sim.with_state_mut(victim, |s| {
            s.d = d;
            if d.is_infinite() {
                s.p = victim; // the protocol's d = ∞ ⟹ p = self invariant
            }
        });
        let m = {
            let s = sim.engine().node(victim).unwrap().state();
            lsrp_core::Mirror { d: s.d, p: s.p, ghost: s.ghost }
        };
        let neighbors: Vec<NodeId> = sim.graph().neighbors(victim).map(|(k, _)| k).collect();
        for k in neighbors {
            sim.corrupt_mirror(k, victim, m);
        }
        prop_assert!(!sim.route_table().has_routing_loop(dest));

        // Step with per-event loop checks until the protocol variables
        // have been quiet for a long window (the SYN refresh keeps the
        // event queue non-empty forever).
        let mut steps = 0u64;
        let mut last_change = 0.0f64;
        while let Some(t) = sim.engine_mut().step() {
            let loops = sim.route_table().find_routing_loops(dest);
            prop_assert!(
                loops.is_empty(),
                "loop {loops:?} formed at {t} (step {steps})"
            );
            if let Some(c) = sim
                .engine()
                .trace()
                .last_var_change_since(lsrp_sim::SimTime::ZERO)
            {
                last_change = c.seconds();
            }
            if t.seconds() > last_change + 500.0 {
                break;
            }
            steps += 1;
            prop_assert!(steps < 5_000_000, "runaway computation");
        }
        prop_assert!(sim.routes_correct());
    }

    /// Beyond Theorem 3's literal claim: under *adversarial* corruption of
    /// parent pointers and containment flags across many nodes (states the
    /// protocol itself can never produce), transient loops can appear —
    /// but every loop episode dies within the Theorem-4 bound
    /// `O(hd_S + d)` and the system still converges to correct routes.
    /// See DESIGN.md §5 for why the literal every-instant claim is not
    /// locally enforceable on this class.
    #[test]
    fn adversarial_loops_are_transient(
        n in 4u32..16,
        extra in 0.0f64..0.3,
        graph_seed in 0u64..500,
        state_seed in 0u64..500,
    ) {
        let graph = test_graph(n, extra, graph_seed);
        let dest = v(0);
        let mut table = lsrp_graph::RouteTable::legitimate(&graph, dest);
        let mut rng = StdRng::seed_from_u64(state_seed);
        use rand::Rng;
        let mut ghosted: Vec<NodeId> = Vec::new();
        for node in graph.nodes() {
            if rng.gen_bool(0.5) {
                let neighbors: Vec<NodeId> = graph.neighbors(node).map(|(k, _)| k).collect();
                let p = neighbors[rng.gen_range(0..neighbors.len())];
                let d = if rng.gen_bool(0.1) {
                    Distance::Infinite
                } else {
                    Distance::Finite(rng.gen_range(0..2 * u64::from(n)))
                };
                table.insert(node, lsrp_graph::RouteEntry::new(d, p));
            }
            if node != dest && rng.gen_bool(0.2) {
                ghosted.push(node);
            }
        }
        let timing = TimingConfig::paper_example(1.0).with_strict_loop_freedom(1.0, 1.0);
        // O(hd_S + d): what matters is that the bound is a *constant* —
        // independent of network size and loop length — not its exact
        // value. Empirically episodes reach hd_S + hd_C + hd_c2 + 2d
        // (a ghost-corrupted C2 chain followed by one stabilization hold);
        // double that for margin.
        let loop_bound = 2.0 * (timing.hd_s + timing.hd_c);
        let mut sim = LsrpSimulation::builder(graph, dest)
            .initial_state(InitialState::Table(table))
            .timing(timing)
            .seed(state_seed)
            .build();
        for node in ghosted {
            sim.corrupt_ghost(node, true);
        }

        let mut loop_since: Option<f64> = None;
        let mut steps = 0u64;
        while let Some(t) = sim.engine_mut().step() {
            let looped = sim.route_table().has_routing_loop(dest);
            match (looped, loop_since) {
                (true, None) => loop_since = Some(t.seconds()),
                (true, Some(since)) => {
                    prop_assert!(
                        t.seconds() - since <= loop_bound,
                        "loop persisted {}s (> {loop_bound}) from {since}",
                        t.seconds() - since
                    );
                }
                (false, _) => loop_since = None,
            }
            steps += 1;
            prop_assert!(steps < 2_000_000, "runaway computation");
        }
        prop_assert!(!sim.route_table().has_routing_loop(dest));
        prop_assert!(sim.routes_correct());
    }

    /// Theorem 4 + Corollary 3: a corrupted-in loop is broken within
    /// `O(hd_S + d)` time — independent of loop length.
    #[test]
    fn corrupted_loops_break_in_constant_time(
        tail in 1u32..4,
        loop_len in 3u32..24,
        seed in 0u64..500,
    ) {
        let graph = generators::lollipop(tail, loop_len, 1);
        let ring = generators::lollipop_ring(tail, loop_len);
        let dest = v(0);
        let mut sim = LsrpSimulation::builder(graph, dest)
            .seed(seed)
            .build();
        // Corrupt the ring into a consistent directed cycle: each ring
        // node parents its successor with distances increasing by 1.
        for (i, &node) in ring.iter().enumerate() {
            let next = ring[(i + 1) % ring.len()];
            sim.with_state_mut(node, |s| {
                s.p = next;
                s.d = Distance::Finite(100 + i as u64);
            });
        }
        // Let the ring nodes' neighbors see the corrupted values
        // (consistent mirrors), matching Theorem 4's "arbitrary state".
        let snapshot: Vec<(NodeId, Distance, NodeId)> = ring
            .iter()
            .map(|&r| {
                let s = sim.engine().node(r).unwrap().state();
                (r, s.d, s.p)
            })
            .collect();
        for &(r, d, p) in &snapshot {
            let neighbors: Vec<NodeId> =
                sim.graph().neighbors(r).map(|(k, _)| k).collect();
            for k in neighbors {
                sim.corrupt_mirror(k, r, lsrp_core::Mirror { d, p, ghost: false });
            }
        }
        prop_assert!(sim.route_table().has_routing_loop(dest));

        let timing = *sim.timing();
        let breakage_bound = timing.hd_s + 1.0 /* d_max */ + 0.001;
        let start = sim.now().seconds();
        let mut broken_at = None;
        while let Some(t) = sim.engine_mut().step() {
            if !sim.route_table().has_routing_loop(dest) {
                broken_at = Some(t.seconds() - start);
                break;
            }
            prop_assert!(
                t.seconds() - start <= breakage_bound,
                "loop survived past hd_S + d at t={t}"
            );
        }
        prop_assert!(broken_at.is_some(), "loop never broke");
        // And the system still converges to correct routes afterwards.
        let report = sim.run_to_quiescence(1_000_000.0);
        prop_assert!(report.quiescent);
        prop_assert!(sim.routes_correct());
    }
}
