//! End-to-end reproductions of the paper's worked examples (§IV-E,
//! Figures 5 and 6), pinned to the exact event times the paper derives.
//!
//! Timing: the paper's example setting — `rho = 1`, constant link delay
//! `u = 1`, `hd_SC = u = 1`, `hd_C = 4 hd_SC + 4u = 8`,
//! `hd_S = 2 hd_C + u = 17`.

use lsrp_core::InitialState;
use lsrp_core::{LsrpSimulation, LsrpSimulationExt, Mirror, TimingConfig};
use lsrp_graph::topologies::{fig1_route_table, paper_fig1, v, FIG1_DESTINATION};
use lsrp_graph::Distance;
use lsrp_sim::SimTime;

fn paper_sim() -> LsrpSimulation {
    LsrpSimulation::builder(paper_fig1(), FIG1_DESTINATION)
        .initial_state(InitialState::Table(fig1_route_table()))
        .timing(TimingConfig::paper_example(1.0))
        .build()
}

/// Figure 5: `d.v9` is corrupted to 1 and `v7`, `v8` have already learned
/// the corrupted value. Expected: `C1` then `C2` execute at `v9` at time
/// `hd_C = 8`, the corrected state reaches `v7`/`v8` at `hd_C + u = 9`
/// disabling their pending `S2`, and **no node other than `v9` executes
/// any action** — the ideal containment result.
#[test]
fn figure5_ideal_containment_of_corrupted_v9() {
    let mut sim = paper_sim();
    sim.corrupt_distance(v(9), Distance::Finite(1));
    let poisoned = Mirror {
        d: Distance::Finite(1),
        p: v(13),
        ghost: false,
    };
    sim.corrupt_mirror(v(7), v(9), poisoned);
    sim.corrupt_mirror(v(8), v(9), poisoned);

    let report = sim.run_to_quiescence(1_000.0);
    assert!(report.quiescent);
    assert!(sim.routes_correct());
    assert!(sim.is_legitimate());

    let timeline = sim.engine().trace().timeline();
    assert_eq!(
        timeline.keys().copied().collect::<Vec<_>>(),
        vec![v(9)],
        "only v9 may execute actions: {timeline:?}"
    );
    assert_eq!(
        timeline[&v(9)],
        vec![("C1", SimTime::new(8.0)), ("C2", SimTime::new(8.0))]
    );
    // C2 corrected d.v9 back to 3 via parent substitute v13.
    let s9 = sim.engine().node(v(9)).unwrap().state();
    assert_eq!(s9.d, Distance::Finite(3));
    assert_eq!(s9.p, v(13));
    // Stabilization completed within hd_C + u (the final mirror refreshes
    // at v7/v8 land at t = 9, modulo FIFO epsilon on the double broadcast).
    assert!(report.last_effective <= SimTime::new(9.001));
    assert_eq!(
        sim.engine().trace().last_var_change_since(SimTime::ZERO),
        Some(SimTime::new(8.0)),
        "the last protocol-variable change is C1/C2 at v9"
    );
}

/// Figure 6: `d.v11` is corrupted to 2 and `v13` has learned it. The
/// containment wave is *mistakenly* initiated at `v13` (it sees itself as
/// a source of fault propagation), propagates to `v9`, and is then chased
/// down by the super-containment wave once `v11` corrects itself via the
/// stabilization wave. Expected per the paper's space-time diagram:
///
/// * `C1` at `v13` at `hd_C = 8`;
/// * `S2` at `v11` at `hd_S = 2 hd_C + u = 17` and `C1` at `v9` at
///   `2 hd_C + u = 17`;
/// * `SC` at `v13` at `2 hd_C + 2u + hd_SC = 19`;
/// * `SC` at `v9` at `2 hd_C + 3u + 2 hd_SC = 21`;
/// * the pending `C1` at `v7`/`v8`/`v10` is disabled at
///   `2 hd_C + 4u + 2 hd_SC = 22` — before its `hd_C` hold elapses —
///   so only `v11`, `v13`, `v9` ever execute (containment within 2 hops).
#[test]
fn figure6_supercontainment_chases_mistaken_containment() {
    let mut sim = paper_sim();
    sim.corrupt_distance(v(11), Distance::Finite(2));
    sim.corrupt_mirror(
        v(13),
        v(11),
        Mirror {
            d: Distance::Finite(2),
            p: v(2),
            ghost: false,
        },
    );

    let report = sim.run_to_quiescence(1_000.0);
    assert!(report.quiescent);
    assert!(sim.routes_correct());
    assert!(sim.is_legitimate());

    let timeline = sim.engine().trace().timeline();
    assert_eq!(
        timeline.keys().copied().collect::<Vec<_>>(),
        vec![v(9), v(11), v(13)],
        "exactly v9, v11, v13 act: {timeline:?}"
    );
    assert_eq!(
        timeline[&v(13)],
        vec![("C1", SimTime::new(8.0)), ("SC", SimTime::new(19.0))]
    );
    assert_eq!(timeline[&v(11)], vec![("S2", SimTime::new(17.0))]);
    assert_eq!(
        timeline[&v(9)],
        vec![("C1", SimTime::new(17.0)), ("SC", SimTime::new(21.0))]
    );
    // The system is legitimate once v7/v8/v10's mirrors settle at
    // t = 2 hd_C + 4u + 2 hd_SC = 22 — the exact endpoint of the paper's
    // space-time diagram. The last protocol-variable change is SC at v9.
    assert_eq!(report.last_effective, SimTime::new(22.0));
    assert_eq!(
        sim.engine().trace().last_var_change_since(SimTime::ZERO),
        Some(SimTime::new(21.0))
    );

    // v13 recovered its parent (v11), v9 kept its parent (v13).
    assert_eq!(sim.engine().node(v(13)).unwrap().state().p, v(11));
    assert_eq!(sim.engine().node(v(9)).unwrap().state().p, v(13));
    assert_eq!(
        sim.engine().node(v(11)).unwrap().state().d,
        Distance::Finite(1)
    );
}

/// The containment-region claim of Figure 6: contamination stays within 2
/// hops of the perturbed node `v11`.
#[test]
fn figure6_contamination_range_is_two() {
    let mut sim = paper_sim();
    sim.corrupt_distance(v(11), Distance::Finite(2));
    sim.corrupt_mirror(
        v(13),
        v(11),
        Mirror {
            d: Distance::Finite(2),
            p: v(2),
            ghost: false,
        },
    );
    sim.run_to_quiescence(1_000.0);

    let perturbed = std::collections::BTreeSet::from([v(11)]);
    let acted = sim.engine().trace().acted_nodes_since(SimTime::ZERO);
    let contaminated = lsrp_graph::contamination::contaminated_nodes(&perturbed, &acted);
    let range =
        lsrp_graph::contamination::range_of_contamination(sim.graph(), &perturbed, &contaminated);
    assert_eq!(range, 2);
}

/// Sanity cross-check for the examples: starting from the figure's chosen
/// tree with no fault at all, nothing happens.
#[test]
fn chosen_tree_is_stable_without_faults() {
    let mut sim = paper_sim();
    let report = sim.run_to_quiescence(1_000.0);
    assert!(report.quiescent);
    assert_eq!(sim.engine().trace().total_actions(), 0);
    assert_eq!(report.last_effective, SimTime::ZERO);
    assert!(sim.is_legitimate());
}

/// Fail-stop of `v9` (the §III-A perturbation-size example): the network
/// reroutes; the perturbed nodes `{v7, v8, v10}` all act, and
/// stabilization leaves a correct tree on the surviving topology.
#[test]
fn fail_stop_of_v9_reroutes_locally() {
    let mut sim = paper_sim();
    sim.fail_node(v(9)).unwrap();
    let report = sim.run_to_quiescence(10_000.0);
    assert!(report.quiescent);
    assert!(sim.routes_correct());
    assert!(sim.is_legitimate());
    let acted = sim.engine().trace().acted_nodes_since(SimTime::ZERO);
    for p in [v(7), v(8), v(10)] {
        assert!(acted.contains(&p), "{p} must act; acted = {acted:?}");
    }
    // v7, v8 keep distance 4 via v5; v10 degrades to 5.
    let table = sim.route_table();
    assert_eq!(table.entry(v(7)).unwrap().distance, Distance::Finite(4));
    assert_eq!(table.entry(v(8)).unwrap().distance, Distance::Finite(4));
    assert_eq!(table.entry(v(10)).unwrap().distance, Distance::Finite(5));
}

/// Join of edge `(v2, v9)` (the §III-A dependent-set example): exactly the
/// subtree of `v9` plus `v6` improves; the result is the new shortest path
/// tree.
#[test]
fn join_of_shortcut_edge_improves_subtree() {
    let mut sim = paper_sim();
    sim.join_edge(v(2), v(9), 1).unwrap();
    let report = sim.run_to_quiescence(10_000.0);
    assert!(report.quiescent);
    assert!(sim.routes_correct());
    let table = sim.route_table();
    assert_eq!(table.entry(v(9)).unwrap().distance, Distance::Finite(1));
    assert_eq!(table.entry(v(9)).unwrap().parent, v(2));
    assert_eq!(table.entry(v(7)).unwrap().distance, Distance::Finite(2));
    assert_eq!(table.entry(v(6)).unwrap().distance, Distance::Finite(3));
    // v4 keeps its old route entirely.
    assert_eq!(table.entry(v(4)).unwrap().distance, Distance::Finite(4));
    assert_eq!(table.entry(v(4)).unwrap().parent, v(5));
}
