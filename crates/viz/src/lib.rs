//! `lsrp viz`: renders a structured trace file (DESIGN.md §16) into a
//! self-contained SVG/HTML visualization.
//!
//! Three views are built from the frame stream:
//!
//! - a **wave-propagation heatmap** over the topology layout — each node
//!   colored by its first-action time since the last fault (`wave`
//!   frames), so the stabilization wave's reach and speed are visible at
//!   a glance;
//! - **time series** over the run — peak queue depth (`q` frames),
//!   delivered fraction per bucket (`pkt` frames) and flow goodput
//!   (`flow` frames);
//! - a **route-flap strip chart** — one row per flappy node, a tick per
//!   route delta (`rt` frames), fault markers overlaid.
//!
//! Grid topologies (`grid:WxH` in the `hdr` frame) lay out on exact
//! grid coordinates; everything else falls back to a seeded
//! deterministic spring embedding, so the same trace always renders the
//! same bytes. The HTML output inlines every SVG — no external assets.

use std::io;
use std::path::Path;

use lsrp_trace::json::Json;
use lsrp_trace::reader::read_trace;

/// Pixel width of every rendered panel.
const PANEL_W: f64 = 800.0;
/// Pixel height of the heatmap panel.
const HEAT_H: f64 = 560.0;
/// Pixel height of each time-series panel.
const SERIES_H: f64 = 160.0;
/// Number of time buckets for the series panels.
const BUCKETS: usize = 120;
/// Maximum rows in the route-flap strip chart.
const FLAP_ROWS: usize = 40;

/// Everything the renderer needs, decoded from the frame stream.
#[derive(Debug, Default)]
struct Model {
    seed: u64,
    topology: Option<String>,
    nodes: Vec<u32>,
    edges: Vec<(u32, u32)>,
    /// Latest `dt` (first-action delay since fault) per node id.
    wave_dt: Vec<Option<f64>>,
    /// `(t, node)` route-delta events.
    route_events: Vec<(f64, u32)>,
    /// `(t, occupancy)` queue samples (max folded per bucket later).
    queue: Vec<(f64, f64)>,
    /// `(t, delivered)` packet fates.
    packets: Vec<(f64, bool)>,
    /// `(finish t, goodput)` completed flows.
    flows: Vec<(f64, f64)>,
    /// `(t, kind)` fault/phase markers.
    marks: Vec<(f64, String)>,
    /// Greatest timestamp seen (the `end` frame when present).
    t_end: f64,
    /// The `end` frame's message tally, rendered in the summary.
    msgs: Option<(u64, u64)>,
}

fn num(frame: &Json, key: &str) -> Option<f64> {
    frame.get(key)?.as_f64()
}

impl Model {
    fn from_frames(frames: &[Json]) -> Result<Model, String> {
        let mut m = Model::default();
        let hdr = frames
            .first()
            .filter(|f| lsrp_trace::reader::kind(f) == Some("hdr"))
            .ok_or("not a trace file (missing hdr frame)")?;
        let v = num(hdr, "v").unwrap_or(0.0) as u64;
        if v > u64::from(lsrp_trace::SCHEMA_VERSION) {
            return Err(format!(
                "trace schema v{v} is newer than this viz (v{})",
                lsrp_trace::SCHEMA_VERSION
            ));
        }
        m.seed = hdr.get("seed").and_then(Json::as_u64).unwrap_or(0);
        m.topology = hdr.get("topology").and_then(Json::as_str).map(String::from);
        for f in frames {
            let t = num(f, "t").unwrap_or(0.0);
            m.t_end = m.t_end.max(t);
            match lsrp_trace::reader::kind(f) {
                Some("topo") => {
                    if let Some(ns) = f.get("nodes").and_then(Json::as_arr) {
                        m.nodes
                            .extend(ns.iter().filter_map(|n| n.as_u64()).map(|n| n as u32));
                    }
                    if let Some(es) = f.get("edges").and_then(Json::as_arr) {
                        for e in es {
                            if let Some([a, b, _w]) = e.as_arr().and_then(|e| e.get(..3)) {
                                if let (Some(a), Some(b)) = (a.as_u64(), b.as_u64()) {
                                    m.edges.push((a as u32, b as u32));
                                }
                            }
                        }
                    }
                }
                Some("wave") => {
                    if let (Some(n), Some(dt)) = (f.get("n").and_then(Json::as_u64), num(f, "dt")) {
                        let idx = n as usize;
                        if idx >= m.wave_dt.len() {
                            m.wave_dt.resize(idx + 1, None);
                        }
                        m.wave_dt[idx] = Some(dt);
                    }
                }
                Some("rt") => {
                    if let Some(n) = f.get("n").and_then(Json::as_u64) {
                        m.route_events.push((t, n as u32));
                    }
                }
                Some("q") => {
                    if let Some(occ) = num(f, "occ") {
                        m.queue.push((t, occ));
                    }
                }
                Some("pkt") => {
                    let delivered = f.get("fate").and_then(Json::as_str) == Some("delivered");
                    m.packets.push((t, delivered));
                }
                Some("flow") => {
                    if let Some(g) = num(f, "goodput") {
                        m.flows.push((t, g));
                    }
                }
                Some("mark") => {
                    if let Some(kind) = f.get("kind").and_then(Json::as_str) {
                        m.marks.push((t, kind.to_string()));
                    }
                }
                Some("end") => {
                    let msgs = f.get("msgs");
                    let sent = msgs.and_then(|x| x.get("sent")).and_then(Json::as_u64);
                    let delivered = msgs.and_then(|x| x.get("delivered")).and_then(Json::as_u64);
                    if let (Some(s), Some(d)) = (sent, delivered) {
                        m.msgs = Some((s, d));
                    }
                }
                _ => {}
            }
        }
        if m.nodes.is_empty() {
            return Err("trace has no topo frames (node list missing)".to_string());
        }
        Ok(m)
    }
}

// ---------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------

/// `(x, y)` in [0, 1]² per node id (sparse ids map through position).
fn layout(m: &Model) -> Vec<(f64, f64)> {
    if let Some((w, h)) = m.topology.as_deref().and_then(grid_dims) {
        let (w, h) = (f64::from(w), f64::from(h));
        return m
            .nodes
            .iter()
            .map(|&n| {
                let x = f64::from(n) % w;
                let y = (f64::from(n) / w).floor();
                ((x + 0.5) / w, (y + 0.5) / h.max(1.0))
            })
            .collect();
    }
    spring_layout(m)
}

/// Parses `grid:WxH` out of a topology label.
fn grid_dims(label: &str) -> Option<(u32, u32)> {
    let rest = label.strip_prefix("grid:")?;
    let (w, h) = rest.split_once('x')?;
    Some((w.parse().ok()?, h.parse().ok()?))
}

/// Deterministic seeded spring embedding: LCG-random initial positions,
/// then edge attraction toward unit length plus a weak centering pull.
/// Good enough to make clusters and waves legible on non-grid graphs,
/// and byte-stable because nothing here consults a clock or OS RNG.
fn spring_layout(m: &Model) -> Vec<(f64, f64)> {
    let n = m.nodes.len();
    let index: std::collections::HashMap<u32, usize> =
        m.nodes.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut rng = m.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = || {
        rng = rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (rng >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut pos: Vec<(f64, f64)> = (0..n).map(|_| (next(), next())).collect();
    let edges: Vec<(usize, usize)> = m
        .edges
        .iter()
        .filter_map(|&(a, b)| Some((*index.get(&a)?, *index.get(&b)?)))
        .collect();
    // Iteration count shrinks with size so internet-scale traces still
    // render in seconds; the coarse shape settles in the first rounds.
    let rounds = if n > 20_000 { 10 } else { 60 };
    let ideal = 1.0 / (n as f64).sqrt().max(1.0);
    for round in 0..rounds {
        let step = 0.1 * (1.0 - round as f64 / rounds as f64);
        let mut force = vec![(0.0f64, 0.0f64); n];
        for &(a, b) in &edges {
            let dx = pos[b].0 - pos[a].0;
            let dy = pos[b].1 - pos[a].1;
            let d = (dx * dx + dy * dy).sqrt().max(1e-6);
            let f = (d - ideal) / d;
            force[a].0 += f * dx;
            force[a].1 += f * dy;
            force[b].0 -= f * dx;
            force[b].1 -= f * dy;
        }
        for i in 0..n {
            let cx = 0.5 - pos[i].0;
            let cy = 0.5 - pos[i].1;
            pos[i].0 += step * (force[i].0 + 0.05 * cx);
            pos[i].1 += step * (force[i].1 + 0.05 * cy);
        }
    }
    // Normalize into [0, 1]² with a small margin.
    let (mut lo_x, mut hi_x, mut lo_y, mut hi_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &pos {
        lo_x = lo_x.min(x);
        hi_x = hi_x.max(x);
        lo_y = lo_y.min(y);
        hi_y = hi_y.max(y);
    }
    let sx = (hi_x - lo_x).max(1e-9);
    let sy = (hi_y - lo_y).max(1e-9);
    pos.iter()
        .map(|&(x, y)| (0.04 + 0.92 * (x - lo_x) / sx, 0.04 + 0.92 * (y - lo_y) / sy))
        .collect()
}

// ---------------------------------------------------------------------
// SVG panels
// ---------------------------------------------------------------------

fn fmt(v: f64) -> String {
    // Two decimals is plenty for pixel coordinates and keeps files small.
    let s = format!("{v:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Blue (fast, dt = 0) → red (slow, dt = max) heat color.
fn heat_color(frac: f64) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let r = (40.0 + 215.0 * frac) as u32;
    let g = (70.0 + 60.0 * (1.0 - frac)) as u32;
    let b = (220.0 * (1.0 - frac) + 35.0) as u32;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// The wave-propagation heatmap over the topology layout.
fn wave_heatmap(m: &Model) -> String {
    let pos = layout(m);
    let max_dt = m
        .wave_dt
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-9);
    let r = (PANEL_W / (m.nodes.len() as f64).sqrt() / 3.0).clamp(1.0, 9.0);
    let mut s = format!(
        "<svg class=\"wave-heatmap\" xmlns=\"http://www.w3.org/2000/svg\" \
         viewBox=\"0 0 {PANEL_W} {HEAT_H}\" width=\"{PANEL_W}\" height=\"{HEAT_H}\">\n"
    );
    s.push_str("<rect width=\"100%\" height=\"100%\" fill=\"#fdfdfd\"/>\n");
    let index: std::collections::HashMap<u32, usize> =
        m.nodes.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    // Edge underlay, skipped above 60k edges where it would be solid ink.
    if m.edges.len() <= 60_000 {
        s.push_str("<g stroke=\"#cccccc\" stroke-width=\"0.6\">\n");
        for &(a, b) in &m.edges {
            if let (Some(&i), Some(&j)) = (index.get(&a), index.get(&b)) {
                let (x1, y1) = (pos[i].0 * PANEL_W, pos[i].1 * HEAT_H);
                let (x2, y2) = (pos[j].0 * PANEL_W, pos[j].1 * HEAT_H);
                s.push_str(&format!(
                    "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"/>\n",
                    fmt(x1),
                    fmt(y1),
                    fmt(x2),
                    fmt(y2)
                ));
            }
        }
        s.push_str("</g>\n");
    }
    s.push_str("<g class=\"wave-nodes\">\n");
    for (i, &id) in m.nodes.iter().enumerate() {
        let (x, y) = (pos[i].0 * PANEL_W, pos[i].1 * HEAT_H);
        let dt = m.wave_dt.get(id as usize).copied().flatten();
        let (fill, title) = match dt {
            Some(dt) => (
                heat_color(dt / max_dt),
                format!("node {id}: first action {} s after fault", fmt_time(dt)),
            ),
            None => ("#e8e8e8".to_string(), format!("node {id}: untouched")),
        };
        s.push_str(&format!(
            "<circle class=\"wave-node\" cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{fill}\">\
             <title>{title}</title></circle>\n",
            fmt(x),
            fmt(y),
            fmt(r)
        ));
    }
    s.push_str("</g>\n");
    // Color legend.
    s.push_str(&format!(
        "<text x=\"8\" y=\"{}\" font-size=\"11\" fill=\"#444\">wave reach: blue = acted \
         immediately, red = {} s after fault, gray = untouched</text>\n",
        HEAT_H - 8.0,
        fmt_time(max_dt)
    ));
    s.push_str("</svg>\n");
    s
}

fn fmt_time(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else {
        format!("{t:.2}")
    }
}

/// Folds `(t, value)` samples into per-bucket values over `[0, t_end]`.
fn bucketize(samples: &[(f64, f64)], t_end: f64, fold_max: bool) -> Vec<Option<f64>> {
    let mut out: Vec<Option<f64>> = vec![None; BUCKETS];
    let mut counts = vec![0u64; BUCKETS];
    let span = t_end.max(1e-9);
    for &(t, v) in samples {
        let i = (((t / span) * BUCKETS as f64) as usize).min(BUCKETS - 1);
        out[i] = Some(match out[i] {
            Some(prev) if fold_max => prev.max(v),
            Some(prev) => prev + v,
            None => v,
        });
        counts[i] += 1;
    }
    if !fold_max {
        for (slot, &c) in out.iter_mut().zip(&counts) {
            if let Some(v) = slot {
                *v /= c.max(1) as f64;
            }
        }
    }
    out
}

/// One time-series panel: a polyline over bucketed values, fault
/// markers as vertical dashes.
fn series_panel(
    class: &str,
    label: &str,
    values: &[Option<f64>],
    marks: &[(f64, String)],
    t_end: f64,
) -> String {
    let peak = values
        .iter()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-9);
    let mut s = format!(
        "<svg class=\"{class}\" xmlns=\"http://www.w3.org/2000/svg\" \
         viewBox=\"0 0 {PANEL_W} {SERIES_H}\" width=\"{PANEL_W}\" height=\"{SERIES_H}\">\n"
    );
    s.push_str("<rect width=\"100%\" height=\"100%\" fill=\"#fdfdfd\"/>\n");
    let plot_h = SERIES_H - 24.0;
    for (t, kind) in marks {
        let x = (t / t_end.max(1e-9)) * PANEL_W;
        s.push_str(&format!(
            "<line class=\"fault-mark\" x1=\"{x}\" y1=\"0\" x2=\"{x}\" y2=\"{plot_h}\" \
             stroke=\"#cc4444\" stroke-width=\"0.7\" stroke-dasharray=\"3,3\">\
             <title>{kind} at t = {t}</title></line>\n",
            x = fmt(x),
            t = fmt_time(*t),
        ));
    }
    let mut points = String::new();
    for (i, v) in values.iter().enumerate() {
        if let Some(v) = v {
            let x = (i as f64 + 0.5) / BUCKETS as f64 * PANEL_W;
            let y = plot_h - (v / peak) * (plot_h - 8.0);
            if !points.is_empty() {
                points.push(' ');
            }
            points.push_str(&format!("{},{}", fmt(x), fmt(y)));
        }
    }
    s.push_str(&format!(
        "<polyline points=\"{points}\" fill=\"none\" stroke=\"#2a6fb0\" stroke-width=\"1.5\"/>\n"
    ));
    s.push_str(&format!(
        "<text x=\"8\" y=\"{}\" font-size=\"11\" fill=\"#444\">{label} — peak {}</text>\n",
        SERIES_H - 8.0,
        fmt_time(peak)
    ));
    s.push_str("</svg>\n");
    s
}

/// The route-flap strip chart: the flappiest nodes, one row each, a
/// tick per route delta.
fn flap_strip(m: &Model) -> String {
    let mut per_node: std::collections::BTreeMap<u32, Vec<f64>> = std::collections::BTreeMap::new();
    for &(t, n) in &m.route_events {
        per_node.entry(n).or_default().push(t);
    }
    let mut rows: Vec<(u32, Vec<f64>)> = per_node.into_iter().collect();
    // Most route deltas first; node id breaks ties so the pick is stable.
    rows.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
    rows.truncate(FLAP_ROWS);
    rows.sort_by_key(|(n, _)| *n);
    let row_h = 12.0;
    let h = (rows.len() as f64 * row_h + 24.0).max(48.0);
    let mut s = format!(
        "<svg class=\"flap-strip\" xmlns=\"http://www.w3.org/2000/svg\" \
         viewBox=\"0 0 {PANEL_W} {h}\" width=\"{PANEL_W}\" height=\"{h}\">\n"
    );
    s.push_str("<rect width=\"100%\" height=\"100%\" fill=\"#fdfdfd\"/>\n");
    let span = m.t_end.max(1e-9);
    for (row, (node, times)) in rows.iter().enumerate() {
        let y = row as f64 * row_h + row_h / 2.0;
        s.push_str(&format!(
            "<text x=\"4\" y=\"{}\" font-size=\"8\" fill=\"#666\">{node}</text>\n",
            fmt(y + 3.0)
        ));
        s.push_str(&format!(
            "<g class=\"flap-row\" stroke=\"#444\" stroke-width=\"1\" \
             transform=\"translate(0,{})\">\n",
            fmt(y)
        ));
        for &t in times {
            let x = 36.0 + (t / span) * (PANEL_W - 44.0);
            s.push_str(&format!(
                "<line x1=\"{x}\" y1=\"-4\" x2=\"{x}\" y2=\"4\"/>\n",
                x = fmt(x)
            ));
        }
        s.push_str("</g>\n");
    }
    s.push_str(&format!(
        "<text x=\"8\" y=\"{}\" font-size=\"11\" fill=\"#444\">route flaps — {} deltas across \
         {} nodes (top {} rows shown)</text>\n",
        h - 8.0,
        m.route_events.len(),
        m.route_events
            .iter()
            .map(|(_, n)| n)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        rows.len()
    ));
    s.push_str("</svg>\n");
    s
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Renders the wave heatmap alone (the `.svg` output path).
///
/// # Errors
///
/// Malformed traces surface as [`io::ErrorKind::InvalidData`].
pub fn render_svg(frames: &[Json]) -> Result<String, String> {
    let m = Model::from_frames(frames)?;
    Ok(wave_heatmap(&m))
}

/// Renders the full self-contained HTML page.
///
/// # Errors
///
/// Malformed traces surface as a description of the first problem.
pub fn render_html(frames: &[Json]) -> Result<String, String> {
    let m = Model::from_frames(frames)?;
    let mut page = String::new();
    page.push_str(
        "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n\
         <title>lsrp trace</title>\n<style>\n\
         body { font-family: sans-serif; max-width: 860px; margin: 24px auto; color: #222; }\n\
         h1 { font-size: 20px; } h2 { font-size: 15px; margin-top: 28px; }\n\
         svg { border: 1px solid #ddd; display: block; }\n\
         .meta { color: #666; font-size: 13px; }\n\
         </style>\n</head>\n<body>\n",
    );
    let topo = m.topology.as_deref().unwrap_or("unknown topology");
    page.push_str(&format!(
        "<h1>LSRP trace — {topo}</h1>\n<p class=\"meta\">{} nodes, {} edges, seed {}, \
         horizon {} s{}</p>\n",
        m.nodes.len(),
        m.edges.len(),
        m.seed,
        fmt_time(m.t_end),
        match m.msgs {
            Some((sent, delivered)) =>
                format!(", {sent} protocol messages sent / {delivered} delivered"),
            None => String::new(),
        }
    ));
    page.push_str("<h2>Stabilization wave</h2>\n");
    page.push_str(&wave_heatmap(&m));
    if !m.queue.is_empty() {
        page.push_str("<h2>Queue depth</h2>\n");
        let vals = bucketize(&m.queue, m.t_end, true);
        page.push_str(&series_panel(
            "queue-series",
            "peak queue occupancy per bucket",
            &vals,
            &m.marks,
            m.t_end,
        ));
    }
    if !m.packets.is_empty() {
        page.push_str("<h2>Availability</h2>\n");
        let samples: Vec<(f64, f64)> = m
            .packets
            .iter()
            .map(|&(t, ok)| (t, if ok { 1.0 } else { 0.0 }))
            .collect();
        let vals = bucketize(&samples, m.t_end, false);
        page.push_str(&series_panel(
            "availability-series",
            "delivered fraction per bucket",
            &vals,
            &m.marks,
            m.t_end,
        ));
    }
    if !m.flows.is_empty() {
        page.push_str("<h2>Goodput</h2>\n");
        let vals = bucketize(&m.flows, m.t_end, false);
        page.push_str(&series_panel(
            "goodput-series",
            "mean flow goodput by completion time",
            &vals,
            &m.marks,
            m.t_end,
        ));
    }
    if !m.route_events.is_empty() {
        page.push_str("<h2>Route flaps</h2>\n");
        page.push_str(&flap_strip(&m));
    }
    page.push_str("</body>\n</html>\n");
    Ok(page)
}

fn invalid(path: &str, e: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{path}: {e}"))
}

/// Reads a trace file and renders the heatmap SVG.
///
/// # Errors
///
/// I/O errors pass through; malformed traces are `InvalidData`.
pub fn render_svg_file(path: &str) -> io::Result<String> {
    let frames = read_trace(Path::new(path))?;
    render_svg(&frames).map_err(|e| invalid(path, e))
}

/// Reads a trace file and renders the full HTML page.
///
/// # Errors
///
/// I/O errors pass through; malformed traces are `InvalidData`.
pub fn render_html_file(path: &str) -> io::Result<String> {
    let frames = read_trace(Path::new(path))?;
    render_html(&frames).map_err(|e| invalid(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsrp_trace::json::parse;

    fn frames(lines: &[&str]) -> Vec<Json> {
        lines.iter().map(|l| parse(l).unwrap()).collect()
    }

    fn grid_frames() -> Vec<Json> {
        frames(&[
            r#"{"k":"hdr","schema":"lsrp-trace","v":1,"seed":7,"nodes":4,"edges":4,"topology":"grid:2x2","classes":["actions"],"snapshot_every":0}"#,
            r#"{"k":"topo","nodes":[0,1,2,3]}"#,
            r#"{"k":"topo","edges":[[0,1,1],[0,2,1],[1,3,1],[2,3,1]]}"#,
            r#"{"k":"mark","t":1,"kind":"corrupt","a":3,"b":null}"#,
            r#"{"k":"wave","t":2,"n":3,"epoch":1,"dt":1}"#,
            r#"{"k":"wave","t":3,"n":1,"epoch":1,"dt":2}"#,
            r#"{"k":"rt","t":2.5,"n":3,"d":2,"p":1,"c":0}"#,
            r#"{"k":"rt","t":2.75,"n":3,"up":false}"#,
            r#"{"k":"q","t":3,"a":0,"b":1,"occ":5,"drop":false}"#,
            r#"{"k":"pkt","t":4,"src":3,"dst":0,"fate":"delivered","hops":2,"w":1,"lat":0.5,"flow":null}"#,
            r#"{"k":"pkt","t":4.5,"src":3,"dst":0,"fate":"black_holed","at":1,"hops":1,"w":1,"lat":0.25,"flow":null}"#,
            r#"{"k":"flow","t":6,"id":0,"src":1,"dst":0,"segs":4,"acked":4,"w":1,"retx":0,"timeouts":0,"marks":0,"start":2,"goodput":1.5}"#,
            r#"{"k":"end","t":6,"seq":9,"msgs":{"sent":10,"delivered":9,"dropped_lossy":0,"dropped_dead":1,"duplicated":0},"tally":{"actions":2,"waves":2,"routes":2,"queues":1,"drops":0,"packets":2,"flows":1,"markers":1}}"#,
        ])
    }

    #[test]
    fn html_carries_every_panel() {
        let html = render_html(&grid_frames()).unwrap();
        for class in [
            "wave-heatmap",
            "queue-series",
            "availability-series",
            "goodput-series",
            "flap-strip",
        ] {
            assert!(html.contains(class), "missing {class}");
        }
        assert!(html.contains("grid:2x2"));
        assert!(html.contains("10 protocol messages sent / 9 delivered"));
        // Self-contained: no external references.
        assert!(!html.contains("http://") || html.contains("www.w3.org/2000/svg"));
        assert!(!html.contains("<script src"));
    }

    #[test]
    fn svg_output_is_the_heatmap_alone() {
        let svg = render_svg(&grid_frames()).unwrap();
        assert!(svg.starts_with("<svg class=\"wave-heatmap\""));
        assert_eq!(svg.matches("<svg").count(), 1);
        // All four nodes render; the corrupted node 3 is the hottest.
        assert_eq!(svg.matches("<circle class=\"wave-node\"").count(), 4);
        assert!(svg.contains("untouched"), "nodes 0 and 2 never acted");
    }

    #[test]
    fn grid_layout_uses_exact_coordinates() {
        let m = Model::from_frames(&grid_frames()).unwrap();
        let pos = layout(&m);
        assert_eq!(pos[0], (0.25, 0.25));
        assert_eq!(pos[3], (0.75, 0.75));
    }

    #[test]
    fn spring_layout_is_deterministic_and_bounded() {
        let mut lines = vec![
            r#"{"k":"hdr","schema":"lsrp-trace","v":1,"seed":3,"nodes":5,"edges":4,"topology":"ring:5","classes":[],"snapshot_every":0}"#.to_string(),
            r#"{"k":"topo","nodes":[0,1,2,3,4]}"#.to_string(),
            r#"{"k":"topo","edges":[[0,1,1],[1,2,1],[2,3,1],[3,4,1]]}"#.to_string(),
        ];
        lines.push(r#"{"k":"end","t":1,"seq":0,"msgs":{"sent":0,"delivered":0,"dropped_lossy":0,"dropped_dead":0,"duplicated":0},"tally":{"actions":0,"waves":0,"routes":0,"queues":0,"drops":0,"packets":0,"flows":0,"markers":0}}"#.to_string());
        let fs: Vec<Json> = lines.iter().map(|l| parse(l).unwrap()).collect();
        let m = Model::from_frames(&fs).unwrap();
        let a = layout(&m);
        let b = layout(&m);
        assert_eq!(a, b, "same trace, same embedding");
        for &(x, y) in &a {
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn rejects_non_traces_and_future_schemas() {
        assert!(render_html(&[]).is_err());
        let future = frames(&[
            r#"{"k":"hdr","schema":"lsrp-trace","v":99,"seed":0,"nodes":1,"edges":0,"topology":null,"classes":[],"snapshot_every":0}"#,
        ]);
        let err = render_html(&future).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }
}
