//! End-to-end walk through the paper's storyline on its own example
//! network, exercised through the facade crate: the motivating failure of
//! distance-vector routing (Figure 2), LSRP's containment (Figures 5–6),
//! and the §III perturbation arithmetic — all in one narrative test file.

use std::collections::BTreeSet;

use lsrp::analysis::{measure_recovery, RoutingSimulation};
use lsrp::baselines::{BaselineSimulation, DbfConfig, DbfSimulation};
use lsrp::core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp::graph::topologies::{fig1_route_table, paper_fig1, v, FIG1_DESTINATION};
use lsrp::graph::Distance;
use lsrp_sim::EngineConfig;

fn lsrp_fig1() -> LsrpSimulation {
    LsrpSimulation::builder(paper_fig1(), FIG1_DESTINATION)
        .initial_state(InitialState::Table(fig1_route_table()))
        .timing(TimingConfig::paper_example(1.0))
        .build()
}

fn dbf_fig1() -> DbfSimulation {
    DbfSimulation::new(
        paper_fig1(),
        FIG1_DESTINATION,
        Some(fig1_route_table()),
        DbfConfig::default(),
        EngineConfig::default(),
    )
}

/// The same single corruption — `d.v9 := 1, learned by v7 and v8` —
/// contaminates six nodes under DBF and zero under LSRP, with an order of
/// magnitude fewer messages.
#[test]
fn the_headline_comparison() {
    let perturbed = BTreeSet::from([v(9)]);
    let inject = |s: &mut dyn RoutingSimulation| {
        s.corrupt_distance(v(9), Distance::Finite(1));
        s.poison_mirror(v(7), v(9), Distance::Finite(1));
        s.poison_mirror(v(8), v(9), Distance::Finite(1));
    };

    let mut lsrp = lsrp_fig1();
    let m_lsrp = measure_recovery(
        &mut lsrp as &mut dyn RoutingSimulation,
        &perturbed,
        100_000.0,
        |s| inject(s),
    );
    let mut dbf = dbf_fig1();
    let m_dbf = measure_recovery(
        &mut dbf as &mut dyn RoutingSimulation,
        &perturbed,
        100_000.0,
        |s| inject(s),
    );

    assert!(m_lsrp.routes_correct && m_dbf.routes_correct);
    assert_eq!(m_lsrp.contaminated.len(), 0, "LSRP contains ideally");
    assert_eq!(
        m_dbf.contaminated.len(),
        6,
        "DBF contaminates v1 v3 v6 v7 v8 v10"
    );
    assert!(m_lsrp.stabilization_time < m_dbf.stabilization_time / 4.0);
    assert!(
        m_lsrp.messages * 3 < m_dbf.messages,
        "LSRP {} vs DBF {} messages",
        m_lsrp.messages,
        m_dbf.messages
    );
    assert!(m_lsrp.actions * 3 < m_dbf.actions);
}

/// Route flapping (the instability §IV-B calls out): under DBF the
/// corruption makes `v6` change its route into the corrupted subtree and
/// back; under LSRP `v6`'s route never moves.
#[test]
fn route_flapping_happens_only_under_dbf() {
    let watch_parent_changes = |sim: &mut dyn RoutingSimulation| {
        let mut changes = 0;
        let mut last = sim.route_table().entry(v(6)).unwrap().parent;
        while sim.step().is_some() {
            let p = sim.route_table().entry(v(6)).unwrap().parent;
            if p != last {
                changes += 1;
                last = p;
            }
        }
        changes
    };
    let inject = |s: &mut dyn RoutingSimulation| {
        s.corrupt_distance(v(9), Distance::Finite(1));
        s.poison_mirror(v(7), v(9), Distance::Finite(1));
        s.poison_mirror(v(8), v(9), Distance::Finite(1));
    };

    let mut lsrp = lsrp_fig1();
    inject(&mut lsrp as &mut dyn RoutingSimulation);
    assert_eq!(
        watch_parent_changes(&mut lsrp as &mut dyn RoutingSimulation),
        0
    );

    let mut dbf = dbf_fig1();
    inject(&mut dbf as &mut dyn RoutingSimulation);
    assert_eq!(
        watch_parent_changes(&mut dbf as &mut dyn RoutingSimulation),
        2
    );
}

/// The §III-A dependency arithmetic holds end to end: injecting the
/// fail-stop of `v9` perturbs exactly `{v7, v8, v10}`, and those are also
/// exactly the nodes that act during LSRP's recovery.
#[test]
fn perturbation_accounting_matches_recovery() {
    use lsrp::faults::{Fault, FaultPlan};
    let plan = FaultPlan::new().with(Fault::FailNode(v(9)));
    let predicted = plan
        .perturbation(&paper_fig1(), FIG1_DESTINATION, &fig1_route_table())
        .unwrap()
        .perturbed_nodes();
    assert_eq!(predicted, BTreeSet::from([v(7), v(8), v(10)]));

    let mut sim = lsrp_fig1();
    sim.engine_mut().reset_trace();
    let t0 = sim.now();
    plan.apply_lsrp(&mut sim).unwrap();
    let report = sim.run_to_quiescence(100_000.0);
    assert!(report.quiescent && sim.routes_correct());
    let acted = sim.engine().trace().acted_nodes_since(t0);
    assert_eq!(acted, predicted, "exactly the dependent set acts");
}

/// Weight changes are topology faults too: raising the weight of the
/// (v13, v9) link reroutes the subtree and LSRP converges to the new
/// shortest paths.
#[test]
fn weight_change_reroutes_correctly() {
    let mut sim = lsrp_fig1();
    sim.set_weight(v(13), v(9), 4).unwrap();
    let report = sim.run_to_quiescence(100_000.0);
    assert!(report.quiescent);
    assert!(sim.routes_correct());
    let t = sim.route_table();
    // v9 now routes via v7/v8's side: d = 5 via v7 (4 + 1).
    assert_eq!(t.entry(v(9)).unwrap().distance, Distance::Finite(5));
}
