//! Reproducibility: every simulation in this repository is bit-for-bit
//! deterministic given its seed — traces, final states, metrics.

use std::collections::BTreeSet;

use lsrp::analysis::{chaos_campaign, chaos_campaign_with_jobs, ChaosConfig};
use lsrp::analysis::{measure_recovery, RoutingSimulation};
use lsrp::core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp::graph::{generators, Distance, NodeId};
use lsrp_sim::{ClockConfig, EngineConfig, LinkConfig, SinkKind};

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

fn run_once(seed: u64) -> (Vec<(NodeId, f64, &'static str)>, String) {
    let engine = EngineConfig::default()
        .with_seed(seed)
        .with_link(LinkConfig::jittered(0.5, 1.5))
        .with_clocks(ClockConfig::Drifting { rho: 1.4 });
    let timing = TimingConfig::for_network(1.4, 1.5).with_syn_period(4.0);
    let mut sim = LsrpSimulation::builder(generators::grid(6, 6, 1), v(0))
        .timing(timing)
        .initial_state(InitialState::Arbitrary { seed: seed ^ 99 })
        .engine_config(engine)
        .build();
    let report = sim.run_to_quiescence(1_000_000.0);
    assert!(report.quiescent);
    let actions = sim
        .engine()
        .trace()
        .actions
        .iter()
        .filter(|r| !r.maintenance)
        .map(|r| (r.node, r.time.seconds(), r.name))
        .collect();
    let table = format!("{:?}", sim.route_table());
    (actions, table)
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let (a1, t1) = run_once(7);
    let (a2, t2) = run_once(7);
    assert_eq!(a1, a2, "traces must match exactly");
    assert_eq!(t1, t2, "final tables must match exactly");
    assert!(!a1.is_empty(), "the arbitrary start must cause activity");
}

#[test]
fn different_seeds_differ() {
    let (a1, _) = run_once(7);
    let (a2, _) = run_once(8);
    assert_ne!(a1, a2);
}

#[test]
fn sink_choice_never_changes_the_simulation() {
    // The trace sink is pure observability: the same seeded run under
    // Full / CountsOnly / Null sinks must produce identical engine
    // statistics, identical final tables, and identical end times — only
    // what is *recorded* differs.
    let run_with = |sink: SinkKind| {
        let engine = EngineConfig::default()
            .with_seed(23)
            .with_link(LinkConfig::jittered(0.5, 1.5))
            .with_clocks(ClockConfig::Drifting { rho: 1.4 })
            .with_sink(sink);
        let mut sim = LsrpSimulation::builder(generators::grid(6, 6, 1), v(0))
            .timing(TimingConfig::for_network(1.4, 1.5).with_syn_period(4.0))
            .initial_state(InitialState::Arbitrary { seed: 5 })
            .engine_config(engine)
            .build();
        let report = sim.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent);
        let stats = sim.stats();
        (
            report.end,
            format!("{:?}", sim.route_table()),
            format!("{stats:?}"),
            sim.engine().sink().counts().copied(),
            sim.engine().sink().trace().map(|t| {
                (
                    t.total_actions(),
                    t.messages_sent,
                    t.messages_delivered,
                    t.dropped_lossy_link,
                    t.dropped_dead_receiver,
                    t.messages_duplicated,
                )
            }),
        )
    };
    let (end_f, table_f, stats_f, counts_f, trace_f) = run_with(SinkKind::Full);
    let (end_c, table_c, stats_c, counts_c, trace_c) = run_with(SinkKind::CountsOnly);
    let (end_n, table_n, stats_n, counts_n, trace_n) = run_with(SinkKind::Null);
    assert_eq!(end_f, end_c);
    assert_eq!(end_f, end_n);
    assert_eq!(table_f, table_c);
    assert_eq!(table_f, table_n);
    assert_eq!(stats_f, stats_c, "EngineStats must not depend on the sink");
    assert_eq!(stats_f, stats_n);
    // Retention differs exactly as advertised: only Full keeps a trace,
    // only CountsOnly exposes counters, Null keeps nothing — but where a
    // number exists in both, it agrees.
    let (actions, sent, delivered, lossy, dead, dup) = trace_f.expect("full sink keeps a trace");
    assert!(trace_c.is_none() && trace_n.is_none());
    assert!(counts_f.is_none() && counts_n.is_none());
    let counts = counts_c.expect("counts-only sink keeps counters");
    assert_eq!(counts.actions, actions);
    assert_eq!(counts.messages_sent, sent);
    assert_eq!(counts.messages_delivered, delivered);
    assert_eq!(counts.dropped_lossy_link, lossy);
    assert_eq!(counts.dropped_dead_receiver, dead);
    assert_eq!(counts.messages_duplicated, dup);
    assert!(sent > 0 && delivered > 0);
}

#[test]
fn parallel_campaign_matches_serial_byte_for_byte() {
    let g = generators::grid(4, 4, 1);
    let config = ChaosConfig::default();
    let serial = chaos_campaign(&g, v(0), "grid:4x4", &config, 7, 6);
    for jobs in [2, 5] {
        let parallel = chaos_campaign_with_jobs(&g, v(0), "grid:4x4", &config, 7, 6, jobs);
        assert_eq!(
            serial.report(),
            parallel.report(),
            "campaign report must not depend on worker count (jobs={jobs})"
        );
    }
}

#[test]
fn metrics_are_reproducible_through_the_harness() {
    let measure = || {
        let mut sim = LsrpSimulation::builder(generators::grid(8, 8, 1), v(0))
            .engine_config(
                EngineConfig::default()
                    .with_seed(3)
                    .with_link(LinkConfig::jittered(0.5, 1.5)),
            )
            .timing(TimingConfig::for_network(1.0, 1.5))
            .build();
        let perturbed = BTreeSet::from([v(9)]);
        let m = measure_recovery(
            &mut sim as &mut dyn RoutingSimulation,
            &perturbed,
            1_000_000.0,
            |s| {
                s.corrupt_distance(v(9), Distance::ZERO);
                s.poison_mirror(v(10), v(9), Distance::ZERO);
            },
        );
        (m.stabilization_time, m.messages, m.actions, m.contaminated)
    };
    assert_eq!(measure(), measure());
}
