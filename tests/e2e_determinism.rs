//! Reproducibility: every simulation in this repository is bit-for-bit
//! deterministic given its seed — traces, final states, metrics.

use std::collections::BTreeSet;

use lsrp::analysis::{measure_recovery, RoutingSimulation};
use lsrp::core::{InitialState, LsrpSimulation, TimingConfig};
use lsrp::graph::{generators, Distance, NodeId};
use lsrp_sim::{ClockConfig, EngineConfig, LinkConfig};

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

fn run_once(seed: u64) -> (Vec<(NodeId, f64, &'static str)>, String) {
    let engine = EngineConfig::default()
        .with_seed(seed)
        .with_link(LinkConfig::jittered(0.5, 1.5))
        .with_clocks(ClockConfig::Drifting { rho: 1.4 });
    let timing = TimingConfig::for_network(1.4, 1.5).with_syn_period(4.0);
    let mut sim = LsrpSimulation::builder(generators::grid(6, 6, 1), v(0))
        .timing(timing)
        .initial_state(InitialState::Arbitrary { seed: seed ^ 99 })
        .engine_config(engine)
        .build();
    let report = sim.run_to_quiescence(1_000_000.0);
    assert!(report.quiescent);
    let actions = sim
        .engine()
        .trace()
        .actions
        .iter()
        .filter(|r| !r.maintenance)
        .map(|r| (r.node, r.time.seconds(), r.name))
        .collect();
    let table = format!("{:?}", sim.route_table());
    (actions, table)
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let (a1, t1) = run_once(7);
    let (a2, t2) = run_once(7);
    assert_eq!(a1, a2, "traces must match exactly");
    assert_eq!(t1, t2, "final tables must match exactly");
    assert!(!a1.is_empty(), "the arbitrary start must cause activity");
}

#[test]
fn different_seeds_differ() {
    let (a1, _) = run_once(7);
    let (a2, _) = run_once(8);
    assert_ne!(a1, a2);
}

#[test]
fn metrics_are_reproducible_through_the_harness() {
    let measure = || {
        let mut sim = LsrpSimulation::builder(generators::grid(8, 8, 1), v(0))
            .engine_config(
                EngineConfig::default()
                    .with_seed(3)
                    .with_link(LinkConfig::jittered(0.5, 1.5)),
            )
            .timing(TimingConfig::for_network(1.0, 1.5))
            .build();
        let perturbed = BTreeSet::from([v(9)]);
        let m = measure_recovery(
            &mut sim as &mut dyn RoutingSimulation,
            &perturbed,
            1_000_000.0,
            |s| {
                s.corrupt_distance(v(9), Distance::ZERO);
                s.poison_mirror(v(10), v(9), Distance::ZERO);
            },
        );
        (m.stabilization_time, m.messages, m.actions, m.contaminated)
    };
    assert_eq!(measure(), measure());
}
