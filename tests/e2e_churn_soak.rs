//! Churn soak: a long randomized sequence of mixed faults (corruptions,
//! link churn, fail-stops, joins) against one LSRP network — after every
//! fault the system must re-converge to correct shortest paths, and with
//! the strict-loop-freedom timing, no routing loop may ever appear.

use lsrp::core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp::graph::{generators, Distance, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn lsrp_survives_sustained_mixed_churn() {
    let mut rng = StdRng::seed_from_u64(20260707);
    let graph = generators::connected_erdos_renyi(40, 0.08, 3, &mut rng);
    let dest = v(0);
    let timing = TimingConfig::paper_example(1.0).with_strict_loop_freedom(1.0, 1.0);
    let mut sim = LsrpSimulation::builder(graph, dest)
        .timing(timing)
        .initial_state(InitialState::Legitimate)
        .seed(1)
        .build();

    let mut dead: Vec<NodeId> = Vec::new();
    let mut next_join_id = 1_000u32;
    for round in 0..60 {
        // Pick a random fault class.
        let nodes: Vec<NodeId> = sim.graph().nodes().filter(|&x| x != dest).collect();
        let pick = nodes[rng.gen_range(0..nodes.len())];
        match rng.gen_range(0..6) {
            0 => {
                // Distance corruption with poisoned neighborhood.
                let d = Distance::Finite(rng.gen_range(0..60));
                sim.corrupt_distance(pick, d);
                let ns: Vec<NodeId> = sim.graph().neighbors(pick).map(|(k, _)| k).collect();
                for k in ns {
                    let (p, ghost) = {
                        let s = sim.engine().node(pick).unwrap().state();
                        (s.p, s.ghost)
                    };
                    sim.corrupt_mirror(k, pick, lsrp::core::Mirror { d, p, ghost });
                }
            }
            1 => {
                // Ghost-flag corruption.
                sim.corrupt_ghost(pick, rng.gen_bool(0.5));
            }
            2 => {
                // Fail-stop, but never disconnect the graph.
                let mut after = sim.graph().clone();
                after.remove_node(pick).unwrap();
                if after.is_connected() {
                    sim.fail_node(pick).unwrap();
                    dead.push(pick);
                }
            }
            3 => {
                // Rejoin a dead node (or join a brand-new one) somewhere.
                let id = dead.pop().unwrap_or_else(|| {
                    next_join_id += 1;
                    v(next_join_id)
                });
                let a = nodes[rng.gen_range(0..nodes.len())];
                let b = nodes[rng.gen_range(0..nodes.len())];
                let mut edges = vec![(a, rng.gen_range(1..4))];
                if b != a {
                    edges.push((b, rng.gen_range(1..4)));
                }
                sim.join_node(id, &edges).unwrap();
            }
            4 => {
                // Link churn: remove a random non-cut edge, or add one.
                let edges: Vec<_> = sim.graph().edges().collect();
                let (a, b, _) = edges[rng.gen_range(0..edges.len())];
                let mut after = sim.graph().clone();
                after.remove_edge(a, b).unwrap();
                if after.is_connected() {
                    sim.fail_edge(a, b).unwrap();
                } else {
                    sim.join_edge(a, b, rng.gen_range(1..4)).ok();
                }
            }
            _ => {
                // Weight change.
                let edges: Vec<_> = sim.graph().edges().collect();
                let (a, b, _) = edges[rng.gen_range(0..edges.len())];
                sim.set_weight(a, b, rng.gen_range(1..6)).unwrap();
            }
        }

        let report = sim.run_to_quiescence(10_000_000.0);
        assert!(report.quiescent, "round {round}: did not settle");
        assert!(sim.routes_correct(), "round {round}: wrong routes");
        assert!(sim.is_legitimate(), "round {round}: not legitimate");
        assert!(
            !sim.route_table().has_routing_loop(dest),
            "round {round}: loop at rest"
        );
    }
}

#[test]
fn repeated_partition_and_heal() {
    // Cut the network in half and heal it, repeatedly; the stranded half
    // must withdraw routes (d = ∞) and re-learn them on heal.
    let mut sim = LsrpSimulation::builder(generators::path(10, 1), v(0)).build();
    for round in 0..5 {
        sim.fail_edge(v(4), v(5)).unwrap();
        let report = sim.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent, "round {round} cut");
        assert!(sim.routes_correct());
        assert!(sim
            .route_table()
            .entry(v(9))
            .unwrap()
            .distance
            .is_infinite());

        sim.join_edge(v(4), v(5), 1).unwrap();
        let report = sim.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent, "round {round} heal");
        assert!(sim.routes_correct());
        assert_eq!(
            sim.route_table().entry(v(9)).unwrap().distance,
            Distance::Finite(9)
        );
    }
}
