//! Cross-protocol invariants, run through the unified measurement
//! interface: for the same faults on the same topologies, LSRP's recovery
//! is local while the baselines' is global — the repository's version of
//! the paper's Table-of-comparisons.

use std::collections::BTreeSet;

use lsrp::analysis::{measure_recovery, RoutingSimulation};
use lsrp::baselines::{BaselineSimulation, DbfConfig, DbfSimulation, DualConfig, DualSimulation};
use lsrp::core::{LsrpSimulation, LsrpSimulationExt};
use lsrp::graph::{generators, Distance, NodeId};
use lsrp_sim::EngineConfig;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

fn protocols_on(graph: lsrp::graph::Graph, dest: NodeId) -> Vec<Box<dyn RoutingSimulation>> {
    vec![
        Box::new(LsrpSimulation::builder(graph.clone(), dest).build()),
        Box::new(DbfSimulation::new(
            graph.clone(),
            dest,
            None,
            DbfConfig::default(),
            EngineConfig::default(),
        )),
        Box::new(DualSimulation::new(
            graph,
            dest,
            None,
            DualConfig::default(),
            EngineConfig::default(),
        )),
    ]
}

/// A black-hole corruption deep inside a grid: every protocol recovers
/// correct routes, but only LSRP keeps both the contamination range and
/// the stabilization time bounded by the perturbation, not the network.
#[test]
fn black_hole_recovery_is_local_only_for_lsrp() {
    let dest = v(0);
    let victim = v(17); // (1,1) of a 16x16 grid: most of the grid is downstream
    let mut results = Vec::new();
    for mut sim in protocols_on(generators::grid(16, 16, 1), dest) {
        let perturbed = BTreeSet::from([victim]);
        let m = measure_recovery(sim.as_mut(), &perturbed, 5_000_000.0, |s| {
            s.corrupt_distance(victim, Distance::ZERO);
            let ns: Vec<NodeId> = s.graph().neighbors(victim).map(|(k, _)| k).collect();
            for k in ns {
                s.poison_mirror(k, victim, Distance::ZERO);
            }
        });
        assert!(m.quiescent && m.routes_correct, "{}", m.protocol);
        results.push(m);
    }
    let (lsrp, dbf, dual) = (&results[0], &results[1], &results[2]);
    assert!(lsrp.contamination_range <= 2);
    assert!(dbf.contamination_range > 10, "{}", dbf.contamination_range);
    assert!(
        dual.contamination_range > 10,
        "{}",
        dual.contamination_range
    );
    assert!(lsrp.stabilization_time * 5.0 < dbf.stabilization_time);
    assert!(lsrp.messages * 10 < dbf.messages);
}

/// Fail-stop of a cut-ish node: all protocols re-converge; LSRP touches
/// only the dependent neighborhood.
#[test]
fn fail_stop_recovery_across_protocols() {
    let dest = v(0);
    for mut sim in protocols_on(generators::grid(8, 8, 1), dest) {
        let dead = v(27);
        let perturbed: BTreeSet<NodeId> = sim.graph().neighbors(dead).map(|(k, _)| k).collect();
        let m = measure_recovery(sim.as_mut(), &perturbed, 5_000_000.0, |s| {
            s.fail_node(dead).unwrap();
        });
        assert!(m.quiescent, "{}", m.protocol);
        assert!(m.routes_correct, "{}", m.protocol);
    }
}

/// The disconnection stress test: DBF counts to (bounded) infinity, DUAL
/// withdraws via one diffusing computation, LSRP withdraws via
/// containment — all end with `d = ∞` on the stranded side, with wildly
/// different amounts of work.
#[test]
fn disconnection_withdrawal_work_comparison() {
    let dest = v(0);
    let mut actions = Vec::new();
    for mut sim in protocols_on(generators::path(8, 1), dest) {
        let perturbed: BTreeSet<NodeId> = (1..8).map(v).collect();
        let m = measure_recovery(sim.as_mut(), &perturbed, 5_000_000.0, |s| {
            s.fail_edge(v(0), v(1)).unwrap();
        });
        assert!(m.quiescent && m.routes_correct, "{}", m.protocol);
        let table = sim.route_table();
        for i in 1..8 {
            assert!(
                table.entry(v(i)).unwrap().distance.is_infinite(),
                "{} v{i}",
                m.protocol
            );
        }
        actions.push((m.protocol, m.actions));
    }
    let dbf = actions.iter().find(|(p, _)| *p == "DBF").unwrap().1;
    let dual = actions.iter().find(|(p, _)| *p == "DUAL").unwrap().1;
    assert!(
        dbf > dual * 3,
        "count-to-infinity must dwarf the diffusing withdrawal: DBF {dbf} vs DUAL {dual}"
    );
}
