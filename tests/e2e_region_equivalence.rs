//! Region-parallel equivalence: the region-partitioned executor must be
//! observationally *byte-identical* to the sequential engine.
//!
//! The engine executes regions concurrently inside conservative time
//! windows and merges cross-region effects and observability at window
//! barriers in canonical `(time, key)` order, so a seeded run — trace,
//! RNG draws, final tables, statistics — cannot depend on the region
//! count or the worker-thread count. These tests pin that across the same
//! cartesian slice as the scheduler-equivalence suite (topology shapes ×
//! seeds × chaos fault schedules × congested data-plane traffic), for
//! regions ∈ {1, 2, 4, 8} under varying `jobs`, including the PFC-pause
//! lockstep fallback. Every engine statistic participates —
//! `peak_queue_depth` is sampled at region-invariant points (window
//! barriers and the driver boundaries), so it too must match the
//! sequential engine exactly.

use lsrp::analysis::{run_monitored, standard_monitors, WorkloadDriver, WorkloadSpec};
use lsrp::core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp::faults::{FaultProcess, FaultSchedule};
use lsrp::graph::{generators, Distance, Graph, NodeId};
use lsrp_sim::{
    ClockConfig, CongestionConfig, DisciplineKind, EngineConfig, EngineStats, LinkConfig, SimTime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// The `(regions, jobs)` matrix compared against the sequential baseline:
/// every region count the acceptance bar names, exercised both inline and
/// fanned out over worker threads.
const MATRIX: [(usize, usize); 6] = [(1, 4), (2, 1), (2, 2), (4, 1), (4, 4), (8, 3)];

/// The topologies under test: a mesh, a data-center Clos, and a
/// power-law internet-like graph.
fn topologies() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(42);
    vec![
        ("grid6x6", generators::grid(6, 6, 1)),
        ("fattree4", generators::fat_tree(4)),
        ("ba60", generators::barabasi_albert(60, 2, &mut rng)),
    ]
}

/// Region-invariant statistics view — the full `EngineStats`, including
/// the event-queue high-water mark.
fn stats_fingerprint(stats: EngineStats) -> String {
    format!("{stats:?}")
}

/// Runs a chaotic control-plane scenario with the given region/job split
/// and returns the full observable fingerprint: every action record, the
/// final route table, and the (region-invariant) engine statistics.
fn chaos_fingerprint(regions: usize, jobs: usize, graph: &Graph, seed: u64) -> String {
    let engine = EngineConfig::default()
        .with_seed(seed)
        .with_link(LinkConfig::jittered(0.5, 1.5))
        .with_clocks(ClockConfig::Drifting { rho: 1.4 })
        .with_regions(regions)
        .with_jobs(jobs);
    let timing = TimingConfig::for_network(1.4, 1.5);
    let mut sim = LsrpSimulation::builder(graph.clone(), v(0))
        .timing(timing)
        .initial_state(InitialState::Arbitrary { seed: seed ^ 99 })
        .engine_config(engine)
        .build();
    assert!(sim.run_to_quiescence(1_000_000.0).quiescent);

    let t0 = sim.now().seconds();
    let raw = FaultProcess::standard().generate(graph, v(0), 120.0, seed);
    let mut schedule = FaultSchedule::new();
    for e in &raw.events {
        schedule.push(t0 + e.at, e.fault.clone());
    }
    let timing = *sim.timing();
    let mut monitors = standard_monitors(&timing, graph.node_count());
    let report = run_monitored(&mut sim, &schedule, t0 + 100_000.0, &mut monitors);

    let actions: Vec<_> = sim
        .engine()
        .trace()
        .actions
        .iter()
        .map(|r| (r.node, r.time.seconds(), r.name, r.maintenance))
        .collect();
    format!(
        "events={} actions={actions:?} table={:?} stats={}",
        report.events,
        sim.route_table(),
        stats_fingerprint(sim.stats())
    )
}

#[test]
fn regions_match_sequential_under_chaos() {
    for (name, graph) in topologies() {
        let seed = 7;
        let baseline = chaos_fingerprint(1, 1, &graph, seed);
        for (regions, jobs) in MATRIX {
            let par = chaos_fingerprint(regions, jobs, &graph, seed);
            assert_eq!(
                par, baseline,
                "regions={regions} jobs={jobs} diverged from sequential on {name}"
            );
        }
    }
}

/// Runs the congested data-plane scenario — finite links, bounded
/// queues, an aggregated workload, a mid-run corruption — drained to
/// empty, under the given discipline and region/job split.
fn traffic_fingerprint(
    regions: usize,
    jobs: usize,
    discipline: DisciplineKind,
    seed: u64,
) -> String {
    let graph = generators::grid(8, 8, 1);
    let dest = v(0);
    let victim = v(27);
    let duration = 60.0;
    let mut sim = LsrpSimulation::builder(graph.clone(), dest)
        .initial_state(InitialState::Legitimate)
        .engine_config(
            EngineConfig::default()
                .with_seed(seed)
                .with_congestion(CongestionConfig::limited(64.0, 12).with_discipline(discipline))
                .with_regions(regions)
                .with_jobs(jobs),
        )
        .build();
    sim.run_to_quiescence(100_000.0);
    let t0 = sim.now().seconds();
    let spec = WorkloadSpec::default();
    let mut workload = WorkloadDriver::new(&spec, &graph, &[dest], t0, duration, seed);
    workload.ensure_scheduled(sim.engine_mut(), t0 + duration / 2.0);
    sim.run_until(t0 + duration / 2.0);
    sim.corrupt_distance(victim, Distance::ZERO);
    workload.ensure_scheduled(sim.engine_mut(), f64::INFINITY);
    loop {
        let drained = !sim.engine().any_enabled_non_maintenance()
            && sim.engine().inflight_messages() == 0
            && sim.engine().packets_in_flight() == 0;
        if drained {
            break;
        }
        let next = sim
            .engine()
            .next_event_time()
            .map_or(sim.now(), |t: SimTime| t);
        sim.run_until(next.seconds() + 50.0);
    }
    format!(
        "now={:?} traffic={:?} stats={} table={:?}",
        sim.now(),
        sim.stats().traffic,
        stats_fingerprint(sim.stats()),
        sim.route_table()
    )
}

#[test]
fn regions_match_sequential_under_congested_traffic() {
    let seed = 3;
    let baseline = traffic_fingerprint(1, 1, DisciplineKind::DropTail, seed);
    for (regions, jobs) in MATRIX {
        let par = traffic_fingerprint(regions, jobs, DisciplineKind::DropTail, seed);
        assert_eq!(
            par, baseline,
            "regions={regions} jobs={jobs} diverged on congested traffic"
        );
    }
}

#[test]
fn pause_discipline_lockstep_fallback_matches_sequential() {
    // PFC pause writes the upstream port with zero lookahead, so the
    // engine degrades to conservative lockstep when regions > 1; the
    // fallback must still be byte-identical.
    let seed = 91;
    let discipline = DisciplineKind::Pause {
        pause_at: 0.6,
        quantum: 1.5,
    };
    let baseline = traffic_fingerprint(1, 1, discipline, seed);
    for (regions, jobs) in [(2, 2), (4, 4)] {
        let par = traffic_fingerprint(regions, jobs, discipline, seed);
        assert_eq!(
            par, baseline,
            "regions={regions} jobs={jobs} diverged under PFC lockstep"
        );
    }
}
