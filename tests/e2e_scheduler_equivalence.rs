//! Scheduler equivalence: the calendar-wheel event queue must be
//! observationally *byte-identical* to the binary-heap oracle.
//!
//! Both backends contractually dequeue in exact `(time, seq)` order, so a
//! seeded run — trace, RNG draws, final tables, statistics — cannot depend
//! on which one is installed. These tests pin that across topology shapes
//! (grid, fat-tree, Waxman), arbitrary initial states, chaos fault
//! schedules, and congested data-plane traffic: the full cartesian slice
//! the engine's hot path sees in production campaigns.

use lsrp::analysis::{run_monitored, standard_monitors, WorkloadDriver, WorkloadSpec};
use lsrp::core::{InitialState, LsrpSimulation, LsrpSimulationExt, TimingConfig};
use lsrp::faults::{FaultProcess, FaultSchedule};
use lsrp::graph::{generators, Distance, Graph, NodeId};
use lsrp_sim::{ClockConfig, CongestionConfig, EngineConfig, LinkConfig, SchedulerKind, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

/// The topologies under test: a mesh, a data-center Clos, and a random
/// internet-like geometric graph.
fn topologies() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(42);
    vec![
        ("grid6x6", generators::grid(6, 6, 1)),
        ("fattree4", generators::fat_tree(4)),
        ("waxman60", generators::waxman(60, 0.4, 0.6, &mut rng)),
    ]
}

/// Runs a chaotic control-plane scenario on the given backend and returns
/// the full observable fingerprint: every non-maintenance action record,
/// the final route table, and the engine statistics.
fn chaos_fingerprint(kind: SchedulerKind, graph: &Graph, seed: u64) -> String {
    // Jittered links and drifting clocks exercise irregular event
    // spacing; no periodic SYN refresh, so the monitored phase can
    // settle instead of ticking maintenance to the horizon.
    let engine = EngineConfig::default()
        .with_seed(seed)
        .with_link(LinkConfig::jittered(0.5, 1.5))
        .with_clocks(ClockConfig::Drifting { rho: 1.4 })
        .with_scheduler(kind);
    let timing = TimingConfig::for_network(1.4, 1.5);
    let mut sim = LsrpSimulation::builder(graph.clone(), v(0))
        .timing(timing)
        .initial_state(InitialState::Arbitrary { seed: seed ^ 99 })
        .engine_config(engine)
        .build();
    assert!(sim.run_to_quiescence(1_000_000.0).quiescent);

    // Mid-run faults: the standard chaos process, replayed from the
    // quiescent point.
    let t0 = sim.now().seconds();
    let raw = FaultProcess::standard().generate(graph, v(0), 120.0, seed);
    let mut schedule = FaultSchedule::new();
    for e in &raw.events {
        schedule.push(t0 + e.at, e.fault.clone());
    }
    let timing = *sim.timing();
    let mut monitors = standard_monitors(&timing, graph.node_count());
    let report = run_monitored(&mut sim, &schedule, t0 + 100_000.0, &mut monitors);

    let actions: Vec<_> = sim
        .engine()
        .trace()
        .actions
        .iter()
        .map(|r| (r.node, r.time.seconds(), r.name, r.maintenance))
        .collect();
    format!(
        "events={} actions={actions:?} table={:?} stats={:?}",
        report.events,
        sim.route_table(),
        sim.stats()
    )
}

#[test]
fn wheel_matches_heap_under_chaos() {
    for (name, graph) in topologies() {
        for seed in [7, 1303] {
            let wheel = chaos_fingerprint(SchedulerKind::Wheel, &graph, seed);
            let heap = chaos_fingerprint(SchedulerKind::Heap, &graph, seed);
            assert_eq!(
                wheel, heap,
                "wheel and heap diverged on {name} with seed {seed}"
            );
        }
    }
}

/// Runs the congested data-plane scenario: finite links, bounded queues,
/// an aggregated workload, and a mid-run corruption, drained to empty.
fn traffic_fingerprint(kind: SchedulerKind, seed: u64) -> String {
    let graph = generators::grid(8, 8, 1);
    let dest = v(0);
    let victim = v(27);
    let duration = 60.0;
    let mut sim = LsrpSimulation::builder(graph.clone(), dest)
        .initial_state(InitialState::Legitimate)
        .engine_config(
            EngineConfig::default()
                .with_seed(seed)
                .with_congestion(CongestionConfig::limited(64.0, 12))
                .with_scheduler(kind),
        )
        .build();
    sim.run_to_quiescence(100_000.0);
    let t0 = sim.now().seconds();
    let spec = WorkloadSpec::default();
    let mut workload = WorkloadDriver::new(&spec, &graph, &[dest], t0, duration, seed);
    workload.ensure_scheduled(sim.engine_mut(), t0 + duration / 2.0);
    sim.run_until(t0 + duration / 2.0);
    sim.corrupt_distance(victim, Distance::ZERO);
    workload.ensure_scheduled(sim.engine_mut(), f64::INFINITY);
    loop {
        let drained = !sim.engine().any_enabled_non_maintenance()
            && sim.engine().inflight_messages() == 0
            && sim.engine().packets_in_flight() == 0;
        if drained {
            break;
        }
        let next = sim
            .engine()
            .next_event_time()
            .map_or(sim.now(), |t: SimTime| t);
        sim.run_until(next.seconds() + 50.0);
    }
    format!(
        "now={:?} traffic={:?} stats={:?} table={:?}",
        sim.now(),
        sim.stats().traffic,
        sim.stats(),
        sim.route_table()
    )
}

#[test]
fn wheel_matches_heap_under_congested_traffic() {
    for seed in [3, 91] {
        let wheel = traffic_fingerprint(SchedulerKind::Wheel, seed);
        let heap = traffic_fingerprint(SchedulerKind::Heap, seed);
        assert_eq!(wheel, heap, "traffic runs diverged with seed {seed}");
    }
}
