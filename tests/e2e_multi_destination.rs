//! Multi-destination end-to-end: the full-routing-table composition keeps
//! LSRP's guarantees per destination tree, concurrently.

use lsrp::graph::{generators, Distance, NodeId};
use lsrp::multi::{MultiLsrpSimulation, MultiLsrpSimulationExt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn v(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn all_pairs_on_a_weighted_random_graph() {
    let mut rng = StdRng::seed_from_u64(404);
    let graph = generators::connected_erdos_renyi(18, 0.12, 4, &mut rng);
    let destinations: Vec<NodeId> = graph.nodes().collect();
    let mut sim = MultiLsrpSimulation::builder(graph, destinations).build();
    let report = sim.run_to_quiescence(10_000.0);
    assert!(report.quiescent);
    assert!(sim.all_routes_correct());
    assert_eq!(sim.engine().trace().total_actions(), 0);
}

#[test]
fn concurrent_perturbations_of_different_trees_stay_independent() {
    let graph = generators::grid(6, 6, 1);
    let dests = vec![v(0), v(35)];
    let mut sim = MultiLsrpSimulation::builder(graph, dests).build();
    sim.engine_mut().reset_trace();

    // Opposite corners' trees corrupted at different nodes simultaneously.
    sim.corrupt_instance_distance(v(7), v(0), Distance::ZERO);
    sim.corrupt_instance_distance(v(28), v(35), Distance::ZERO);
    let report = sim.run_to_quiescence(100_000.0);
    assert!(report.quiescent);
    assert!(sim.all_routes_correct());

    // Each instance's actions stayed at its own corrupted node.
    // Maintenance records (the batch FLUSH) are transport, not protocol
    // steps, and carry no instance tag.
    for r in sim
        .engine()
        .trace()
        .actions
        .iter()
        .filter(|r| !r.maintenance)
    {
        match r.action.instance {
            1 => assert_eq!(r.node, v(7), "v0-tree action strayed: {r:?}"),
            36 => assert_eq!(r.node, v(28), "v35-tree action strayed: {r:?}"),
            other => panic!("unexpected instance tag {other}: {r:?}"),
        }
    }
}

#[test]
fn random_table_corruption_storm_across_trees() {
    let mut rng = StdRng::seed_from_u64(7_777);
    let graph = generators::grid(5, 5, 1);
    let dests: Vec<NodeId> = graph.nodes().step_by(3).collect();
    let mut sim = MultiLsrpSimulation::builder(graph.clone(), dests.clone()).build();
    for round in 0..8 {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let victim = nodes[rng.gen_range(0..nodes.len())];
        let dest = dests[rng.gen_range(0..dests.len())];
        sim.corrupt_instance_distance(victim, dest, Distance::Finite(rng.gen_range(0..30)));
        let report = sim.run_to_quiescence(1_000_000.0);
        assert!(report.quiescent, "round {round}");
        assert!(sim.all_routes_correct(), "round {round}");
    }
}

#[test]
fn link_failure_heals_every_tree_simultaneously() {
    let graph = generators::ring(12, 1);
    let dests: Vec<NodeId> = graph.nodes().collect();
    let mut sim = MultiLsrpSimulation::builder(graph, dests).build();
    sim.fail_edge(v(0), v(11)).unwrap();
    let report = sim.run_to_quiescence(1_000_000.0);
    assert!(report.quiescent);
    assert!(sim.all_routes_correct());
    // The ring is now a path: v0..v11 distances reflect that in, e.g.,
    // the v0 tree.
    assert_eq!(
        sim.route_table_for(v(0)).entry(v(11)).unwrap().distance,
        Distance::Finite(11)
    );
}
