//! Offline stand-in for `criterion` (the subset this workspace uses).
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This replacement keeps bench files compiling
//! and runnable: each benchmark body is executed a handful of times and its
//! mean wall-clock time printed. There are no statistics, baselines or
//! plots — benches degrade into smoke checks with rough timings.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark id composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (recorded but unused by this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `f` a few times, recording mean wall-clock time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        const ITERS: u32 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = ITERS;
    }
}

fn run_one(group: &str, id: &str, run: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::default();
    run(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters
    };
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {name}: {mean:?}/iter (vendored criterion, {} iters)",
        b.iters
    );
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the group throughput (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), |b| f(b));
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one("", &id.to_string(), |b| f(b));
        self
    }
}

/// Bundles bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut ran = 0u32;
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_function("one", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("two", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(ran >= 3);
    }
}
