//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This replacement keeps the call-site syntax —
//! `proptest! { #![proptest_config(...)] #[test] fn f(x in 0u32..10) {..} }`
//! plus `prop_assert!` / `prop_assert_eq!` / `prop_assume!` — and runs each
//! test body over `cases` deterministic samples drawn from the range
//! strategies. There is no shrinking: a failing case panics with the drawn
//! inputs in the message (every strategy used here is a plain range, so a
//! reported case is trivially re-runnable).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Runner configuration (`cases` is the only knob this stand-in honors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — skipped, not failed.
    Reject,
}

/// The deterministic generator driving sample draws (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one case of one test, derived from the case index.
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of sampled values: `x in strategy` in `proptest!`.
pub trait Strategy {
    /// The sampled type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a plain function (keep the `#[test]` attribute on it) running
/// `body` over `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..u64::from(config.cases) {
                    let mut __rng = $crate::TestRng::deterministic(__case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The usual star-import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn samples_stay_in_range(n in 3u32..17, f in 0.25f64..0.75, k in 0u64..=4) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(k <= 4, "k={k}");
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_draws() {
        let s = 5u32..100;
        let a: Vec<u32> = (0..8)
            .map(|c| Strategy::sample(&s, &mut TestRng::deterministic(c)))
            .collect();
        let b: Vec<u32> = (0..8)
            .map(|c| Strategy::sample(&s, &mut TestRng::deterministic(c)))
            .collect();
        assert_eq!(a, b);
    }
}
