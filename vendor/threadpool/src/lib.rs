//! Offline vendored stand-in for the `threadpool` crate.
//!
//! Provides the subset of the 1.8 API this workspace uses: a fixed-size
//! pool of worker threads consuming boxed closures from a shared
//! [`std::sync::mpsc`] channel. Dropping the pool closes the channel and
//! joins every worker, so all submitted jobs finish before `drop` returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads.
#[derive(Debug)]
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `num_threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    #[must_use]
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "thread pool needs at least one worker");
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..num_threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || worker_loop(&receiver))
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// The number of worker threads.
    #[must_use]
    pub fn max_count(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; it runs on the first idle worker.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.sender
            .as_ref()
            .expect("sender lives until drop")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Blocks until all submitted jobs have finished, consuming the pool.
    /// (The real crate's `join` keeps the pool alive; the workspace only
    /// ever joins once, at the end.)
    pub fn join(self) {
        drop(self);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv() fail once the
        // queue drains; then join each.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            // A panicked job already poisoned the run; surface it.
            if let Err(e) = w.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Holding the lock only to receive keeps other workers free to
        // pick up jobs concurrently.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a worker panicked while holding the lock
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_before_drop_returns() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(4);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn single_worker_runs_jobs_in_submission_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let pool = ThreadPool::new(1);
        for i in 0..10 {
            let order = Arc::clone(&order);
            pool.execute(move || order.lock().unwrap().push(i));
        }
        pool.join();
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ThreadPool::new(0);
    }
}
