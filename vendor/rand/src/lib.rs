//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. This vendored replacement implements exactly the
//! surface the workspace uses — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`rngs::SmallRng`] and [`seq::SliceRandom::shuffle`] — on top of the
//! xoshiro256++ generator (public domain, Blackman & Vigna) seeded through
//! SplitMix64. Streams are deterministic per seed, which is all the
//! simulator requires; they do *not* match upstream `StdRng` byte-for-byte.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the provided generators).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand` does for seed material.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`): `rng.gen::<T>()`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply reduction.
fn uniform_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(span, rng) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(span + 1, rng) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the half-open bound against rounding up to `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        uniform_u64(u64::from(denominator), self) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    ///
    /// Not the upstream ChaCha12-based `StdRng`; streams differ from real
    /// `rand`, but are stable per seed, which is the property the engine
    /// and every experiment depend on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias of [`StdRng`] — the real crate's `SmallRng` is a different
    /// algorithm, but every use here only needs determinism.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice operations backed by a generator.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` for an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::distributions` shim (the `Standard` marker lives at the root
/// here; re-exported for imports that use the upstream path).
pub mod distributions {
    pub use super::Standard;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
